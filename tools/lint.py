#!/usr/bin/env python
"""Lint orchestrator for ``make lint``.

Always runs the repo-specific AST invariants (``check_invariants.py``).
Then runs ruff and mypy with the configuration in ``pyproject.toml`` —
but only if they are installed: the library itself is dependency-free
and the reference container does not ship them, so a missing tool is a
skip note, not a failure. Exit status is non-zero iff an *installed*
check reported violations.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(label: str, command: list[str]) -> bool:
    print(f"== {label} ==")
    completed = subprocess.run(command, cwd=REPO_ROOT)
    return completed.returncode == 0


def main() -> int:
    failed = []

    if not _run(
        "invariants",
        [sys.executable, str(REPO_ROOT / "tools" / "check_invariants.py")],
    ):
        failed.append("invariants")

    if importlib.util.find_spec("ruff") is not None:
        if not _run(
            "ruff", [sys.executable, "-m", "ruff", "check", "src", "tests",
                     "benchmarks", "tools"]
        ):
            failed.append("ruff")
    else:
        print("== ruff == skipped (not installed)")

    if importlib.util.find_spec("mypy") is not None:
        if not _run("mypy", [sys.executable, "-m", "mypy"]):
            failed.append("mypy")
    else:
        print("== mypy == skipped (not installed)")

    if failed:
        print(f"lint FAILED: {', '.join(failed)}")
        return 1
    print("lint OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
