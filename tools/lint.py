#!/usr/bin/env python
"""Lint orchestrator for ``make lint`` — one entrypoint, one exit code.

Runs, in order:

* **cedarlint** — the repo's own static analyzer (determinism,
  concurrency, layering; see ``docs/static-analysis.md``). Always
  available: it lives in this repo and needs only the stdlib.
* **ruff** and **mypy** with the configuration in ``pyproject.toml`` —
  but only if installed: the library itself is dependency-free and the
  reference container does not ship them, so a missing tool is a skip
  note, not a failure.

Each tool is timed individually and the exit status is non-zero iff an
*installed* check reported violations.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(label: str, command: list[str], timings: dict[str, float]) -> bool:
    print(f"== {label} ==")
    started = time.perf_counter()
    completed = subprocess.run(command, cwd=REPO_ROOT)
    timings[label] = time.perf_counter() - started
    return completed.returncode == 0


def main() -> int:
    failed: list[str] = []
    timings: dict[str, float] = {}

    if not _run(
        "cedarlint",
        [sys.executable, "-m", "tools.cedarlint"],
        timings,
    ):
        failed.append("cedarlint")

    if importlib.util.find_spec("ruff") is not None:
        if not _run(
            "ruff",
            [sys.executable, "-m", "ruff", "check", "src", "tests",
             "benchmarks", "tools"],
            timings,
        ):
            failed.append("ruff")
    else:
        print("== ruff == skipped (not installed)")

    if importlib.util.find_spec("mypy") is not None:
        if not _run("mypy", [sys.executable, "-m", "mypy"], timings):
            failed.append("mypy")
    else:
        print("== mypy == skipped (not installed)")

    for label, seconds in timings.items():
        print(f"   {label}: {seconds:.2f}s")
    if failed:
        print(f"lint FAILED: {', '.join(failed)}")
        return 1
    print("lint OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
