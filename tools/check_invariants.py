#!/usr/bin/env python
"""DEPRECATED — superseded by cedarlint.

The six ad-hoc invariants that used to live here are now rules in the
plugin-based analyzer under ``tools/cedarlint/``:

=========================================  =======
legacy invariant                           code
=========================================  =======
1. no direct ``Engine()`` construction     CDL030
2. no seedless ``random.Random()``         CDL011
3. no clock/RNG use in ``repro/obs/``      CDL015
4. examples/docs import only ``__all__``   CDL033
5. sqlite only in ``src/repro/cache/``     CDL031
6. column arrays stay in sqlengine         CDL032
=========================================  =======

The ``# lint: allow-*`` pragmas keep working unchanged. This shim just
forwards to ``python -m tools.cedarlint`` so stale invocations and
muscle memory don't break; new callers should invoke cedarlint
directly (or ``tools/lint.py``, which runs everything).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.cedarlint.__main__ import main  # noqa: E402

if __name__ == "__main__":
    print(
        "check_invariants.py is deprecated; running "
        "`python -m tools.cedarlint` instead",
        file=sys.stderr,
    )
    sys.exit(main(sys.argv[1:]))
