#!/usr/bin/env python
"""Repo-specific AST lints that generic linters cannot express.

Run by ``make lint`` (through ``tools/lint.py``). Six invariants:

1. **No direct ``Engine()`` construction in library code.** Outside
   ``src/repro/sqlengine/`` (plus tests and benchmarks, which exercise
   engine configurations on purpose), code must go through
   ``engine_for(db)`` so every query shares the process-wide plan and
   result caches. A line may opt out with a ``# lint: allow-engine``
   pragma when constructing a specific engine configuration *is* the
   point (e.g. the naive-interpreter arm of a benchmark).

2. **No seedless ``random.Random()``.** Every simulated-LLM transcript,
   dataset and benchmark must be reproducible; an unseeded generator
   silently breaks byte-identical reports. Applies everywhere, pragma
   ``# lint: allow-unseeded`` to opt out.

3. **No direct clock or RNG use in ``src/repro/obs/``.** Span identity
   must stay purely structural, so the tracing package may not *call*
   ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()`` (or
   anything else off the ``time`` module) and may not import ``random``
   at all. Wall times flow only through the injected ``clock`` callable
   — referencing ``time.perf_counter`` as a default argument is fine,
   calling it is not. No pragma: there is no legitimate exception.

4. **Examples and docs import only the public surface.** Every
   ``from repro[.sub] import X`` in ``examples/*.py`` and in the
   parseable ```` ```python ```` blocks of ``README.md`` and
   ``docs/*.md`` must name a package with an ``__all__`` and pick
   names from it. Deep-module imports and private names in showcased
   code turn internals into de-facto API; keep the shop window
   honest. Unparseable snippets (ellipses, shell transcripts) are
   skipped.

5. **Only ``src/repro/cache/`` talks to sqlite.** The persistent L2
   tier owns the schema, the corruption quarantine, and the
   disable-on-error policy; a stray ``sqlite3.connect`` elsewhere
   bypasses all three. Pragma ``# lint: allow-sqlite`` to opt out
   (e.g. a test deliberately inspecting the L2 file).

6. **Column arrays stay inside ``src/repro/sqlengine/``.** The typed
   column storage (``Table.column_array`` / ``Table._arrays``) is an
   internal representation of the vectorized executor; external code
   must consume rows, ``column_values``, or ``Table.from_columns``.
   Direct array access elsewhere would freeze the layout into de-facto
   API and invite aliasing bugs against the shared, never-copied
   arrays. ``tests/sqlengine/`` is exempt (it tests the layout on
   purpose); pragma ``# lint: allow-column-array`` to opt out.

Exit status is the number of violations (0 = clean).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

ENGINE_PRAGMA = "# lint: allow-engine"
SEED_PRAGMA = "# lint: allow-unseeded"
SQLITE_PRAGMA = "# lint: allow-sqlite"
COLUMN_ARRAY_PRAGMA = "# lint: allow-column-array"

# The one place allowed to open sqlite connections (invariant 5).
SQLITE_OWNER = Path("src/repro/cache")

# The owner of the columnar storage layout (invariant 6), plus the
# tests that exercise that layout on purpose.
COLUMN_ARRAY_OWNERS = (
    Path("src/repro/sqlengine"),
    Path("tests/sqlengine"),
)
_COLUMN_ARRAY_ATTRS = ("column_array", "_arrays")

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)

# Directories whose files may construct Engine() directly.
ENGINE_EXEMPT = (
    Path("src/repro/sqlengine"),
    Path("tests"),
    Path("benchmarks"),
    Path("tools"),
)

# The tracing package: wall-clock only via the injected ``clock``.
OBS_PACKAGE = Path("src/repro/obs")


def _is_engine_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Engine"
    if isinstance(func, ast.Attribute):
        return func.attr == "Engine"
    return False


def _is_seedless_random(node: ast.Call) -> bool:
    func = node.func
    named = (
        isinstance(func, ast.Attribute)
        and func.attr == "Random"
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
    ) or (isinstance(func, ast.Name) and func.id == "Random")
    return named and not node.args and not node.keywords


def _has_pragma(source_lines: list[str], node: ast.Call, pragma: str) -> bool:
    line = source_lines[node.lineno - 1]
    return pragma in line


def _obs_violations(relative: Path, tree: ast.AST) -> list[str]:
    """Clock/RNG bans inside the tracing package (invariant 3)."""
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                violations.append(
                    f"{relative}:{node.lineno}: time.{func.attr}() called "
                    "inside repro/obs/ — wall times must come from the "
                    "injected clock (pass time functions by reference only)"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    violations.append(
                        f"{relative}:{node.lineno}: random imported inside "
                        "repro/obs/ — span identity must be structural, "
                        "never RNG-derived"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                violations.append(
                    f"{relative}:{node.lineno}: random imported inside "
                    "repro/obs/ — span identity must be structural, "
                    "never RNG-derived"
                )
    return violations


def _sqlite_violations(
    relative: Path, tree: ast.AST, lines: list[str]
) -> list[str]:
    """sqlite stays behind the cache package (invariant 5)."""
    if relative.is_relative_to(SQLITE_OWNER):
        return []
    message = (
        "sqlite used outside src/repro/cache/ — the persistent tier "
        "owns connection, quarantine, and eviction policy "
        f"({SQLITE_PRAGMA} to opt out)"
    )
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            hit = any(a.name.split(".")[0] == "sqlite3" for a in node.names)
        elif isinstance(node, ast.ImportFrom):
            hit = bool(node.module) and (
                node.module.split(".")[0] == "sqlite3"
            )
        else:
            continue
        if hit and SQLITE_PRAGMA not in lines[node.lineno - 1]:
            violations.append(f"{relative}:{node.lineno}: {message}")
    return violations


def _column_array_violations(
    relative: Path, tree: ast.AST, lines: list[str]
) -> list[str]:
    """Columnar storage stays behind the sqlengine package (invariant 6)."""
    if any(relative.is_relative_to(owner) for owner in COLUMN_ARRAY_OWNERS):
        return []
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in _COLUMN_ARRAY_ATTRS:
            continue
        if COLUMN_ARRAY_PRAGMA in lines[node.lineno - 1]:
            continue
        violations.append(
            f"{relative}:{node.lineno}: {node.attr} accessed outside "
            "src/repro/sqlengine/ — column arrays are internal storage; "
            "consume rows, column_values, or Table.from_columns instead "
            f"({COLUMN_ARRAY_PRAGMA} to opt out)"
        )
    return violations


def _public_surface() -> dict[str, set[str] | None]:
    """``__all__`` per ``repro`` package, parsed without importing."""
    surface: dict[str, set[str] | None] = {}
    for init in (REPO_ROOT / "src" / "repro").rglob("__init__.py"):
        module = ".".join(init.parent.relative_to(REPO_ROOT / "src").parts)
        try:
            tree = ast.parse(init.read_text(encoding="utf-8"))
        except SyntaxError:
            surface[module] = None
            continue
        names: set[str] | None = None
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                try:
                    names = set(ast.literal_eval(node.value))
                except ValueError:
                    names = None
        surface[module] = names
    return surface


def _surface_violations(
    where: str, tree: ast.AST, surface: dict[str, set[str] | None]
) -> list[str]:
    """Showcased code imports only exported names (invariant 4)."""
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level:
            continue
        module = node.module or ""
        if module.split(".")[0] != "repro":
            continue
        if module not in surface:
            violations.append(
                f"{where}:{node.lineno}: import from {module} — examples "
                "and docs must import from a repro package, not a deep "
                "module"
            )
            continue
        exported = surface[module]
        if exported is None:
            violations.append(
                f"{where}:{node.lineno}: {module} has no parseable "
                "__all__ — give the package an explicit public surface"
            )
            continue
        for alias in node.names:
            if alias.name != "*" and alias.name not in exported:
                violations.append(
                    f"{where}:{node.lineno}: {module}.{alias.name} is not "
                    f"in {module}.__all__ — export it or drop it from "
                    "showcased code"
                )
    return violations


def check_showcased_code() -> list[str]:
    """Invariant 4 over ``examples/`` and the docs' python snippets.

    A separate pass on purpose: examples are user-facing scripts, not
    library code, so the Engine/seed rules don't apply to them — only
    the public-surface rule does.
    """
    surface = _public_surface()
    violations = []
    examples = REPO_ROOT / "examples"
    if examples.is_dir():
        for path in sorted(examples.glob("*.py")):
            relative = path.relative_to(REPO_ROOT)
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError as error:
                violations.append(
                    f"{relative}:{error.lineno}: syntax error: {error.msg}"
                )
                continue
            violations.extend(
                _surface_violations(str(relative), tree, surface)
            )
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    for path in docs:
        if not path.is_file():
            continue
        relative = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        for match in _FENCED_PYTHON.finditer(text):
            snippet = match.group(1)
            try:
                tree = ast.parse(snippet)
            except SyntaxError:
                continue  # prose-ish snippet (ellipses etc.) — skip
            line_base = text[: match.start(1)].count("\n")
            for violation in _surface_violations("", tree, surface):
                _, line, rest = violation.split(":", 2)
                violations.append(
                    f"{relative}:{line_base + int(line)}:{rest}"
                )
    return violations


def check_file(path: Path) -> list[str]:
    relative = path.relative_to(REPO_ROOT)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(relative))
    except SyntaxError as error:
        return [f"{relative}:{error.lineno}: syntax error: {error.msg}"]
    lines = source.splitlines()
    engine_exempt = any(
        relative.is_relative_to(prefix) for prefix in ENGINE_EXEMPT
    )
    violations = []
    if relative.is_relative_to(OBS_PACKAGE):
        violations.extend(_obs_violations(relative, tree))
    violations.extend(_sqlite_violations(relative, tree, lines))
    violations.extend(_column_array_violations(relative, tree, lines))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            _is_engine_call(node)
            and not engine_exempt
            and not _has_pragma(lines, node, ENGINE_PRAGMA)
        ):
            violations.append(
                f"{relative}:{node.lineno}: direct Engine() construction "
                "outside sqlengine/ — use engine_for(db) so queries share "
                f"the process-wide caches ({ENGINE_PRAGMA} to opt out)"
            )
        if _is_seedless_random(node) and not _has_pragma(
            lines, node, SEED_PRAGMA
        ):
            violations.append(
                f"{relative}:{node.lineno}: random.Random() without a seed "
                "breaks reproducible transcripts — pass an explicit seed "
                f"({SEED_PRAGMA} to opt out)"
            )
    return violations


def main() -> int:
    roots = [REPO_ROOT / "src", REPO_ROOT / "tests",
             REPO_ROOT / "benchmarks", REPO_ROOT / "tools"]
    violations: list[str] = []
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            violations.extend(check_file(path))
    violations.extend(check_showcased_code())
    for violation in violations:
        print(violation)
    if not violations:
        print("check_invariants: OK")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main())
