#!/usr/bin/env python
"""Repo-specific AST lints that generic linters cannot express.

Run by ``make lint`` (through ``tools/lint.py``). Three invariants:

1. **No direct ``Engine()`` construction in library code.** Outside
   ``src/repro/sqlengine/`` (plus tests and benchmarks, which exercise
   engine configurations on purpose), code must go through
   ``engine_for(db)`` so every query shares the process-wide plan and
   result caches. A line may opt out with a ``# lint: allow-engine``
   pragma when constructing a specific engine configuration *is* the
   point (e.g. the naive-interpreter arm of a benchmark).

2. **No seedless ``random.Random()``.** Every simulated-LLM transcript,
   dataset and benchmark must be reproducible; an unseeded generator
   silently breaks byte-identical reports. Applies everywhere, pragma
   ``# lint: allow-unseeded`` to opt out.

3. **No direct clock or RNG use in ``src/repro/obs/``.** Span identity
   must stay purely structural, so the tracing package may not *call*
   ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()`` (or
   anything else off the ``time`` module) and may not import ``random``
   at all. Wall times flow only through the injected ``clock`` callable
   — referencing ``time.perf_counter`` as a default argument is fine,
   calling it is not. No pragma: there is no legitimate exception.

Exit status is the number of violations (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

ENGINE_PRAGMA = "# lint: allow-engine"
SEED_PRAGMA = "# lint: allow-unseeded"

# Directories whose files may construct Engine() directly.
ENGINE_EXEMPT = (
    Path("src/repro/sqlengine"),
    Path("tests"),
    Path("benchmarks"),
    Path("tools"),
)

# The tracing package: wall-clock only via the injected ``clock``.
OBS_PACKAGE = Path("src/repro/obs")


def _is_engine_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Engine"
    if isinstance(func, ast.Attribute):
        return func.attr == "Engine"
    return False


def _is_seedless_random(node: ast.Call) -> bool:
    func = node.func
    named = (
        isinstance(func, ast.Attribute)
        and func.attr == "Random"
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
    ) or (isinstance(func, ast.Name) and func.id == "Random")
    return named and not node.args and not node.keywords


def _has_pragma(source_lines: list[str], node: ast.Call, pragma: str) -> bool:
    line = source_lines[node.lineno - 1]
    return pragma in line


def _obs_violations(relative: Path, tree: ast.AST) -> list[str]:
    """Clock/RNG bans inside the tracing package (invariant 3)."""
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                violations.append(
                    f"{relative}:{node.lineno}: time.{func.attr}() called "
                    "inside repro/obs/ — wall times must come from the "
                    "injected clock (pass time functions by reference only)"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    violations.append(
                        f"{relative}:{node.lineno}: random imported inside "
                        "repro/obs/ — span identity must be structural, "
                        "never RNG-derived"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                violations.append(
                    f"{relative}:{node.lineno}: random imported inside "
                    "repro/obs/ — span identity must be structural, "
                    "never RNG-derived"
                )
    return violations


def check_file(path: Path) -> list[str]:
    relative = path.relative_to(REPO_ROOT)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(relative))
    except SyntaxError as error:
        return [f"{relative}:{error.lineno}: syntax error: {error.msg}"]
    lines = source.splitlines()
    engine_exempt = any(
        relative.is_relative_to(prefix) for prefix in ENGINE_EXEMPT
    )
    violations = []
    if relative.is_relative_to(OBS_PACKAGE):
        violations.extend(_obs_violations(relative, tree))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            _is_engine_call(node)
            and not engine_exempt
            and not _has_pragma(lines, node, ENGINE_PRAGMA)
        ):
            violations.append(
                f"{relative}:{node.lineno}: direct Engine() construction "
                "outside sqlengine/ — use engine_for(db) so queries share "
                f"the process-wide caches ({ENGINE_PRAGMA} to opt out)"
            )
        if _is_seedless_random(node) and not _has_pragma(
            lines, node, SEED_PRAGMA
        ):
            violations.append(
                f"{relative}:{node.lineno}: random.Random() without a seed "
                "breaks reproducible transcripts — pass an explicit seed "
                f"({SEED_PRAGMA} to opt out)"
            )
    return violations


def main() -> int:
    roots = [REPO_ROOT / "src", REPO_ROOT / "tests",
             REPO_ROOT / "benchmarks", REPO_ROOT / "tools"]
    violations: list[str] = []
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            violations.extend(check_file(path))
    for violation in violations:
        print(violation)
    if not violations:
        print("check_invariants: OK")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main())
