"""Repo tooling: lint orchestration and the cedarlint static analyzer."""
