"""A cross-module lock-acquisition graph for CDL020.

The graph's nodes are *lock identities* — ``module.Class.attr`` for
``self.attr = threading.Lock()`` instance locks, ``module.NAME`` for
module-level locks. An edge A -> B means "somewhere, B is acquired
while A is held". Acquisitions are found three ways:

* **lexical nesting** — ``with self._lock: ... with other:``;
* **call propagation** — while holding L, a call to a resolvable
  function whose transitive acquisition set contains M adds L -> M.
  Targets resolve through ``self.method()``, ``Class()`` construction,
  locals the dataflow pass knows are instances, and attributes the
  owning class constructed itself (``self._queue = BoundedJobQueue()``);
* **explicit** ``lock.acquire()`` calls, treated as acquisitions at
  the call site.

A cycle in the graph is a potential deadlock: two threads taking the
same locks in opposite orders. Self-edges are special-cased — nested
re-acquisition of a *reentrant* lock (RLock, Condition) is legal and
skipped; lexical re-acquisition of a plain Lock is a guaranteed
single-thread deadlock and reported directly. Instance-insensitive
self-edges (two *different* instances of the same class-level lock
nesting) are skipped as well: ordering across instances needs runtime
identity the static pass does not have.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .dataflow import Instance, LOCK, REENTRANT_FACTORIES, scope_bindings
from .engine import ModuleContext, Project


@dataclass(frozen=True)
class LockId:
    qualified: str
    reentrant: bool = False

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class Site:
    path: str
    line: int
    context: str


@dataclass(frozen=True)
class Edge:
    held: LockId
    acquired: LockId
    site: Site


@dataclass
class ClassInfo:
    qualified: str
    ctx: ModuleContext
    node: ast.ClassDef
    locks: dict[str, LockId] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = \
        field(default_factory=dict)
    #: attrs the class constructs itself: attr -> locally spelled class
    attr_classes: dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionFacts:
    """What one function/method does, lock-wise."""

    key: str
    direct: list[tuple[LockId, Site]] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    #: (held locks at the call, callee key) — resolved targets only.
    calls: list[tuple[tuple[LockId, ...], str]] = field(default_factory=list)
    #: lexical double-take of one non-reentrant lock (direct deadlock).
    self_deadlocks: list[tuple[LockId, Site]] = field(default_factory=list)


class LockGraph:
    """Build from a :class:`Project`; query edges and cycles."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: dict[str, ClassInfo] = {}
        self.module_locks: dict[str, LockId] = {}
        self.functions: dict[str, FunctionFacts] = {}
        self._index()
        self._analyse()
        self._propagate()

    # -- indexing ------------------------------------------------------------

    def _module_qual(self, ctx: ModuleContext) -> str:
        return ctx.module or str(ctx.relative)

    def _lock_from_call(
        self, node: ast.expr, ctx: ModuleContext, qualified: str
    ) -> LockId | None:
        if not isinstance(node, ast.Call):
            return None
        factory = ctx.symbols.qualify(node.func)
        if factory is None or not factory.startswith(
            ("threading.", "multiprocessing.")
        ):
            return None
        if factory.split(".", 1)[1] not in (
            "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"
        ):
            return None
        return LockId(qualified, reentrant=factory in REENTRANT_FACTORIES)

    def _index(self) -> None:
        for ctx in self.project.modules:
            module = self._module_qual(ctx)
            for node in ctx.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    lock = self._lock_from_call(
                        node.value, ctx, f"{module}.{name}"
                    )
                    if lock is not None:
                        self.module_locks[f"{module}.{name}"] = lock
                elif isinstance(node, ast.ClassDef):
                    self._index_class(ctx, module, node)

    def _index_class(self, ctx: ModuleContext, module: str,
                     node: ast.ClassDef) -> None:
        info = ClassInfo(f"{module}.{node.name}", ctx, node)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = item
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            lock = self._lock_from_call(
                sub.value, ctx, f"{info.qualified}.{attr}"
            )
            if lock is not None:
                info.locks[attr] = lock
            elif (
                isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Name)
                and sub.value.func.id[:1].isupper()
            ):
                info.attr_classes[attr] = sub.value.func.id
        self.classes[info.qualified] = info

    def _resolve_class(
        self, local_name: str, ctx: ModuleContext
    ) -> ClassInfo | None:
        """A locally spelled class name -> its project ClassInfo."""
        module = self._module_qual(ctx)
        own = self.classes.get(f"{module}.{local_name}")
        if own is not None:
            return own
        imported = ctx.symbols.imports.get(local_name)
        if imported is not None:
            info = self.classes.get(imported)
            if info is not None:
                return info
            # ``from repro.service import VerificationService`` often
            # goes through a package __init__ re-export; fall back to a
            # unique suffix match on the class name.
            leaf = imported.rsplit(".", 1)[-1]
            matches = [c for q, c in self.classes.items()
                       if q.rsplit(".", 1)[-1] == leaf]
            if len(matches) == 1:
                return matches[0]
        return None

    # -- per-function analysis ----------------------------------------------

    def _analyse(self) -> None:
        for ctx in self.project.modules:
            module = self._module_qual(ctx)
            for node in ctx.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    key = f"{module}.{node.name}"
                    self.functions[key] = self._analyse_function(
                        key, node, ctx, owner=None
                    )
                elif isinstance(node, ast.ClassDef):
                    info = self.classes[f"{module}.{node.name}"]
                    for name, method in info.methods.items():
                        key = f"{info.qualified}.{name}"
                        self.functions[key] = self._analyse_function(
                            key, method, ctx, owner=info
                        )

    def _analyse_function(
        self,
        key: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: ModuleContext,
        owner: ClassInfo | None,
    ) -> FunctionFacts:
        facts = FunctionFacts(key)
        bindings = scope_bindings(func, ctx.symbols)
        module = self._module_qual(ctx)

        def resolve_lock(expr: ast.expr) -> LockId | None:
            if (
                owner is not None
                and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return owner.locks.get(expr.attr)
            if isinstance(expr, ast.Name):
                lock = self.module_locks.get(f"{module}.{expr.id}")
                if lock is not None:
                    return lock
                imported = ctx.symbols.imports.get(expr.id)
                if imported is not None:
                    return self.module_locks.get(imported)
                if bindings.get(expr.id) is LOCK:
                    return LockId(f"{key}.<local:{expr.id}>")
            return None

        def resolve_call(call: ast.Call) -> str | None:
            func_expr = call.func
            if isinstance(func_expr, ast.Attribute):
                receiver = func_expr.value
                method = func_expr.attr
                if isinstance(receiver, ast.Name):
                    if receiver.id == "self" and owner is not None:
                        if method in owner.methods:
                            return f"{owner.qualified}.{method}"
                        return None
                    bound = bindings.get(receiver.id)
                    if isinstance(bound, Instance):
                        info = self._resolve_class(bound.class_name, ctx)
                        if info is not None and method in info.methods:
                            return f"{info.qualified}.{method}"
                    return None
                if (
                    owner is not None
                    and isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    spelled = owner.attr_classes.get(receiver.attr)
                    if spelled is not None:
                        info = self._resolve_class(spelled, ctx)
                        if info is not None and method in info.methods:
                            return f"{info.qualified}.{method}"
                return None
            if isinstance(func_expr, ast.Name):
                name = func_expr.id
                info = self._resolve_class(name, ctx)
                if info is not None:
                    if "__init__" in info.methods:
                        return f"{info.qualified}.__init__"
                    return None
                if f"{module}.{name}" in self.functions or any(
                    isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and n.name == name for n in ctx.tree.body
                ):
                    return f"{module}.{name}"
                imported = ctx.symbols.imports.get(name)
                if imported is not None and imported.startswith("repro."):
                    return imported
            return None

        def site(node: ast.AST) -> Site:
            return Site(str(ctx.relative), node.lineno,
                        ctx.line_text(node.lineno).strip())

        held: list[LockId] = []

        def record_acquisition(lock: LockId, node: ast.AST) -> None:
            where = site(node)
            facts.direct.append((lock, where))
            for h in held:
                if h == lock:
                    if not lock.reentrant:
                        facts.self_deadlocks.append((lock, where))
                elif h.qualified != lock.qualified:
                    facts.edges.append(Edge(h, lock, where))

        def walk(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                return  # nested scopes run on their own threads/stacks
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: list[LockId] = []
                for item in node.items:
                    lock = resolve_lock(item.context_expr)
                    if lock is not None:
                        record_acquisition(lock, item.context_expr)
                        held.append(lock)
                        acquired.append(lock)
                for child in node.body:
                    walk(child)
                for lock in acquired:
                    held.remove(lock)
                return
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    lock = resolve_lock(node.func.value)
                    if lock is not None:
                        record_acquisition(lock, node)
                target = resolve_call(node)
                if target is not None:
                    facts.calls.append((tuple(held), target))
            for child in ast.iter_child_nodes(node):
                walk(child)

        for statement in func.body:
            walk(statement)
        return facts

    # -- propagation and cycles ----------------------------------------------

    def _propagate(self) -> None:
        """Close acquisition sets over calls, then add call edges."""
        acquires: dict[str, set[LockId]] = {
            key: {lock for lock, _ in facts.direct}
            for key, facts in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, facts in self.functions.items():
                for _, target in facts.calls:
                    extra = acquires.get(target)
                    if extra and not extra <= acquires[key]:
                        acquires[key] |= extra
                        changed = True
        self.edges: list[Edge] = []
        seen: set[tuple[str, str, str, int]] = set()

        def add(edge: Edge) -> None:
            dedup = (edge.held.qualified, edge.acquired.qualified,
                     edge.site.path, edge.site.line)
            if dedup not in seen:
                seen.add(dedup)
                self.edges.append(edge)

        for facts in self.functions.values():
            for edge in facts.edges:
                add(edge)
            for held, target in facts.calls:
                if not held:
                    continue
                for lock in acquires.get(target, ()):
                    for h in held:
                        if h.qualified != lock.qualified:
                            add(Edge(h, lock, _edge_site(facts, held)))

    def self_deadlocks(self) -> list[tuple[LockId, Site]]:
        found: list[tuple[LockId, Site]] = []
        for facts in self.functions.values():
            found.extend(facts.self_deadlocks)
        return found

    def cycles(self) -> list[list[Edge]]:
        """Elementary cycles, each as its witness edge list."""
        adjacency: dict[str, list[Edge]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.held.qualified, []).append(edge)
        cycles: list[list[Edge]] = []
        reported: set[frozenset[str]] = set()
        for start in sorted(adjacency):
            path: list[Edge] = []
            on_path: set[str] = set()

            def dfs(node: str) -> None:
                if len(path) > 16:
                    return
                for edge in adjacency.get(node, ()):
                    target = edge.acquired.qualified
                    if target == start and path:
                        members = frozenset(
                            e.held.qualified for e in path
                        ) | {target}
                        if members not in reported:
                            reported.add(members)
                            cycles.append(path + [edge])
                    elif target not in on_path and target > start:
                        path.append(edge)
                        on_path.add(target)
                        dfs(target)
                        on_path.remove(target)
                        path.pop()

            on_path.add(start)
            dfs(start)
        return cycles


def _edge_site(facts: FunctionFacts, held: tuple[LockId, ...]) -> Site:
    """Site for a propagated edge: the innermost acquisition still held.

    Falls back to the function's first direct acquisition; propagated
    edges always have at least one (they require held locks).
    """
    for lock, where in reversed(facts.direct):
        if lock in held:
            return where
    return facts.direct[0][1] if facts.direct else Site("?", 1, "")
