"""Per-line pragma suppressions.

Two spellings silence a finding on its own line:

* ``# cedarlint: disable=CDL013`` — the native form; several codes may
  be comma-separated (``disable=CDL013,CDL014``).
* ``# lint: allow-<name>`` — the legacy ``check_invariants.py`` pragmas,
  each absorbed by exactly one code (see
  :data:`~tools.cedarlint.diagnostics.CODES`); existing annotated sites
  keep working without edits.

Pragmas are strictly per-line (the line the diagnostic points at) and
never silence unsuppressible codes (CDL001, CDL015).
"""

from __future__ import annotations

import re

from .diagnostics import CODES

_DISABLE = re.compile(r"#\s*cedarlint:\s*disable=([A-Z0-9,\s]+)")
_LEGACY = re.compile(r"#\s*lint:\s*(allow-[a-z-]+)")

#: legacy pragma name -> code, derived from the registry.
LEGACY_PRAGMAS: dict[str, str] = {
    info.legacy_pragma: info.code
    for info in CODES.values()
    if info.legacy_pragma is not None
}


def suppressed_codes(line: str) -> frozenset[str]:
    """The codes a source line's pragmas silence (empty when none)."""
    codes: set[str] = set()
    match = _DISABLE.search(line)
    if match:
        codes.update(
            token for token in re.split(r"[,\s]+", match.group(1))
            if token
        )
    for match in _LEGACY.finditer(line):
        code = LEGACY_PRAGMAS.get(match.group(1))
        if code is not None:
            codes.add(code)
    return frozenset(
        code for code in codes
        if code in CODES and CODES[code].suppressible
    )


def suppresses(line: str, code: str) -> bool:
    return code in suppressed_codes(line)
