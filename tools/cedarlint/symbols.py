"""Per-module symbol resolution: imports, aliases, dotted names.

Rules never pattern-match bare attribute spellings; they ask the symbol
table what a name *resolves to*, so ``import time as t; t.sleep(...)``
and ``from time import sleep; sleep(...)`` both resolve to
``time.sleep``. Resolution is purely syntactic — no modules are
imported — and deliberately conservative: a name that is shadowed,
reassigned, or unresolvable qualifies to ``None`` and the rules stay
silent.
"""

from __future__ import annotations

import ast


class SymbolTable:
    """Top-level import bindings of one module."""

    def __init__(self, tree: ast.AST, module: str | None = None) -> None:
        #: local name -> fully dotted target ("t" -> "time",
        #: "sleep" -> "time.sleep").
        self.imports: dict[str, str] = {}
        #: names bound by non-import statements at module scope —
        #: assignments, defs, classes. Used to detect shadowing of
        #: builtins (``id``) and imported names.
        self.assigned: set[str] = set()
        self.module = module
        self._collect(tree)

    def _collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else (
                        alias.name.split(".")[0]
                    )
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_module(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.assigned.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assigned.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    self.assigned.add(node.target.id)

    def _absolute_module(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        # ``from .x import y`` inside package a.b -> a.b.x (level 1
        # strips the module's own leaf name, each further level one
        # more package).
        parts = self.module.split(".")
        if node.level > len(parts):
            return None
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    # -- resolution ----------------------------------------------------------

    def qualify(self, node: ast.expr) -> str | None:
        """The fully dotted name an expression refers to, or None.

        ``Name`` resolves through the import table; dotted
        ``Attribute`` chains resolve their root and append the
        attribute path. A root that is not an import resolves to None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def is_builtin(self, name: str) -> bool:
        """True when ``name`` still means the builtin in this module."""
        return name not in self.imports and name not in self.assigned
