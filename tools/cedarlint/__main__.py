"""CLI: ``python -m tools.cedarlint [paths...]``.

Exit code is 1 iff any finding is *new* — i.e. not pragma-suppressed
and not in the checked-in baseline. Baselined warnings are reported but
don't fail the run, so CI can gate on "the baseline only shrinks".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .diagnostics import CODES, ERROR, code_table
from .engine import LintConfig, LintResult, run_lint

#: Scanned when no paths are given; missing roots are skipped (the
#: repo keeps its experiments under ``src/repro/experiments/``, but the
#: documented invocation names a top-level ``experiments`` too).
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "experiments", "tools")

DEFAULT_BASELINE = "tools/cedarlint/baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.cedarlint",
        description=(
            "cedarlint: determinism, concurrency, and layering "
            "analysis for this repo"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--repo-root", type=Path, default=None,
        help="repository root paths are resolved against (default: cwd "
             "or the checkout containing this tool)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from this run's warnings and exit "
             "(refuses if any error-severity findings remain)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated code list to run (e.g. CDL011,CDL020)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-codes", action="store_true",
        help="print the diagnostic code table and exit",
    )
    return parser


def _resolve_repo_root(arg: Path | None) -> Path:
    if arg is not None:
        return arg.resolve()
    here = Path(__file__).resolve()
    cwd = Path.cwd().resolve()
    try:
        here.relative_to(cwd)
        return cwd
    except ValueError:
        return here.parent.parent.parent  # tools/cedarlint/__main__.py


def _print_text(result: LintResult, baseline_count: int) -> None:
    for diagnostic in result.new:
        print(diagnostic.render())
    errors = sum(1 for d in result.new if d.severity == ERROR)
    warnings = len(result.new) - errors
    summary = (
        f"cedarlint: {result.files} files, {errors} errors, "
        f"{warnings} warnings"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if baseline_count and not result.baselined:
        extras.append(f"baseline has {baseline_count} stale entries")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_codes:
        for info in code_table():
            pragma = (
                f"  pragma: # lint: {info.legacy_pragma}"
                if info.legacy_pragma else ""
            )
            if not info.suppressible:
                pragma = "  (unsuppressible)"
            print(f"{info.code}  {info.severity:7s} {info.family:12s} "
                  f"{info.summary}{pragma}")
        return 0

    repo_root = _resolve_repo_root(args.repo_root)
    names = args.paths or list(DEFAULT_ROOTS)
    roots = [
        path if path.is_absolute() else repo_root / path
        for path in (Path(name) for name in names)
    ]

    select = None
    if args.select:
        select = frozenset(
            code.strip().upper() for code in args.select.split(",")
            if code.strip()
        )
        unknown = select - CODES.keys()
        if unknown:
            print(f"unknown codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    baseline_path = args.baseline or repo_root / DEFAULT_BASELINE
    baseline = (
        Baseline() if args.no_baseline or args.write_baseline
        else Baseline.load(baseline_path)
    )

    result = run_lint(LintConfig(
        repo_root=repo_root,
        roots=roots,
        select=select,
        baseline=baseline,
    ))

    if args.write_baseline:
        errors = [d for d in result.findings if d.severity == ERROR]
        if errors:
            for diagnostic in errors:
                print(diagnostic.render(), file=sys.stderr)
            print(
                f"cedarlint: refusing to baseline {len(errors)} "
                "error-severity findings — fix or pragma them first",
                file=sys.stderr,
            )
            return 1
        count = Baseline.write(baseline_path, result.findings)
        print(f"cedarlint: wrote {count} entries to "
              f"{baseline_path.relative_to(repo_root)}")
        return 0

    if args.format == "json":
        print(json.dumps(
            {
                "files": result.files,
                "new": [d.to_dict() for d in result.new],
                "baselined": [d.to_dict() for d in result.baselined],
                "suppressed": result.suppressed,
            },
            indent=2,
        ))
    else:
        _print_text(result, len(baseline))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
