"""Layering rules (CDL03x) — the six legacy invariants' ownership half.

These port ``tools/check_invariants.py``'s layer boundaries:

* CDL030 — no direct ``Engine()`` construction outside sqlengine/
  (legacy invariant 1);
* CDL031 — sqlite imports only inside ``src/repro/cache/`` (invariant 5);
* CDL032 — ``column_array`` / ``_arrays`` access only inside
  ``src/repro/sqlengine/`` and its tests (invariant 6);
* CDL033 — examples and fenced docs snippets import only ``__all__``
  names from ``repro`` packages (invariant 4).

(The behavioural half of the legacy set — seedless ``random.Random()``
and the obs clock ban — lives in the determinism family as CDL011 and
CDL015.)
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Project
from . import ModuleRule, ProjectRule

#: Directories whose files may construct Engine() directly: the owning
#: package, plus tests/benchmarks/tools that exercise configurations on
#: purpose.
_ENGINE_EXEMPT = ("src/repro/sqlengine", "tests", "benchmarks", "tools")

#: The one package allowed to open sqlite connections.
_SQLITE_OWNER = "src/repro/cache"

#: Owners of the columnar storage layout.
_COLUMN_ARRAY_OWNERS = ("src/repro/sqlengine", "tests/sqlengine")
_COLUMN_ARRAY_ATTRS = ("column_array", "_arrays")

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


class EngineConstructionRule(ModuleRule):
    """CDL030: direct ``Engine()`` construction outside sqlengine/."""

    code = "CDL030"
    name = "engine-construction"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if ctx.in_dir(*_ENGINE_EXEMPT):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            named = (
                isinstance(func, ast.Name) and func.id == "Engine"
            ) or (
                isinstance(func, ast.Attribute) and func.attr == "Engine"
            )
            if named:
                yield ctx.diagnostic(
                    self.code, node,
                    "direct Engine() construction outside sqlengine/ — "
                    "use engine_for(db) so queries share the "
                    "process-wide caches (# lint: allow-engine to opt "
                    "out)",
                )


class SqliteOwnershipRule(ModuleRule):
    """CDL031: sqlite stays behind ``src/repro/cache/``."""

    code = "CDL031"
    name = "sqlite-ownership"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if ctx.in_dir(_SQLITE_OWNER):
            return
        message = (
            "sqlite used outside src/repro/cache/ — the persistent tier "
            "owns connection, quarantine, and eviction policy "
            "(# lint: allow-sqlite to opt out)"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                hit = any(
                    alias.name.split(".")[0] == "sqlite3"
                    for alias in node.names
                )
            elif isinstance(node, ast.ImportFrom):
                hit = bool(node.module) and (
                    node.module.split(".")[0] == "sqlite3"
                )
            else:
                continue
            if hit:
                yield ctx.diagnostic(self.code, node, message)


class ColumnArrayRule(ModuleRule):
    """CDL032: columnar storage stays behind the sqlengine package."""

    code = "CDL032"
    name = "column-array"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if ctx.in_dir(*_COLUMN_ARRAY_OWNERS):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _COLUMN_ARRAY_ATTRS
            ):
                yield ctx.diagnostic(
                    self.code, node,
                    f"{node.attr} accessed outside src/repro/sqlengine/ "
                    "— column arrays are internal storage; consume rows, "
                    "column_values, or Table.from_columns instead "
                    "(# lint: allow-column-array to opt out)",
                )


class PublicSurfaceRule(ProjectRule):
    """CDL033: showcased code imports only the public surface.

    A project rule: it audits files *outside* the scanned roots —
    ``examples/*.py`` plus the parseable ```` ```python ```` blocks of
    ``README.md`` and ``docs/*.md`` — against ``__all__`` declarations
    parsed (not imported) from every ``src/repro/**/__init__.py``.
    """

    code = "CDL033"
    name = "public-surface"

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        if not project.include_showcase:
            return
        root = project.repo_root
        surface = self._public_surface(project)
        examples = root / "examples"
        if examples.is_dir():
            for path in sorted(examples.glob("*.py")):
                relative = str(path.relative_to(root))
                try:
                    tree = ast.parse(path.read_text(encoding="utf-8"))
                except SyntaxError:
                    continue  # CDL001 belongs to the parse pass
                yield from self._surface_diagnostics(
                    relative, tree, 0, surface
                )
        docs = [root / "README.md"]
        docs.extend(sorted((root / "docs").glob("*.md")))
        for path in docs:
            if not path.is_file():
                continue
            relative = str(path.relative_to(root))
            text = path.read_text(encoding="utf-8")
            for match in _FENCED_PYTHON.finditer(text):
                try:
                    tree = ast.parse(match.group(1))
                except SyntaxError:
                    continue  # prose-ish snippet (ellipses etc.)
                line_base = text[: match.start(1)].count("\n")
                yield from self._surface_diagnostics(
                    relative, tree, line_base, surface
                )

    @staticmethod
    def _public_surface(project: Project) -> dict[str, set[str] | None]:
        """``__all__`` per ``repro`` package, parsed without importing."""
        surface: dict[str, set[str] | None] = {}
        package_root = project.repo_root / "src" / "repro"
        for init in package_root.rglob("__init__.py"):
            module = ".".join(
                init.parent.relative_to(project.repo_root / "src").parts
            )
            try:
                tree = ast.parse(init.read_text(encoding="utf-8"))
            except SyntaxError:
                surface[module] = None
                continue
            names: set[str] | None = None
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                ):
                    try:
                        names = set(ast.literal_eval(node.value))
                    except ValueError:
                        names = None
            surface[module] = names
        return surface

    def _surface_diagnostics(
        self,
        where: str,
        tree: ast.AST,
        line_base: int,
        surface: dict[str, set[str] | None],
    ) -> Iterator[Diagnostic]:
        def emit(node: ast.AST, message: str) -> Diagnostic:
            return Diagnostic(
                code=self.code,
                path=where,
                line=line_base + node.lineno,
                message=message,
            )

        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            module = node.module or ""
            if module.split(".")[0] != "repro":
                continue
            if module not in surface:
                yield emit(
                    node,
                    f"import from {module} — examples and docs must "
                    "import from a repro package, not a deep module",
                )
                continue
            exported = surface[module]
            if exported is None:
                yield emit(
                    node,
                    f"{module} has no parseable __all__ — give the "
                    "package an explicit public surface",
                )
                continue
            for alias in node.names:
                if alias.name != "*" and alias.name not in exported:
                    yield emit(
                        node,
                        f"{module}.{alias.name} is not in "
                        f"{module}.__all__ — export it or drop it from "
                        "showcased code",
                    )


RULES = (
    EngineConstructionRule,
    SqliteOwnershipRule,
    ColumnArrayRule,
    PublicSurfaceRule,
)
