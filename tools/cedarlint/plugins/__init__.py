"""The cedarlint plugin API and rule registry.

A rule is a small class with a ``code`` and a ``check``/``check_project``
method yielding :class:`~tools.cedarlint.diagnostics.Diagnostic`s. Two
shapes exist:

* :class:`ModuleRule` — stateless per-file analysis; ``check(ctx)`` is
  called once per parsed module with its AST, symbol table, and zone
  predicates.
* :class:`ProjectRule` — whole-program analysis; ``check_project(project)``
  is called once after every module parsed, for rules that need
  cross-file state (the lock-acquisition graph, the public-surface
  audit over examples and docs).

Writing a plugin:

1. Register a code in ``diagnostics.py`` (append-only; pick the family
   by prefix).
2. Subclass the fitting base below, emit diagnostics via
   ``ctx.diagnostic(...)`` / ``project.diagnostic(...)`` so paths and
   context lines are filled consistently.
3. Add the class to ``ALL_RULES`` here and a known-bad fixture to
   ``tests/tools/``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import ModuleContext, Project


class ModuleRule:
    """Per-module rule: one ``check`` call per parsed file."""

    code: str = ""
    name: str = ""

    def check(self, ctx: "ModuleContext") -> Iterable["Diagnostic"]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.code}>"


class ProjectRule:
    """Whole-program rule: one ``check_project`` call per run."""

    code: str = ""
    name: str = ""

    def check_project(self, project: "Project") -> Iterable["Diagnostic"]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.code}>"


def all_rules() -> list[ModuleRule | ProjectRule]:
    """Fresh instances of every registered rule."""
    from . import concurrency, determinism, layering

    rules: list[ModuleRule | ProjectRule] = []
    for module in (determinism, concurrency, layering):
        rules.extend(factory() for factory in module.RULES)
    return rules
