"""Concurrency rules (CDL02x).

The repo mixes a thread-pool executor, a threaded service layer, and an
asyncio cluster. The three hazards worth automating:

* **lock-order inversion** (CDL020) — a cycle in the project-wide
  lock-acquisition graph built by :mod:`..lockgraph`, plus the direct
  form: lexically re-acquiring a non-reentrant lock already held;
* **unguarded shared mutation** (CDL021) — an attribute a class itself
  treats as lock-guarded (written under ``with self._lock`` somewhere)
  being written elsewhere without any of the instance's locks held;
* **blocking calls in async bodies** (CDL022) — ``time.sleep``,
  synchronous subprocess/socket/sqlite operations lexically inside an
  ``async def``, which stall the whole event loop. Nested synchronous
  ``def``/``lambda`` bodies are exempt: that is exactly the
  ``run_in_executor`` pattern.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..dataflow import ASYNC_LOCK, LOCK, classify
from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Project
from ..lockgraph import LockGraph
from . import ModuleRule, ProjectRule

#: Where the lock graph is built: every zone that shares threading
#: locks across call boundaries.
_LOCK_GRAPH_ZONES = (
    "src/repro/core",
    "src/repro/service",
    "src/repro/cluster",
    "src/repro/cache",
    "src/repro/obs",
    "src/repro/llm",
    "src/repro/sqlengine",
)

#: Calls that block the calling thread — poison inside an event loop.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.getoutput",
    "os.system", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "sqlite3.connect",
    "select.select",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.request",
})


class LockOrderRule(ProjectRule):
    """CDL020: lock-order inversions and direct re-acquisition."""

    code = "CDL020"
    name = "lock-order"

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        scoped = Project(
            repo_root=project.repo_root,
            modules=[
                ctx for ctx in project.modules
                if ctx.in_dir(*_LOCK_GRAPH_ZONES)
            ],
            include_showcase=False,
        )
        if not scoped.modules:
            return
        graph = LockGraph(scoped)
        for lock, site in graph.self_deadlocks():
            yield Diagnostic(
                code=self.code,
                path=site.path,
                line=site.line,
                message=(
                    f"non-reentrant lock {lock} re-acquired while "
                    "already held — this deadlocks a single thread; "
                    "use threading.RLock or restructure"
                ),
                context=site.context,
            )
        for cycle in graph.cycles():
            order = " -> ".join(
                [edge.held.qualified for edge in cycle]
                + [cycle[0].held.qualified]
            )
            witness = cycle[0].site
            others = "; ".join(
                f"{e.held.qualified} -> {e.acquired.qualified} at "
                f"{e.site.path}:{e.site.line}"
                for e in cycle[1:]
            )
            message = (
                f"lock-order inversion: cycle {order} — two threads "
                "taking these locks in opposite orders can deadlock"
            )
            if others:
                message += f" (opposing acquisitions: {others})"
            yield Diagnostic(
                code=self.code,
                path=witness.path,
                line=witness.line,
                message=message,
                context=witness.context,
            )


class UnguardedMutationRule(ModuleRule):
    """CDL021: lock-guarded attribute written without the lock."""

    code = "CDL021"
    name = "unguarded-mutation"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if not ctx.in_library:
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        lock_attrs = self._lock_attrs(ctx, cls)
        if not lock_attrs:
            return
        methods = [
            item for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pass 1: which attrs does this class itself guard?
        guarded: set[str] = set()
        writes: list[tuple[str, ast.AST, bool]] = []  # (attr, node, locked)
        for method in methods:
            if method.name == "__init__":
                continue  # publication happens-before any sharing
            for attr, node, locked in self._walk_writes(
                method, lock_attrs
            ):
                writes.append((attr, node, locked))
                if locked:
                    guarded.add(attr)
        guarded -= lock_attrs
        # Pass 2: writes of guarded attrs outside any lock.
        for attr, node, locked in writes:
            if attr in guarded and not locked:
                yield ctx.diagnostic(
                    self.code, node,
                    f"self.{attr} is written under the lock elsewhere in "
                    f"{cls.name} but mutated here without it — either "
                    "take the lock or document why this site is safe",
                )

    @staticmethod
    def _lock_attrs(ctx: ModuleContext, cls: ast.ClassDef) -> set[str]:
        """Attrs holding *threading* locks (asyncio locks serialise via
        the event loop; await-context analysis is out of scope)."""
        attrs: set[str] = set()
        for node in ast.walk(cls):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and classify(node.value, ctx.symbols) is LOCK
            ):
                attrs.add(target.attr)
        return attrs

    def _walk_writes(
        self,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> Iterator[tuple[str, ast.AST, bool]]:
        """Yield (attr, node, lock_held) for every ``self.attr`` write."""

        def self_attr(expr: ast.expr) -> str | None:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return expr.attr
            # self.attr[key] = ... mutates the container in self.attr
            if isinstance(expr, ast.Subscript):
                return self_attr(expr.value)
            return None

        def holds_lock(item: ast.withitem) -> bool:
            expr = item.context_expr
            attr = self_attr(expr)
            return attr in lock_attrs if attr is not None else False

        def walk(node: ast.AST, locked: bool) -> Iterator[
            tuple[str, ast.AST, bool]
        ]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = locked or any(holds_lock(i) for i in node.items)
                for child in node.body:
                    yield from walk(child, inner)
                return
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = self_attr(target)
                if attr is not None:
                    yield attr, node, locked
            for child in ast.iter_child_nodes(node):
                yield from walk(child, locked)

        for statement in method.body:
            yield from walk(statement, False)


class AsyncBlockingRule(ModuleRule):
    """CDL022: blocking calls lexically inside ``async def`` bodies."""

    code = "CDL022"
    name = "async-blocking"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async(ctx, node)

    def _check_async(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        def walk(node: ast.AST) -> Iterator[Diagnostic]:
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                return  # sync callables handed to run_in_executor
            if isinstance(node, ast.AsyncFunctionDef) and node is not func:
                return  # analysed as its own async scope
            if isinstance(node, ast.Call):
                qualified = ctx.symbols.qualify(node.func)
                if qualified in _BLOCKING_CALLS:
                    yield ctx.diagnostic(
                        self.code, node,
                        f"{qualified}() blocks the event loop inside "
                        f"async {func.name}() — await the asyncio "
                        "equivalent or push it through run_in_executor "
                        "(# lint: allow-blocking to opt out)",
                    )
            for child in ast.iter_child_nodes(node):
                yield from walk(child)

        for statement in func.body:
            yield from walk(statement)


RULES = (LockOrderRule, UnguardedMutationRule, AsyncBlockingRule)
