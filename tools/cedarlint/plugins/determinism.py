"""Determinism rules (CDL01x).

The repo's headline guarantee is byte-identity: parallel == sequential,
cold == warm, traced == untraced, cluster == single-process. Everything
here flags a way Python code silently breaks that — wall clocks in
deterministic zones, the process-global RNG, ``id()`` keys that vary
per run, and unordered set iteration feeding ordered output.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..dataflow import SET, scope_bindings
from ..diagnostics import Diagnostic
from ..engine import ModuleContext
from . import ModuleRule

#: Zones whose outputs are asserted byte-identical across runs; a
#: wall-clock read here either flows into a report (bug) or belongs
#: behind an injected clock (like repro/obs/ and llm/resilience do).
_DETERMINISTIC_ZONES = ("src/repro/core", "src/repro/sqlengine")

_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level functions on ``random`` that read or mutate the shared
#: global generator (``random.Random`` — constructing an instance — is
#: CDL011's business, and instance methods are fine).
_GLOBAL_RANDOM = frozenset({
    "seed", "random", "randint", "randrange", "randbytes", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "vonmisesvariate",
    "gammavariate", "betavariate", "paretovariate", "weibullvariate",
    "getrandbits", "setstate",
})

#: Mapping/set methods whose first argument is a key.
_KEYED_METHODS = frozenset(
    {"add", "discard", "remove", "get", "setdefault", "pop"}
)

#: Builtins that materialise their argument's iteration order.
_ORDERING_CALLS = frozenset({"list", "tuple", "enumerate"})


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class
    bodies (each is analysed as its own scope)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class WallClockRule(ModuleRule):
    """CDL010: wall-clock reads in deterministic zones."""

    code = "CDL010"
    name = "wall-clock"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if not ctx.in_dir(*_DETERMINISTIC_ZONES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.symbols.qualify(node.func)
            if qualified in _WALL_CLOCKS:
                yield ctx.diagnostic(
                    self.code, node,
                    f"{qualified}() read in deterministic code "
                    f"({ctx.relative.parts[2]}/) — inject a clock "
                    "callable instead so byte-identity tests can pin it",
                )


class UnseededRandomRule(ModuleRule):
    """CDL011: ``random.Random()`` with no seed (legacy invariant 2)."""

    code = "CDL011"
    name = "unseeded-random"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and not node.args and not node.keywords
                and ctx.symbols.qualify(node.func) == "random.Random"
            ):
                yield ctx.diagnostic(
                    self.code, node,
                    "random.Random() without a seed breaks reproducible "
                    "transcripts — pass an explicit seed "
                    "(# lint: allow-unseeded to opt out)",
                )


class GlobalRandomRule(ModuleRule):
    """CDL012: library code touching the process-global RNG."""

    code = "CDL012"
    name = "global-random"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.symbols.qualify(node.func)
            if (
                qualified is not None
                and qualified.startswith("random.")
                and qualified.split(".", 1)[1] in _GLOBAL_RANDOM
            ):
                yield ctx.diagnostic(
                    self.code, node,
                    f"{qualified}() uses the shared global RNG — library "
                    "code must draw from an explicitly seeded "
                    "random.Random instance (parallel workers would "
                    "otherwise interleave draws nondeterministically)",
                )


class IdKeyRule(ModuleRule):
    """CDL013: ``id()`` used as a mapping key or set element.

    ``id()`` values are allocation addresses: stable within a process,
    different across runs. Keying durable or serialised state on them
    silently breaks cold==warm and cluster==single-process identities;
    the pattern is only sound for process-local interning, which a
    pragma should document.
    """

    code = "CDL013"
    name = "id-key"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            for key_expr in self._key_positions(node):
                call = self._id_call(key_expr, ctx)
                if call is not None:
                    yield ctx.diagnostic(
                        self.code, call,
                        "id()-derived value used as a key — ids are "
                        "per-process addresses; key on content "
                        "fingerprints for anything that outlives the "
                        "process (# lint: allow-id-key to opt out)",
                    )

    @staticmethod
    def _key_positions(node: ast.AST) -> Iterator[ast.expr]:
        if isinstance(node, ast.Dict):
            yield from (k for k in node.keys if k is not None)
        elif isinstance(node, ast.Set):
            yield from node.elts
        elif isinstance(node, ast.SetComp):
            yield node.elt
        elif isinstance(node, ast.DictComp):
            yield node.key
        elif isinstance(node, ast.Subscript):
            yield node.slice
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _KEYED_METHODS
            and node.args
        ):
            yield node.args[0]

    @staticmethod
    def _id_call(expr: ast.expr, ctx: ModuleContext) -> ast.Call | None:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and ctx.symbols.is_builtin("id")
                and len(node.args) == 1
            ):
                return node
        return None


class SetIterationRule(ModuleRule):
    """CDL014: unordered set iteration materialised into ordered output.

    ``list({...})`` / ``tuple(a_set)`` / ``"".join(a_set)`` and list
    comprehensions over sets produce an ordering that depends on hash
    seeding and insertion history. Anything rendered, serialised, or
    compared byte-wise must go through ``sorted()`` first.
    """

    code = "CDL014"
    name = "set-iteration"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if not ctx.in_library:
            return
        for scope in _scopes(ctx.tree):
            bindings = scope_bindings(scope, ctx.symbols)

            def is_set(expr: ast.expr) -> bool:
                if isinstance(expr, (ast.Set, ast.SetComp)):
                    return True
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Name)
                    and expr.func.id in ("set", "frozenset")
                    and ctx.symbols.is_builtin(expr.func.id)
                ):
                    return True
                return (
                    isinstance(expr, ast.Name)
                    and bindings.get(expr.id) is SET
                )

            for node in _walk_scope(scope):
                target: ast.expr | None = None
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDERING_CALLS
                    and ctx.symbols.is_builtin(node.func.id)
                    and len(node.args) == 1
                ):
                    target = node.args[0]
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and len(node.args) == 1
                ):
                    target = node.args[0]
                elif isinstance(node, ast.ListComp):
                    target = node.generators[0].iter
                if target is not None and is_set(target):
                    yield ctx.diagnostic(
                        self.code, node,
                        "set iteration feeds ordered output — wrap the "
                        "set in sorted() so the ordering is "
                        "content-defined, not hash-defined",
                    )


class ObsClockRule(ModuleRule):
    """CDL015: clock calls / random imports inside ``repro/obs/``.

    Ports legacy invariant 3 and widens it: *any* resolvable call into
    the ``time`` module is banned (so ``from time import perf_counter``
    no longer slips through), and ``random`` may not be imported at
    all. Span identity must stay structural; wall times flow only
    through the injected ``clock`` callable. Unsuppressible: there is
    no legitimate exception.
    """

    code = "CDL015"
    name = "obs-clock"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        if not ctx.in_obs:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qualified = ctx.symbols.qualify(node.func)
                if qualified is not None and (
                    qualified == "time" or qualified.startswith("time.")
                ):
                    yield ctx.diagnostic(
                        self.code, node,
                        f"{qualified}() called inside repro/obs/ — wall "
                        "times must come from the injected clock (pass "
                        "time functions by reference only)",
                    )
            elif isinstance(node, ast.Import):
                if any(a.name.split(".")[0] == "random"
                       for a in node.names):
                    yield ctx.diagnostic(
                        self.code, node,
                        "random imported inside repro/obs/ — span "
                        "identity must be structural, never RNG-derived",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield ctx.diagnostic(
                        self.code, node,
                        "random imported inside repro/obs/ — span "
                        "identity must be structural, never RNG-derived",
                    )


RULES = (
    WallClockRule,
    UnseededRandomRule,
    GlobalRandomRule,
    IdKeyRule,
    SetIterationRule,
    ObsClockRule,
)
