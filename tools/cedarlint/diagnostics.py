"""Diagnostic model: stable ``CDL0xx`` codes, severities, rendering.

Code families (mirroring the SQLA convention from
``src/repro/sqlengine/analyzer.py``):

* ``CDL00x`` — analyzer plumbing (unparseable files).
* ``CDL01x`` — determinism: anything that could make two runs of the
  same seed diverge (wall clocks, global RNG state, ``id()`` keys,
  unordered iteration feeding ordered output).
* ``CDL02x`` — concurrency: lock-order inversions, unguarded shared
  mutation, blocking calls on the event loop.
* ``CDL03x`` — layering: module-ownership boundaries (engine
  construction, sqlite, column arrays, the public import surface).

Severity semantics
------------------

``error``    breaks a guarantee the test suite enforces end-to-end
             (byte-identical reports, deadlock freedom, module
             ownership). Errors must be fixed or explicitly pragma'd at
             the site; the baseline never grandfathers them.
``warning``  a hazard pattern that is sometimes deliberate (identity
             keys, unordered iteration). Warnings may live in the
             checked-in baseline, which is only allowed to shrink.

Codes are append-only: a code's meaning never changes, retired codes
are never reused — tests, baselines, and pragmas all key on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"

#: Sort weight: errors first.
_SEVERITY_ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class CodeInfo:
    """One registered diagnostic code."""

    code: str
    severity: str
    family: str
    summary: str
    #: Legacy ``# lint: allow-<name>`` pragma absorbed by this code
    #: (pre-cedarlint sites keep working unchanged).
    legacy_pragma: str | None = None
    #: False for codes with no legitimate exception: neither pragmas
    #: nor the baseline may silence them.
    suppressible: bool = True


CODES: dict[str, CodeInfo] = {}


def _register(*infos: CodeInfo) -> None:
    for info in infos:
        if info.code in CODES:
            raise ValueError(f"duplicate diagnostic code {info.code}")
        CODES[info.code] = info


_register(
    CodeInfo("CDL001", ERROR, "plumbing",
             "file does not parse (syntax error)", suppressible=False),
    # -- determinism ---------------------------------------------------------
    CodeInfo("CDL010", WARNING, "determinism",
             "wall-clock read in deterministic library code"),
    CodeInfo("CDL011", ERROR, "determinism",
             "random.Random() without a seed",
             legacy_pragma="allow-unseeded"),
    CodeInfo("CDL012", ERROR, "determinism",
             "module-level random.* call mutates the shared global RNG"),
    CodeInfo("CDL013", WARNING, "determinism",
             "id()-derived value used as a mapping key or set element",
             legacy_pragma="allow-id-key"),
    CodeInfo("CDL014", WARNING, "determinism",
             "unordered set iteration feeding ordered output"),
    CodeInfo("CDL015", ERROR, "determinism",
             "clock call or random import inside repro/obs/",
             suppressible=False),
    # -- concurrency ---------------------------------------------------------
    CodeInfo("CDL020", ERROR, "concurrency",
             "potential lock-order inversion (cycle in the "
             "lock-acquisition graph)"),
    CodeInfo("CDL021", WARNING, "concurrency",
             "lock-guarded attribute written without the owning lock"),
    CodeInfo("CDL022", ERROR, "concurrency",
             "blocking call inside an async def body",
             legacy_pragma="allow-blocking"),
    # -- layering ------------------------------------------------------------
    CodeInfo("CDL030", ERROR, "layering",
             "direct Engine() construction outside sqlengine/",
             legacy_pragma="allow-engine"),
    CodeInfo("CDL031", ERROR, "layering",
             "sqlite used outside src/repro/cache/",
             legacy_pragma="allow-sqlite"),
    CodeInfo("CDL032", ERROR, "layering",
             "column arrays accessed outside src/repro/sqlengine/",
             legacy_pragma="allow-column-array"),
    CodeInfo("CDL033", ERROR, "layering",
             "showcased code imports outside the public __all__ surface"),
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pinned to a repo-relative location.

    ``context`` is the stripped source line — the baseline keys on
    ``(path, code, context)`` so findings survive unrelated line-number
    churn in the same file.
    """

    code: str
    path: str               # repo-relative, posix separators
    line: int
    message: str
    context: str = ""
    severity: str = field(default="")

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(
                self, "severity", CODES[self.code].severity
            )

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code, self.message)

    @property
    def severity_rank(self) -> int:
        return _SEVERITY_ORDER.get(self.severity, 9)

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.code} "
                f"[{self.severity}] {self.message}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }


def code_table() -> list[CodeInfo]:
    """Every registered code, sorted — ``--list-codes`` and the docs."""
    return [CODES[code] for code in sorted(CODES)]
