"""The cedarlint driver: collect, parse, run rules, suppress, baseline.

The engine is path-zone aware: rules decide applicability from the
*repo-relative* location of a file (``src/repro/obs/`` gets the clock
ban, ``examples/`` only the surface rule, …), so the whole analysis can
be pointed at a fixture tree in tests by passing a different
``repo_root``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable

from .baseline import Baseline
from .diagnostics import CODES, Diagnostic
from .plugins import ModuleRule, ProjectRule, all_rules
from .pragmas import suppresses
from .symbols import SymbolTable

#: Directories never scanned.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintConfig:
    """One run's inputs."""

    repo_root: Path
    roots: list[Path]
    select: frozenset[str] | None = None     # None = every code
    #: Audit examples/ + README/docs snippets (CDL033). Off for
    #: fixture runs that have no showcase tree.
    include_showcase: bool = True
    baseline: Baseline | None = None


class ModuleContext:
    """Everything a :class:`ModuleRule` needs about one parsed file."""

    def __init__(self, path: Path, relative: PurePosixPath,
                 source: str, tree: ast.Module) -> None:
        self.path = path
        self.relative = relative
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module = self._module_name(relative)
        self.symbols = SymbolTable(tree, module=self.module)

    @staticmethod
    def _module_name(relative: PurePosixPath) -> str | None:
        parts = relative.parts
        if parts[:1] != ("src",) or not parts[-1].endswith(".py"):
            return None
        dotted = list(parts[1:-1])
        leaf = parts[-1][: -len(".py")]
        if leaf != "__init__":
            dotted.append(leaf)
        return ".".join(dotted) if dotted else None

    # -- zones ---------------------------------------------------------------

    def in_dir(self, *prefixes: str) -> bool:
        return any(
            self.relative.is_relative_to(prefix) for prefix in prefixes
        )

    @property
    def in_library(self) -> bool:
        """Inside ``src/`` — the zone where determinism is load-bearing."""
        return self.in_dir("src")

    @property
    def in_obs(self) -> bool:
        return self.in_dir("src/repro/obs")

    # -- emission ------------------------------------------------------------

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def diagnostic(self, code: str, node: ast.AST | int,
                   message: str) -> Diagnostic:
        lineno = node if isinstance(node, int) else node.lineno
        return Diagnostic(
            code=code,
            path=str(self.relative),
            line=lineno,
            message=message,
            context=self.line_text(lineno).strip(),
        )


@dataclass
class Project:
    """Whole-program view handed to :class:`ProjectRule`s."""

    repo_root: Path
    modules: list[ModuleContext]
    include_showcase: bool = True

    def module_by_name(self, dotted: str) -> ModuleContext | None:
        for ctx in self.modules:
            if ctx.module == dotted:
                return ctx
        return None


@dataclass
class LintResult:
    """A finished run: findings split by baseline status."""

    findings: list[Diagnostic] = field(default_factory=list)
    new: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def collect_files(roots: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.append(root)
            continue
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in path.parts):
                files.append(path)
    return files


def parse_modules(
    config: LintConfig,
) -> tuple[list[ModuleContext], list[Diagnostic]]:
    contexts: list[ModuleContext] = []
    broken: list[Diagnostic] = []
    for path in collect_files(config.roots):
        relative = PurePosixPath(
            path.resolve().relative_to(config.repo_root.resolve())
        )
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(relative))
        except SyntaxError as error:
            broken.append(Diagnostic(
                code="CDL001",
                path=str(relative),
                line=error.lineno or 1,
                message=f"syntax error: {error.msg}",
            ))
            continue
        contexts.append(ModuleContext(path, relative, source, tree))
    return contexts, broken


def run_lint(config: LintConfig) -> LintResult:
    """The whole pipeline: parse -> rules -> pragmas -> baseline."""
    contexts, findings = parse_modules(config)
    project = Project(
        repo_root=config.repo_root,
        modules=contexts,
        include_showcase=config.include_showcase,
    )
    for rule in all_rules():
        if config.select is not None and rule.code not in config.select:
            continue
        if isinstance(rule, ModuleRule):
            for ctx in contexts:
                findings.extend(rule.check(ctx))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))

    result = LintResult(files=len(contexts))
    sources = {str(ctx.relative): ctx for ctx in contexts}
    kept: list[Diagnostic] = []
    for diagnostic in sorted(findings, key=lambda d: d.sort_key):
        if CODES[diagnostic.code].suppressible:
            ctx = sources.get(diagnostic.path)
            line = (ctx.line_text(diagnostic.line)
                    if ctx is not None else "")
            if suppresses(line, diagnostic.code):
                result.suppressed += 1
                continue
        kept.append(diagnostic)
    result.findings = kept

    if config.baseline is not None:
        result.new, result.baselined = config.baseline.split(kept)
    else:
        result.new = list(kept)
    return result
