"""The checked-in baseline: grandfathered warnings, shrink-only.

A baseline entry is ``(path, code, context)`` — the stripped source
line, not the line number, so unrelated edits to a file don't churn the
baseline. Matching is multiset-wise: two identical hazards on identical
lines need two entries.

Policy (enforced here and by the CI gate):

* error-severity findings are never baselined — ``write`` refuses them,
  so the only way past an error is to fix it or pragma the site;
* a finding missing from the baseline fails the run (exit 1) — new
  hazards can't land silently;
* stale entries (baselined hazards that were fixed) are dropped on the
  next ``--write-baseline``, so the file only ever shrinks unless a
  human deliberately regenerates it with new *warnings*.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .diagnostics import CODES, ERROR, Diagnostic


def _key(diagnostic: Diagnostic) -> tuple[str, str, str]:
    return (diagnostic.path, diagnostic.code, diagnostic.context)


class Baseline:
    """An in-memory multiset of grandfathered findings."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = entries or []
        self._counts: Counter = Counter(
            (entry["path"], entry["code"], entry.get("context", ""))
            for entry in self.entries
        )

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls([])
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(list(data.get("entries", [])))

    @staticmethod
    def write(path: Path, findings: list[Diagnostic]) -> int:
        """Persist ``findings`` as the new baseline; returns the count.

        Refuses error-severity findings: the baseline grandfathers
        hazards, it does not waive guarantees.
        """
        errors = [d for d in findings if d.severity == ERROR]
        if errors:
            raise ValueError(
                "refusing to baseline error-severity findings "
                "(fix or pragma them instead):\n"
                + "\n".join(d.render() for d in errors)
            )
        entries = [
            {
                "path": d.path,
                "code": d.code,
                "line": d.line,           # informational only
                "context": d.context,
                "message": d.message,
            }
            for d in sorted(findings, key=lambda d: d.sort_key)
        ]
        payload = {
            "note": (
                "cedarlint baseline - grandfathered warnings only. "
                "Regenerate with `make lint-baseline`; CI fails on any "
                "finding not listed here, so the file only shrinks."
            ),
            "version": 1,
            "entries": entries,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return len(entries)

    # -- matching ------------------------------------------------------------

    def split(
        self, findings: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """(new, baselined) — multiset semantics, errors never match."""
        budget = Counter(self._counts)
        new: list[Diagnostic] = []
        baselined: list[Diagnostic] = []
        for diagnostic in findings:
            key = _key(diagnostic)
            if (
                CODES[diagnostic.code].severity != ERROR
                and budget.get(key, 0) > 0
            ):
                budget[key] -= 1
                baselined.append(diagnostic)
            else:
                new.append(diagnostic)
        return new, baselined

    def __len__(self) -> int:
        return len(self.entries)
