"""Lightweight intra-scope dataflow: what kind of value does a name hold?

This is flow-insensitive and single-scope on purpose — enough to know
that ``keys = set(row)`` makes ``keys`` a set and ``lock =
threading.Lock()`` makes ``lock`` a lock, without attempting real type
inference. A name assigned two different kinds (or anything
unclassifiable alongside a classified kind) degrades to *unknown* and
the rules stay silent on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .symbols import SymbolTable

SET = "set"
LOCK = "lock"           # threading.Lock / RLock / Condition / Semaphore
ASYNC_LOCK = "async_lock"
RANDOM = "random"       # a random.Random instance

_LOCK_FACTORIES = {
    "threading.Lock": LOCK,
    "threading.RLock": LOCK,
    "threading.Condition": LOCK,
    "threading.Semaphore": LOCK,
    "threading.BoundedSemaphore": LOCK,
    "asyncio.Lock": ASYNC_LOCK,
    "asyncio.Condition": ASYNC_LOCK,
    "asyncio.Semaphore": ASYNC_LOCK,
}

#: Lock factories that hand out *reentrant* primitives: a nested
#: re-acquisition of the same one is legal, not a self-deadlock.
#: (threading.Condition wraps an RLock by default.)
REENTRANT_FACTORIES = frozenset(
    {"threading.RLock", "threading.Condition"}
)


@dataclass(frozen=True)
class Instance:
    """A value known to be ``ClassName(...)`` of a project class."""

    class_name: str     # the *local* spelling at the construction site


def classify(node: ast.expr, symbols: SymbolTable) -> object | None:
    """SET / LOCK / ASYNC_LOCK / RANDOM / Instance(...) / None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return SET
    if not isinstance(node, ast.Call):
        return None
    qualified = symbols.qualify(node.func)
    if qualified in _LOCK_FACTORIES:
        return _LOCK_FACTORIES[qualified]
    if qualified == "random.Random":
        return RANDOM
    if isinstance(node.func, ast.Name):
        name = node.func.id
        if name == "set" and symbols.is_builtin(name):
            return SET
        if name == "frozenset" and symbols.is_builtin(name):
            return SET
        # A capitalised bare call is (by repo convention) a class
        # construction; rules that care resolve the class later.
        if name[:1].isupper():
            return Instance(name)
    if isinstance(node.func, ast.Attribute) and \
            node.func.attr[:1].isupper():
        return Instance(node.func.attr)
    return None


def scope_bindings(
    scope: ast.AST, symbols: SymbolTable
) -> dict[str, object]:
    """Names bound to exactly one classified kind within ``scope``.

    Walks the scope but not nested function/class bodies (their names
    are their own scope's business). ``with x() as name`` and simple
    ``name = expr`` both bind; conflicting bindings erase the name.
    """
    bindings: dict[str, object] = {}
    conflicted: set[str] = set()

    def bind(name: str, kind: object | None) -> None:
        if name in conflicted:
            return
        if kind is None:
            if name in bindings:
                del bindings[name]
                conflicted.add(name)
            return
        if name in bindings and bindings[name] != kind:
            del bindings[name]
            conflicted.add(name)
            return
        bindings[name] = kind

    def visit(node: ast.AST, top: bool) -> None:
        if not top and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, ast.Assign):
            kind = classify(node.value, symbols)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bind(target.id, kind)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                bind(node.target.id, classify(node.value, symbols))
        elif isinstance(node, ast.withitem):
            if isinstance(node.optional_vars, ast.Name):
                bind(node.optional_vars.id,
                     classify(node.context_expr, symbols))
        for child in ast.iter_child_nodes(node):
            visit(child, False)

    visit(scope, True)
    return bindings
