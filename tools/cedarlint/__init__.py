"""cedarlint — a plugin-based determinism & concurrency static analyzer.

Replaces ``tools/check_invariants.py`` with a proper framework: stable
``CDL0xx`` codes with severities, symbol-resolved AST rules, a
project-wide lock-acquisition graph, per-line pragma suppression, and a
checked-in shrink-only baseline.

Run it as ``python -m tools.cedarlint [paths...]``; see
``docs/static-analysis.md`` for the code table and the plugin-writing
guide.
"""

from __future__ import annotations

from .baseline import Baseline
from .diagnostics import CODES, ERROR, WARNING, Diagnostic, code_table
from .engine import (
    LintConfig,
    LintResult,
    ModuleContext,
    Project,
    run_lint,
)
from .plugins import ModuleRule, ProjectRule, all_rules

__all__ = [
    "Baseline",
    "CODES",
    "Diagnostic",
    "ERROR",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "ModuleRule",
    "Project",
    "ProjectRule",
    "WARNING",
    "all_rules",
    "code_table",
    "run_lint",
]
