"""Ablation A4 — DP scheduling (Algorithm 10) vs fixed orders."""

from repro.experiments.ablations import ablate_scheduler, format_outcomes


def test_ablation_scheduler(one_round):
    outcomes = one_round(ablate_scheduler, fast=False)
    print()
    print(format_outcomes("A4 — scheduler ablation", outcomes))
    by_label = {o.label: o for o in outcomes}
    dp = by_label["DP schedule (Algorithm 10)"]
    expensive_first = by_label["expensive-first"]
    cheap_only = by_label["cheapest method only x3"]
    # The DP order is far cheaper than expensive-first at similar quality,
    # and more accurate than the cheap-only degenerate schedule.
    assert dp.cost < expensive_first.cost / 3
    assert dp.f1 >= cheap_only.f1
