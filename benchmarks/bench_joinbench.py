"""Benchmark E6 — regenerate the Section 7.3.2 JoinBench comparison."""

from repro.experiments.joinbench_exp import format_joinbench, run_joinbench


def test_joinbench(one_round):
    result = one_round(run_joinbench)
    print()
    print(format_joinbench(result))
    assert result.table_total == 23
    # The paper's shape: quality holds, cost multiplies (~3x).
    assert result.flat_f1 >= 85.0
    assert 1.5 < result.cost_ratio < 8.0
