"""Ablation A2 — few-shot sample harvesting (Algorithm 1)."""

from repro.experiments.ablations import ablate_samples, format_outcomes


def test_ablation_samples(one_round):
    outcomes = one_round(ablate_samples, fast=False)
    print()
    print(format_outcomes("A2 — few-shot sample ablation", outcomes))
    with_samples, without = outcomes
    # Samples lift translation success: without them more claims fail
    # everywhere and fall back to wrong verdicts.
    assert with_samples.f1 > without.f1
    assert with_samples.cost < without.cost * 1.5
