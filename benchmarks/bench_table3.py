"""Benchmark E5 — regenerate paper Table 3 (query complexity)."""

from repro.experiments.table3 import format_table3, run_table3


def test_table3(one_round):
    result = one_round(run_table3)
    print()
    print(format_table3(result))
    stats = result.stats
    assert stats["JoinBench"].avg_joins > 0.3
    assert stats["AggChecker"].avg_joins == 0
    assert stats["WikiText"].avg_group_by > 0
    assert stats["TabFact"].avg_subqueries < stats["AggChecker"].avg_subqueries
