"""Ablation A3 — query reconstruction (Algorithm 9)."""

from repro.experiments.ablations import (
    ablate_reconstruction,
    format_outcomes,
)


def test_ablation_reconstruction(one_round):
    outcomes = one_round(ablate_reconstruction, fast=False)
    print()
    print(format_outcomes("A3 — reconstruction ablation", outcomes))
    with_reconstruction, without = outcomes
    # Verdicts barely move, but only reconstruction yields queries that
    # represent the claim semantics (self-contained sub-queries).
    def ratio(note):
        numerator, denominator = note.split()[0].split("/")
        return int(numerator), int(denominator)

    with_count, total = ratio(with_reconstruction.note)
    without_count, _ = ratio(without.note)
    if total:
        # Reconstruction folds the agent's inlined constants back into
        # sub-queries for (nearly) all stepwise claims; without it, most
        # final queries stay trivial. (Claims whose agent run never
        # followed the stepwise plan cannot be reconstructed.)
        assert with_count > without_count
        assert with_count >= total - 2
