"""Extended-report experiment — cost of the independence assumptions."""

from repro.experiments.assumptions import (
    format_assumptions,
    run_assumptions,
)


def test_assumptions(one_round):
    result = one_round(run_assumptions)
    print()
    print(format_assumptions(result))
    # Single tries are estimated well; retry ladders are optimistic
    # (correlated failures), yet the model stays usable for scheduling —
    # the extended report's conclusion.
    single = result.points[0]
    assert abs(single.accuracy_gap) < 0.15
    ladder = result.points[1]
    assert ladder.accuracy_gap > 0.0
    assert result.mean_accuracy_gap < 0.35
