"""Persistent-L2 warm-start benchmark — restarts must pay off."""

from repro.experiments.cache_bench import (
    MIN_SPEEDUP,
    format_cache_bench,
    run_cache_bench,
)


def test_warm_l2_speedup(one_round):
    result = one_round(run_cache_bench)
    print()
    print(format_cache_bench(result))
    # The persistence contract: a restarted worker re-verifying the same
    # workload is at least 3× faster (L2 serves the model calls), and the
    # warm run's verdicts are identical to the cold run's.
    assert result.verdicts_match
    assert result.warm_l2.hits > 0
    assert result.speedup >= MIN_SPEEDUP


if __name__ == "__main__":
    from repro.experiments.cache_bench import main

    main()
