"""Ablation A1 — claim-value masking (Figure 2 motivation)."""

from repro.experiments.ablations import ablate_masking, format_outcomes


def test_ablation_masking(one_round):
    outcomes = one_round(ablate_masking, fast=False)
    print()
    print(format_outcomes("A1 — masking ablation", outcomes))
    masked, unmasked = outcomes
    # Without masking the model echoes the claimed value: recall collapses.
    assert unmasked.recall < masked.recall - 30
