"""Benchmark E4 + E8 — regenerate paper Figure 6 (unit conversions)."""

from repro.experiments.figure6 import format_figure6, run_figure6


def test_figure6(one_round):
    result = one_round(run_figure6)
    print()
    print(format_figure6(result))
    assert result.aligned_f1 >= 80.0
    # Conversions cost some F1 but do not collapse it (paper: 94.7->88.9).
    assert result.converted_f1 >= result.aligned_f1 - 30.0
