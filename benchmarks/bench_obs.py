"""Tracing overhead benchmark — instrumentation must be ~free."""

from repro.experiments.obs_bench import (
    MAX_OVERHEAD_PCT,
    format_obs_bench,
    run_obs_bench,
)


def test_obs_overhead(one_round):
    result = one_round(run_obs_bench)
    print()
    print(format_obs_bench(result))
    # The observability contract: leaving tracing on costs at most 5% on
    # the SQL-heavy agent-trace workload, and the traced arm produced
    # exactly one sql_execute span per query.
    assert result.spans_per_round == result.queries
    assert result.overhead_pct <= MAX_OVERHEAD_PCT


if __name__ == "__main__":
    from repro.experiments.obs_bench import main

    main()
