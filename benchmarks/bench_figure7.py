"""Benchmark E7 — regenerate paper Figure 7 (cross-domain profiling)."""

from repro.experiments.figure7 import format_figure7, run_figure7


def test_figure7(one_round):
    result = one_round(run_figure7)
    print()
    print(format_figure7(result))
    # Paper: limited generalisation penalty — ~80% of cases stay under
    # 2x cost overhead and 0.1 F1 loss.
    assert result.within_paper_bounds() >= 0.75
