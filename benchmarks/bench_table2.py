"""Benchmark E1 — regenerate paper Table 2 (quality vs baselines)."""

from repro.experiments.table2 import format_table2, run_table2


def test_table2(one_round):
    result = one_round(run_table2)
    print()
    print(format_table2(result))
    # Headline orderings from the paper must hold.
    for dataset in result.datasets:
        cedar = result.cells[(dataset, "CEDAR")].f1
        rivals = [
            result.cells[(dataset, s)].f1
            for s in result.systems[1:]
            if result.cells[(dataset, s)].supported
        ]
        assert cedar >= max(rivals), dataset
    assert result.cells[("AggChecker", "TAPEX")].recall == 0.0
