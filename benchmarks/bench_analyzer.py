"""Static analyzer benchmark — overhead budget and rejection recall."""

from repro.experiments.analyzer_bench import (
    OVERHEAD_CEILING,
    format_analyzer_bench,
    run_analyzer_bench,
)


def test_analyzer(one_round):
    result = one_round(run_analyzer_bench)
    print()
    print(format_analyzer_bench(result))
    # The gate's contract: every query in the seeded invalid corpus is
    # rejected before execution, and the amortized analysis cost stays
    # under 5% of the mean execution time.
    assert result.corpus_size >= 30
    assert result.all_rejected
    assert result.overhead_ratio < OVERHEAD_CEILING


if __name__ == "__main__":
    from repro.experiments.analyzer_bench import main

    main()
