"""Verification service benchmark — throughput with vs without batching."""

from repro.experiments.service_bench import (
    format_service_bench,
    run_service_bench,
)


def test_service(one_round):
    result = one_round(run_service_bench)
    print()
    print(format_service_bench(result))
    # The service's contract: every submitted job completes, jobs
    # arriving together actually coalesce (mean batch size > 1), and the
    # coalescing buys warm-cache throughput over the one-job-per-batch
    # configuration.
    assert result.all_completed
    assert result.batching_observed
    assert result.warm_speedup > 1.0


if __name__ == "__main__":
    from repro.experiments.service_bench import main

    main()
