"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the report, so ``pytest benchmarks/ --benchmark-only`` doubles as
the full reproduction run. Heavy experiments run one round.
"""

import pytest


@pytest.fixture()
def one_round(benchmark):
    """Run the benchmarked callable exactly once (experiments are heavy)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
