"""SQL engine benchmark — plan cache, hash joins, result cache speedups."""

from repro.experiments.sqlengine_bench import (
    format_sqlengine_bench,
    run_sqlengine_bench,
)


def test_sqlengine(one_round):
    result = one_round(run_sqlengine_bench)
    print()
    print(format_sqlengine_bench(result))
    # The engine's contract: the optimized paths never change results,
    # and the acceptance floor is a 3x win on the repeated-query and
    # equi-join workloads (observed wins are far larger).
    assert result.all_identical
    assert result.speedup("repeated-query") >= 3.0
    assert result.speedup("equi-join") >= 3.0
    assert result.speedup("agent-trace-replay") >= 3.0


if __name__ == "__main__":
    from repro.experiments.sqlengine_bench import main

    main()
