"""Benchmark E2 — regenerate the Section 7.2 cost figures."""

from repro.experiments.costs import format_costs, run_costs


def test_costs(one_round):
    result = one_round(run_costs)
    print()
    print(format_costs(result))
    per_claim = {r.dataset: r.cost_per_claim for r in result.rows}
    # The paper's per-claim cost ordering: AggChecker > WikiText > TabFact.
    assert per_claim["AggChecker"] > per_claim["TabFact"]
    assert per_claim["WikiText"] > per_claim["TabFact"]
