"""Benchmark E3 — regenerate paper Figure 5 (cost/throughput vs F1)."""

from repro.experiments.figure5 import format_figure5, run_figure5


def test_figure5(one_round):
    result = one_round(run_figure5)
    print()
    print(format_figure5(result))
    front = result.pareto_front()
    multi = [p for p in front if p.kind == "multi"]
    # CEDAR's multi-stage points populate the cost-F1 frontier, and the
    # thresholds ladder monotonically in cost.
    assert len(multi) >= 3
    cedar_points = sorted(
        (p for p in result.points if p.kind == "multi"),
        key=lambda p: p.cost_per_claim,
    )
    f1s = [p.f1 for p in cedar_points]
    assert f1s[-1] >= f1s[0]
    # Cost improvement over the best single-stage agent (paper: CEDAR
    # beats the GPT-4 agent on cost at comparable F1).
    best_single = max(
        (p for p in result.points if p.kind == "single"), key=lambda p: p.f1
    )
    top_multi = max(multi, key=lambda p: p.f1)
    assert top_multi.cost_per_claim < best_single.cost_per_claim / 3
