"""Parallel executor benchmark — wall-clock, determinism, cache hits."""

from repro.experiments.parallel_bench import (
    format_parallel_bench,
    run_parallel_bench,
)


def test_parallel(one_round):
    result = one_round(run_parallel_bench)
    print()
    print(format_parallel_bench(result))
    # The executor's contract: same verdicts and ledger totals as the
    # sequential run, a real wall-clock win once latency is simulated,
    # and a warm cache that actually answers repeat lookups.
    assert result.verdicts_match
    assert result.totals_match
    assert result.speedup >= 2.0
    assert result.warm_hit_rate > 0.0


if __name__ == "__main__":
    from repro.experiments.parallel_bench import main

    main()
