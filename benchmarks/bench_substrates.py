"""Micro-benchmarks of the substrates (SQL engine, embeddings, LLM sim).

These are true timing benchmarks (many rounds), useful for catching
performance regressions in the engine that all experiments sit on.
"""

import random

from repro.datasets import generate_database
from repro.datasets.themes import AIRLINE_SAFETY
from repro.embeddings import MiniSimLM
from repro.sqlengine import Engine, parse_select


def test_engine_aggregate_query(benchmark):
    database = generate_database(AIRLINE_SAFETY, random.Random(0))
    engine = Engine(database)
    sql = ('SELECT "region", SUM("incidents") FROM "airlinesafety" '
           'GROUP BY "region" ORDER BY 2 DESC')
    result = benchmark(engine.execute, sql)
    assert result.rows


def test_engine_percent_query(benchmark):
    database = generate_database(AIRLINE_SAFETY, random.Random(1))
    engine = Engine(database)
    sql = ('SELECT (SELECT COUNT("airline") FROM "airlinesafety" '
           "WHERE \"region\" = 'Europe') * 100.0 / "
           '(SELECT COUNT("airline") FROM "airlinesafety")')
    value = benchmark(engine.execute_scalar, sql)
    assert value is not None


def test_parser_throughput(benchmark):
    sql = ('SELECT "a", SUM("b") FROM "t" WHERE "c" = \'x\' AND "d" > 5 '
           'GROUP BY "a" HAVING COUNT(*) > 1 ORDER BY 2 DESC LIMIT 3')
    statement = benchmark(parse_select, sql)
    assert statement.group_by


def test_embedding_similarity(benchmark):
    model = MiniSimLM()
    texts = [f"Entity number {i} of the benchmark" for i in range(50)]

    def encode_all():
        model._cache.clear()
        return [model.encode(t) for t in texts]

    vectors = benchmark(encode_all)
    assert len(vectors) == 50
