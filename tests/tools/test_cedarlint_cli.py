"""End-to-end CLI tests, including the self-application gate.

The headline assertion mirrors the CI step: cedarlint over the real
repo's scan roots must exit 0 against the checked-in baseline — every
error fixed or pragma'd at the site, every grandfathered warning
listed.
"""

import json
import subprocess
import sys
from pathlib import Path

from tools.cedarlint import CODES, ERROR
from tools.cedarlint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "tools.cedarlint", *args],
        cwd=cwd, capture_output=True, text=True,
    )


def test_self_application_is_clean():
    completed = run_cli("src", "tests", "benchmarks", "experiments")
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "0 errors, 0 warnings" in completed.stdout


def test_checked_in_baseline_has_no_errors():
    payload = json.loads(
        (REPO_ROOT / "tools/cedarlint/baseline.json")
        .read_text(encoding="utf-8")
    )
    severities = {CODES[e["code"]].severity for e in payload["entries"]}
    assert ERROR not in severities


def test_list_codes_covers_the_registry(capsys):
    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in CODES:
        assert code in out


def test_unknown_select_code_is_a_usage_error(capsys):
    assert main(["--select", "CDL999"]) == 2
    assert "CDL999" in capsys.readouterr().err


def test_missing_roots_are_skipped(tmp_path):
    # The documented invocation names `experiments`, which this repo
    # keeps under src/; a missing root is skipped, not an error.
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert main([
        "--repo-root", str(tmp_path), "--no-baseline",
        str(tmp_path / "src"), str(tmp_path / "experiments"),
    ]) == 0


def test_json_format_reports_structured_findings(tmp_path):
    bad = tmp_path / "src" / "repro" / "llm"
    bad.mkdir(parents=True)
    (bad / "seedless.py").write_text(
        "import random\n\nrng = random.Random()\n", encoding="utf-8"
    )
    code = main([
        "--repo-root", str(tmp_path), "--no-baseline",
        "--format", "json", str(tmp_path / "src"),
    ])
    assert code == 1


def test_write_baseline_refuses_errors(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "llm"
    bad.mkdir(parents=True)
    (bad / "seedless.py").write_text(
        "import random\n\nrng = random.Random()\n", encoding="utf-8"
    )
    code = main([
        "--repo-root", str(tmp_path),
        "--baseline", str(tmp_path / "baseline.json"),
        "--write-baseline", str(tmp_path / "src"),
    ])
    assert code == 1
    assert "refusing to baseline" in capsys.readouterr().err
    assert not (tmp_path / "baseline.json").exists()


def test_deprecated_check_invariants_shim_forwards():
    completed = subprocess.run(
        [sys.executable, "tools/check_invariants.py"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "deprecated" in completed.stderr
    assert "cedarlint:" in completed.stdout
