"""Baseline policy tests: errors are never grandfathered, matching is
multiset-wise on (path, code, context), and the file only shrinks."""

import json

import pytest

from tools.cedarlint import Baseline, Diagnostic


def warning(path="src/repro/core/x.py", line=3, context="list(s)"):
    return Diagnostic(code="CDL014", path=path, line=line,
                      message="set iteration", context=context)


def error(path="src/repro/core/x.py", line=9):
    return Diagnostic(code="CDL011", path=path, line=line,
                      message="seedless", context="rng = Random()")


def test_write_refuses_error_severity(tmp_path):
    path = tmp_path / "baseline.json"
    with pytest.raises(ValueError, match="error-severity"):
        Baseline.write(path, [warning(), error()])
    assert not path.exists()


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    count = Baseline.write(path, [warning(), warning(line=7)])
    assert count == 2
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["entries"]) == 2
    assert len(Baseline.load(path)) == 2


def test_load_missing_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    assert len(baseline) == 0
    new, baselined = baseline.split([warning()])
    assert [d.code for d in new] == ["CDL014"]
    assert baselined == []


def test_split_is_multiset_wise(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(path, [warning()])
    baseline = Baseline.load(path)
    # Two identical hazards, one baseline entry: one stays new.
    new, baselined = baseline.split([warning(), warning(line=20)])
    assert len(baselined) == 1
    assert len(new) == 1


def test_errors_never_match_baseline_entries(tmp_path):
    # A hand-edited baseline listing an error must not silence it.
    path = tmp_path / "baseline.json"
    bad = error()
    path.write_text(json.dumps({"version": 1, "entries": [{
        "path": bad.path, "code": bad.code,
        "line": bad.line, "context": bad.context,
    }]}), encoding="utf-8")
    new, baselined = Baseline.load(path).split([bad])
    assert [d.code for d in new] == ["CDL011"]
    assert baselined == []


def test_context_mismatch_counts_as_new(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(path, [warning(context="list(old)")])
    new, baselined = Baseline.load(path).split(
        [warning(context="list(rewritten)")]
    )
    assert len(new) == 1
    assert baselined == []
