"""Rule-level cedarlint tests over a seeded known-bad fixture corpus.

Each fixture is a tiny file planted at a zone-meaningful path inside a
temporary repo root; assertions pin the exact ``CDL0xx`` codes (and
their absence), mirroring the invalid-corpus style of
``tests/sqlengine/test_analyzer.py``: stable codes are the API, so the
tests key on them.
"""

from pathlib import Path

from tools.cedarlint import Baseline, LintConfig, run_lint


def lint_fixture(tmp_path, files, *, select=None, showcase=False,
                 baseline=None):
    """Write ``{relative_path: source}`` under ``tmp_path`` and lint it."""
    roots = set()
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        roots.add(Path(relative).parts[0])
    return run_lint(LintConfig(
        repo_root=tmp_path,
        roots=sorted(tmp_path / root for root in roots if root != "docs"),
        select=frozenset(select) if select else None,
        include_showcase=showcase,
        baseline=baseline,
    ))


def codes(result):
    return [d.code for d in result.findings]


# -- determinism (CDL01x) -----------------------------------------------------


def test_wall_clock_flagged_in_deterministic_zones(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/core/clocky.py":
            "import time as t\n\n\ndef f():\n    return t.monotonic()\n",
    })
    assert codes(result) == ["CDL010"]
    assert result.findings[0].severity == "warning"
    assert result.findings[0].line == 5


def test_wall_clock_fine_outside_deterministic_zones(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/timy.py":
            "import time\n\n\ndef f():\n    return time.monotonic()\n",
    })
    assert codes(result) == []


def test_seedless_random_error_even_through_aliases(tmp_path):
    result = lint_fixture(tmp_path, {
        "benchmarks/bench_bad.py":
            "from random import Random as R\n\nrng = R()\n",
        "tests/test_ok.py":
            "import random\n\nrng = random.Random(7)\n",
    })
    assert codes(result) == ["CDL011"]
    assert result.findings[0].path == "benchmarks/bench_bad.py"
    assert result.findings[0].severity == "error"


def test_global_random_flagged_in_library_only(tmp_path):
    source = "import random\n\n\ndef f(xs):\n    random.shuffle(xs)\n"
    result = lint_fixture(tmp_path, {
        "src/repro/llm/shuffle.py": source,
        "tests/test_shuffle.py": source,
    })
    assert [(d.code, d.path) for d in result.findings] == [
        ("CDL012", "src/repro/llm/shuffle.py"),
    ]


def test_id_keys_flagged_in_subscripts_sets_and_keyed_methods(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/llm/idkeys.py": (
            "def f(cache, seen, obj):\n"
            "    cache[id(obj)] = 1\n"
            "    seen.add(id(obj))\n"
            "    return cache.get(id(obj)), {id(obj): 2}\n"
        ),
    })
    assert codes(result) == ["CDL013"] * 4


def test_id_outside_key_position_not_flagged(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/llm/idfine.py": (
            "def f(a, b, seen):\n"
            "    return id(a) == id(b) or id(a) in seen\n"
        ),
    })
    assert codes(result) == []


def test_set_iteration_feeding_ordered_output(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/llm/sets.py": (
            "def f(names):\n"
            "    pending = set(names)\n"
            "    as_list = list(pending)\n"
            "    joined = ','.join({n.lower() for n in names})\n"
            "    comp = [n for n in pending]\n"
            "    ok = sorted(pending)\n"
            "    return as_list, joined, comp, ok\n"
        ),
    })
    assert codes(result) == ["CDL014"] * 3
    assert [d.line for d in result.findings] == [3, 4, 5]


def test_obs_clock_ban_catches_from_imports_and_random(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/obs/sneaky.py": (
            "import time\n"
            "from time import perf_counter\n"
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time() + perf_counter()\n"
            "\n"
            "\n"
            "def ok(clock=time.perf_counter):\n"
            "    return clock\n"
        ),
    })
    # one for the random import, two for the calls; the bare
    # by-reference default argument is fine.
    assert codes(result) == ["CDL015"] * 3
    assert {d.line for d in result.findings} == {3, 7}


def test_obs_clock_is_unsuppressible(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/obs/pragma.py": (
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    return time.time()  # cedarlint: disable=CDL015\n"
        ),
    })
    assert codes(result) == ["CDL015"]
    assert result.suppressed == 0


# -- concurrency (CDL02x) -----------------------------------------------------


def test_lexical_lock_order_inversion(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/locks.py": (
            "import threading\n"
            "\n"
            "LOCK_A = threading.Lock()\n"
            "LOCK_B = threading.Lock()\n"
            "\n"
            "\n"
            "def forward():\n"
            "    with LOCK_A:\n"
            "        with LOCK_B:\n"
            "            pass\n"
            "\n"
            "\n"
            "def backward():\n"
            "    with LOCK_B:\n"
            "        with LOCK_A:\n"
            "            pass\n"
        ),
    }, select={"CDL020"})
    assert codes(result) == ["CDL020"]
    assert "cycle" in result.findings[0].message


def test_lock_order_inversion_through_calls(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/proplocks.py": (
            "import threading\n"
            "\n"
            "LOCK_A = threading.Lock()\n"
            "\n"
            "\n"
            "class Guard:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def touch(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "\n"
            "    def inverse(self):\n"
            "        with self._lock:\n"
            "            with LOCK_A:\n"
            "                pass\n"
            "\n"
            "\n"
            "def use():\n"
            "    guard = Guard()\n"
            "    with LOCK_A:\n"
            "        guard.touch()\n"
        ),
    }, select={"CDL020"})
    assert codes(result) == ["CDL020"]


def test_consistent_lock_order_is_clean(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/goodlocks.py": (
            "import threading\n"
            "\n"
            "LOCK_A = threading.Lock()\n"
            "LOCK_B = threading.Lock()\n"
            "\n"
            "\n"
            "def one():\n"
            "    with LOCK_A:\n"
            "        with LOCK_B:\n"
            "            pass\n"
            "\n"
            "\n"
            "def two():\n"
            "    with LOCK_A:\n"
            "        with LOCK_B:\n"
            "            pass\n"
        ),
    }, select={"CDL020"})
    assert codes(result) == []


def test_plain_lock_reacquisition_deadlock(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/selflock.py": (
            "import threading\n"
            "\n"
            "LOCK = threading.Lock()\n"
            "RELOCK = threading.RLock()\n"
            "\n"
            "\n"
            "def bad():\n"
            "    with LOCK:\n"
            "        with LOCK:\n"
            "            pass\n"
            "\n"
            "\n"
            "def fine():\n"
            "    with RELOCK:\n"
            "        with RELOCK:\n"
            "            pass\n"
        ),
    }, select={"CDL020"})
    assert codes(result) == ["CDL020"]
    assert "re-acquired" in result.findings[0].message
    assert result.findings[0].line == 9


def test_unguarded_mutation_of_guarded_attribute(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/box.py": (
            "import threading\n"
            "\n"
            "\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "\n"
            "    def add(self, item):\n"
            "        with self._lock:\n"
            "            self._items = self._items + [item]\n"
            "\n"
            "    def clear(self):\n"
            "        self._items = []\n"
        ),
    })
    assert codes(result) == ["CDL021"]
    assert result.findings[0].line == 14
    assert "_items" in result.findings[0].message


def test_init_writes_are_not_unguarded_mutation(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/initonly.py": (
            "import threading\n"
            "\n"
            "\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "\n"
            "    def add(self, item):\n"
            "        with self._lock:\n"
            "            self._items = self._items + [item]\n"
        ),
    })
    assert codes(result) == []


def test_blocking_call_in_async_body(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/cluster/spin.py": (
            "import time\n"
            "\n"
            "\n"
            "async def tick():\n"
            "    time.sleep(1)\n"
        ),
    })
    assert codes(result) == ["CDL022"]
    assert result.findings[0].severity == "error"


def test_run_in_executor_pattern_is_clean(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/cluster/offload.py": (
            "import time\n"
            "\n"
            "\n"
            "async def tick(loop):\n"
            "    def work():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, work)\n"
        ),
    })
    assert codes(result) == []


# -- layering (CDL03x) --------------------------------------------------------


def test_engine_construction_outside_sqlengine(tmp_path):
    source = (
        "from repro.sqlengine import Engine\n"
        "\n"
        "\n"
        "def f(db):\n"
        "    return Engine(db)\n"
    )
    result = lint_fixture(tmp_path, {
        "src/repro/core/use_engine.py": source,
        "tests/test_use_engine.py": source,  # tests are exempt
    })
    assert [(d.code, d.path) for d in result.findings] == [
        ("CDL030", "src/repro/core/use_engine.py"),
    ]


def test_sqlite_ownership(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/service/sneaky_db.py": "import sqlite3\n",
        "src/repro/cache/owner.py": "import sqlite3\n",
    })
    assert [(d.code, d.path) for d in result.findings] == [
        ("CDL031", "src/repro/service/sneaky_db.py"),
    ]


def test_column_array_containment(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/core/peek.py": (
            "def f(table):\n"
            "    return table.column_array(0), table._arrays\n"
        ),
        "tests/sqlengine/test_peek.py": (
            "def f(table):\n"
            "    return table._arrays\n"
        ),
    })
    assert [(d.code, d.path) for d in result.findings] == [
        ("CDL032", "src/repro/core/peek.py"),
        ("CDL032", "src/repro/core/peek.py"),
    ]


def test_public_surface_over_examples_and_docs(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/__init__.py": "__all__ = ['VerificationService']\n",
        "examples/demo.py": (
            "from repro import VerificationService\n"
            "from repro import _secret\n"
        ),
        "docs/guide.md": (
            "Intro prose.\n"
            "\n"
            "```python\n"
            "from repro.core.pipeline import hidden\n"
            "```\n"
        ),
    }, showcase=True)
    surface = [(d.code, d.path, d.line) for d in result.findings]
    assert ("CDL033", "examples/demo.py", 2) in surface
    assert ("CDL033", "docs/guide.md", 4) in surface
    assert len([c for c, _, _ in surface if c == "CDL033"]) == 2


# -- suppression mechanics ----------------------------------------------------


def test_native_pragma_suppresses_named_code(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/llm/pragma.py": (
            "def f(cache, obj):\n"
            "    cache[id(obj)] = 1  # cedarlint: disable=CDL013\n"
        ),
    })
    assert codes(result) == []
    assert result.suppressed == 1


def test_native_pragma_for_other_code_does_not_suppress(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/llm/pragma_miss.py": (
            "def f(cache, obj):\n"
            "    cache[id(obj)] = 1  # cedarlint: disable=CDL014\n"
        ),
    })
    assert codes(result) == ["CDL013"]


def test_legacy_pragmas_map_to_their_codes(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/core/legacy.py": (
            "import random\n"
            "from repro.sqlengine import Engine\n"
            "\n"
            "\n"
            "def f(db):\n"
            "    rng = random.Random()  # lint: allow-unseeded\n"
            "    return rng, Engine(db)  # lint: allow-engine\n"
        ),
    })
    assert codes(result) == []
    assert result.suppressed == 2


def test_select_runs_only_named_codes(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/core/multi.py": (
            "import sqlite3\n"
            "import random\n"
            "\n"
            "rng = random.Random()\n"
        ),
    }, select={"CDL031"})
    assert codes(result) == ["CDL031"]


def test_syntax_error_reported_as_cdl001(tmp_path):
    result = lint_fixture(tmp_path, {
        "src/repro/core/broken.py": "def f(:\n",
    })
    assert codes(result) == ["CDL001"]
    assert result.findings[0].severity == "error"


# -- baseline integration -----------------------------------------------------


def test_baselined_warnings_do_not_fail_the_run(tmp_path):
    files = {
        "src/repro/core/timed.py":
            "import time\n\n\ndef f():\n    return time.monotonic()\n",
    }
    first = lint_fixture(tmp_path, files)
    assert codes(first) == ["CDL010"]

    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, first.findings)
    again = lint_fixture(
        tmp_path, files, baseline=Baseline.load(baseline_path)
    )
    assert again.new == []
    assert [d.code for d in again.baselined] == ["CDL010"]
    assert again.exit_code == 0


def test_baseline_match_survives_line_churn(tmp_path):
    files = {
        "src/repro/core/churn.py":
            "import time\n\n\ndef f():\n    return time.monotonic()\n",
    }
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, lint_fixture(tmp_path, files).findings)

    # Same hazard line, shifted down by an unrelated edit.
    files["src/repro/core/churn.py"] = (
        "import time\n\n\ndef unrelated():\n    return 0\n\n\n"
        "def f():\n    return time.monotonic()\n"
    )
    result = lint_fixture(
        tmp_path, files, baseline=Baseline.load(baseline_path)
    )
    assert result.new == []
    assert len(result.baselined) == 1
