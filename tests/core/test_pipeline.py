"""Tests for multi-stage verification (Algorithms 1-2) using scripted LLMs."""

import pytest

from repro.core import (
    MultiStageVerifier,
    OneShotMethod,
    Sample,
    ScheduleEntry,
)
from repro.core.claims import Claim, Document, Span
from repro.llm import CostLedger, ScriptedLLM
from repro.sqlengine import Database, Table


def make_document(doc_id="doc"):
    database = Database(doc_id)
    database.add(Table(
        "drinks",
        ["country", "wine"],
        [("France", 370), ("USA", 84), ("Italy", 340)],
    ))
    claims = [
        Claim(
            "France consumes 370 glasses of wine per person.",
            Span(2, 2),
            "Wine statistics. France consumes 370 glasses of wine per "
            "person. More text.",
            metadata={"label_correct": True},
        ),
        Claim(
            "Americans consume 90 glasses of wine per person.",
            Span(2, 2),
            "Wine statistics. Americans consume 90 glasses of wine per "
            "person. More text.",
            metadata={"label_correct": False},
        ),
    ]
    return Document(doc_id, claims, database)


def wrap(sql):
    return f"Reasoning text.\n```sql\n{sql}\n```"


GOOD_FRANCE = "SELECT wine FROM drinks WHERE country = 'France'"
GOOD_USA = "SELECT wine FROM drinks WHERE country = 'USA'"
BAD = "SELECT wine FROM drinks WHERE country = 'Nowhere'"


class TestVerifyBatchSemantics:
    def test_both_claims_verified(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM(
            [wrap(GOOD_FRANCE), wrap(GOOD_USA)], ledger=ledger
        )
        method = OneShotMethod(client)
        verifier = MultiStageVerifier(ledger)
        run = verifier.verify_documents([document],
                                        [ScheduleEntry(method, 1)])
        first, second = document.claims
        assert first.correct is True          # 370 == 370
        assert second.correct is False        # claimed 90, actual 84
        assert run.reports[first.claim_id].verified_by == method.name

    def test_first_success_becomes_sample(self):
        document = make_document()
        client = ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)])
        method = OneShotMethod(client)
        MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        # Algorithm 1: after the first success, Verify is re-invoked with a
        # sample; the second prompt must contain the few-shot block.
        assert "For example, given the claim" in client.calls[1][0]
        assert "For example" not in client.calls[0][0]

    def test_first_attempt_runs_at_temperature_zero(self):
        document = make_document()
        client = ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)])
        method = OneShotMethod(client)
        MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        assert client.calls[0][1] == 0.0

    def test_retry_uses_retry_temperature(self):
        document = make_document()
        client = ScriptedLLM(
            [wrap(BAD), wrap(BAD), wrap(GOOD_FRANCE), wrap(GOOD_USA)]
        )
        method = OneShotMethod(client)
        MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 2)]
        )
        temperatures = [t for _, t in client.calls]
        assert temperatures[0] == 0.0
        assert method.retry_temperature in temperatures

    def test_masking_applied_to_prompts(self):
        document = make_document()
        client = ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)])
        method = OneShotMethod(client)
        MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        first_prompt = client.calls[0][0]
        assert "370" not in first_prompt.split("CREATE TABLE")[0]
        assert '"x"' in first_prompt


class TestEscalation:
    def test_second_method_used_after_first_fails(self):
        document = make_document()
        ledger = CostLedger()
        failing = OneShotMethod(
            ScriptedLLM([wrap(BAD)], ledger=ledger), name="failing"
        )
        succeeding = OneShotMethod(
            ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)], ledger=ledger),
            name="succeeding",
        )
        verifier = MultiStageVerifier(ledger)
        run = verifier.verify_documents(
            [document],
            [ScheduleEntry(failing, 1), ScheduleEntry(succeeding, 1)],
        )
        for claim in document.claims:
            assert run.reports[claim.claim_id].verified_by == "succeeding"

    def test_zero_tries_stage_skipped(self):
        document = make_document()
        ledger = CostLedger()
        skipped = OneShotMethod(
            ScriptedLLM([wrap(BAD)], ledger=ledger), name="skipped"
        )
        used = OneShotMethod(
            ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)], ledger=ledger),
            name="used",
        )
        MultiStageVerifier(ledger).verify_documents(
            [document],
            [ScheduleEntry(skipped, 0), ScheduleEntry(used, 1)],
        )
        assert not skipped.client.calls

    def test_verified_claims_not_retried(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM(
            [wrap(GOOD_FRANCE), wrap(GOOD_USA), wrap(BAD)], ledger=ledger
        )
        method = OneShotMethod(client)
        MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(method, 3)]
        )
        # Two claims, both verified on the first pass (plus the sample
        # retry): no further calls.
        assert len(client.calls) == 2


class TestFallbackVerdicts:
    def test_executable_but_never_plausible_means_incorrect(self):
        document = make_document()
        # BAD parses and runs but returns no rows: executable, implausible.
        client = ScriptedLLM([wrap(BAD)])
        method = OneShotMethod(client)
        run = MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        for claim in document.claims:
            assert claim.correct is False
            assert run.reports[claim.claim_id].fallback

    def test_no_executable_query_means_correct_by_default(self):
        document = make_document()
        client = ScriptedLLM(["I refuse to produce SQL."])
        method = OneShotMethod(client)
        run = MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        for claim in document.claims:
            assert claim.correct is True
            assert claim.query is None
            assert run.reports[claim.claim_id].fallback

    def test_malformed_sql_counts_as_non_executable(self):
        document = make_document()
        client = ScriptedLLM([wrap("SELECT FROM WHERE")])
        method = OneShotMethod(client)
        MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        assert all(c.correct is True for c in document.claims)


class TestLedgerAttribution:
    def test_calls_tagged_with_method_and_claim(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)],
                             ledger=ledger)
        method = OneShotMethod(client)
        MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        assert ledger.totals(f"method:{method.name}").calls == 2
        assert ledger.totals("doc:doc").calls == 2
        per_claim = ledger.totals_by_tag_prefix("claim:")
        assert len(per_claim) == 2


class TestSingleExecution:
    def test_validated_claims_execute_sql_once(self, monkeypatch):
        # assess_query already ran the translation; validation must reuse
        # its result instead of executing the SQL a second time.
        from repro.sqlengine import Engine

        executed = []
        original = Engine.execute

        def counting(self, sql):
            executed.append(sql)
            return original(self, sql)

        monkeypatch.setattr(Engine, "execute", counting)
        document = make_document()
        client = ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)])
        method = OneShotMethod(client)
        MultiStageVerifier(client.ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        assert document.claims[0].correct is True
        assert document.claims[1].correct is False
        assert executed == [GOOD_FRANCE, GOOD_USA]

    def test_sql_latency_recorded_in_ledger(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM([wrap(GOOD_FRANCE), wrap(GOOD_USA)],
                             ledger=ledger)
        method = OneShotMethod(client)
        MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        assert ledger.sql_executions == 2
        assert ledger.sql_seconds >= 0.0


class TestSampleRendering:
    def test_sample_requires_query(self):
        claim = Claim("Some 3 things.", Span(1, 1), "ctx", "c")
        claim.query = "SELECT 3"
        from repro.core.pipeline import _make_sample

        sample = _make_sample(claim)
        assert isinstance(sample, Sample)
        assert sample.query_sql == "SELECT 3"
        assert "x" in sample.masked_sentence
