"""Tests for method profiling (accuracy/cost estimation)."""

import pytest

from repro.core import OneShotMethod, profile_method, profile_methods
from repro.core.claims import Claim, Document, Span
from repro.llm import CostLedger, ScriptedLLM
from repro.sqlengine import Database, Table


def make_document():
    database = Database("p")
    database.add(Table("t", ["name", "v"], [("a", 10), ("b", 20)]))
    claims = [
        Claim("Row a holds 10 units.", Span(3, 3), "ctx",
              metadata={"label_correct": True}),
        Claim("Row b holds 25 units.", Span(3, 3), "ctx",
              metadata={"label_correct": False}),
    ]
    return Document("pdoc", claims, database)


def wrap(sql):
    return f"```sql\n{sql}\n```"


GOOD_A = "SELECT v FROM t WHERE name = 'a'"
GOOD_B = "SELECT v FROM t WHERE name = 'b'"
BAD = "SELECT v FROM t WHERE name = 'zzz'"


class TestProfileMethod:
    def test_full_accuracy(self):
        ledger = CostLedger()
        client = ScriptedLLM([wrap(GOOD_A), wrap(GOOD_B)], ledger=ledger)
        profile = profile_method(OneShotMethod(client), [make_document()],
                                 ledger)
        # Both translations plausible and verdicts match labels -> A = 1.
        assert profile.accuracy == 1.0
        assert profile.cost > 0
        assert profile.latency_seconds > 0

    def test_partial_accuracy(self):
        ledger = CostLedger()
        client = ScriptedLLM([wrap(GOOD_A), wrap(BAD)], ledger=ledger)
        profile = profile_method(OneShotMethod(client), [make_document()],
                                 ledger)
        assert profile.accuracy == 0.5

    def test_cost_is_per_claim_average(self):
        ledger = CostLedger()
        client = ScriptedLLM([wrap(GOOD_A), wrap(GOOD_B)], ledger=ledger)
        profile = profile_method(OneShotMethod(client), [make_document()],
                                 ledger)
        assert profile.cost == pytest.approx(ledger.total_cost / 2)

    def test_missing_label_rejected(self):
        document = make_document()
        del document.claims[0].metadata["label_correct"]
        ledger = CostLedger()
        client = ScriptedLLM([wrap(GOOD_A)], ledger=ledger)
        with pytest.raises(ValueError):
            profile_method(OneShotMethod(client), [document], ledger)

    def test_empty_documents_rejected(self):
        ledger = CostLedger()
        client = ScriptedLLM(["x"], ledger=ledger)
        with pytest.raises(ValueError):
            profile_method(OneShotMethod(client), [], ledger)

    def test_profile_methods_keyed_by_name(self):
        ledger = CostLedger()
        first = OneShotMethod(
            ScriptedLLM([wrap(GOOD_A), wrap(GOOD_B)], ledger=ledger),
            name="m1",
        )
        second = OneShotMethod(
            ScriptedLLM([wrap(BAD), wrap(BAD)], ledger=ledger), name="m2"
        )
        profiles = profile_methods([first, second], [make_document()],
                                   ledger)
        assert profiles["m1"].accuracy == 1.0
        assert profiles["m2"].accuracy == 0.0

    def test_wrong_verdict_counts_as_failure(self):
        # A plausible query whose verdict CONTRADICTS the label is a
        # profiling failure even though CorrectQuery passed.
        document = make_document()
        ledger = CostLedger()
        # For the incorrect claim (claims 25, truth 20): return a query
        # that yields exactly 25 -> verdict "correct" -> mismatch w/ label.
        client = ScriptedLLM([wrap(GOOD_A), wrap("SELECT 25")],
                             ledger=ledger)
        profile = profile_method(OneShotMethod(client), [document], ledger)
        assert profile.accuracy == 0.5
