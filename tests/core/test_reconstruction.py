"""Tests for agent-trace query reconstruction (Algorithm 9)."""

import pytest

from repro.core.reconstruction import reconstruct
from repro.sqlengine import Database, Engine, Table


@pytest.fixture()
def db():
    database = Database("recon")
    database.add(Table(
        "drivers",
        ["Driver", "Wins", "Podiums"],
        [("Lewis", 105, 200), ("Michael", 91, 155), ("Max", 60, 100)],
    ))
    return database


class TestReconstruct:
    def test_single_query_returned_verbatim(self, db):
        sql = 'SELECT "Wins" FROM drivers WHERE "Driver" = \'Lewis\''
        assert reconstruct([sql], db) == sql

    def test_empty_list_rejected(self, db):
        with pytest.raises(ValueError):
            reconstruct([], db)

    def test_numeric_constant_substituted(self, db):
        # Figure 4 / Section 5.4 pattern: inner MAX query, then a trivial
        # outer query with the constant inlined by the agent.
        inner = 'SELECT MAX("Wins") FROM drivers'
        outer = 'SELECT "Driver" FROM drivers WHERE "Wins" = 105'
        merged = reconstruct([inner, outer], db)
        assert "105" not in merged
        assert "MAX" in merged
        # The reconstruction is executable and equivalent to the nested form.
        assert Engine(db).execute(merged).first_cell() == "Lewis"

    def test_string_constant_substituted(self, db):
        inner = 'SELECT "Driver" FROM drivers WHERE "Wins" = 105'
        outer = "SELECT \"Podiums\" FROM drivers WHERE \"Driver\" = 'Lewis'"
        merged = reconstruct([inner, outer], db)
        assert "'Lewis'" not in merged
        assert Engine(db).execute(merged).first_cell() == 200

    def test_three_level_chain(self, db):
        first = 'SELECT MAX("Wins") FROM drivers'
        second = 'SELECT "Driver" FROM drivers WHERE "Wins" = 105'
        third = "SELECT \"Podiums\" FROM drivers WHERE \"Driver\" = 'Lewis'"
        merged = reconstruct([first, second, third], db)
        assert "'Lewis'" not in merged
        assert "105" not in merged
        assert Engine(db).execute(merged).first_cell() == 200

    def test_unrelated_constant_untouched(self, db):
        inner = 'SELECT MAX("Wins") FROM drivers'  # 105
        outer = 'SELECT "Driver" FROM drivers WHERE "Wins" = 60'
        merged = reconstruct([inner, outer], db)
        # 60 does not round to 105: no substitution happens.
        assert merged == outer

    def test_closest_numeric_term_chosen(self, db):
        inner = 'SELECT MAX("Wins") FROM drivers'  # 105
        outer = 'SELECT COUNT(*) FROM drivers WHERE "Wins" = 105 AND "Podiums" > 100'
        merged = reconstruct([inner, outer], db)
        # 105 replaced, the farther literal 100 kept.
        assert "> 100" in merged
        assert "= (" in merged

    def test_failing_intermediate_query_skipped(self, db):
        broken = "SELECT nothing FROM nowhere"
        final = 'SELECT MAX("Wins") FROM drivers'
        assert reconstruct([broken, final], db) == final

    def test_rounding_rule(self, db):
        # Result 105 rounds to term "105.0" as written.
        inner = 'SELECT MAX("Wins") FROM drivers'
        outer = 'SELECT "Driver" FROM drivers WHERE "Wins" = 105.0'
        merged = reconstruct([inner, outer], db)
        assert "105.0" not in merged

    def test_terminates_on_duplicate_queries(self, db):
        sql = 'SELECT MAX("Wins") FROM drivers'
        merged = reconstruct([sql, sql, sql], db)
        assert Engine(db).execute(merged).first_cell() == 105

    def test_substitution_only_forward(self, db):
        # The later query's constant came from the earlier query, never
        # the other way round: with the order reversed, nothing merges.
        outer = 'SELECT "Driver" FROM drivers WHERE "Wins" = 105'
        inner = 'SELECT MAX("Wins") FROM drivers'
        merged = reconstruct([outer, inner], db)
        assert merged == inner
