"""Tests for the one-shot method, prompt construction, and method plumbing."""

import pytest

from repro.core import (
    ONE_SHOT_TEMPLATE,
    OneShotMethod,
    Sample,
    mask_claim,
    one_shot_prompt,
)
from repro.core.claims import Claim, Span
from repro.core.methods import render_sample
from repro.llm import ScriptedLLM
from repro.sqlengine import Database, Table


@pytest.fixture()
def db():
    database = Database("m")
    database.add(Table("t", ["a", "b"], [("x", 1), ("y", 2)]))
    return database


def make_claim():
    sentence = "Entry x scores 1 point in the table."
    return Claim(sentence, Span(2, 2), f"Context here. {sentence} End.",
                 "m/c0")


class TestPromptConstruction:
    def test_template_placeholders(self):
        # Figure 3's five placeholders all survive in the template.
        for placeholder in ("{claim}", "{type}", "{db_schema}", "{sample}",
                            "{context}"):
            assert placeholder in ONE_SHOT_TEMPLATE

    def test_prompt_contains_all_parts(self):
        prompt = one_shot_prompt("claim text x", "numeric", "SCHEMA HERE",
                                 None, "the paragraph")
        assert 'Given the claim "claim text x"' in prompt
        assert '"numeric" value' in prompt
        assert "SCHEMA HERE" in prompt
        assert "the paragraph" in prompt
        assert "```sql" in prompt  # markup instruction

    def test_percentage_guidance_present(self):
        prompt = one_shot_prompt("c", "", "s", None, "ctx")
        assert "percentages" in prompt
        assert "* 100.0/" in prompt

    def test_sample_rendering(self):
        sample = Sample("Some claim with x.", "SELECT 1")
        text = render_sample(sample)
        assert 'For example, given the claim "Some claim with x."' in text
        assert '"SELECT 1"' in text

    def test_no_sample_renders_empty(self):
        assert render_sample(None) == ""


class TestOneShotMethod:
    def test_extracts_query(self, db):
        client = ScriptedLLM(["text\n```sql\nSELECT b FROM t\n```"])
        method = OneShotMethod(client)
        claim = make_claim()
        result = method.translate(
            mask_claim(claim), "numeric", claim.value, claim.value_text,
            db, None, 0.0,
        )
        assert result.query == "SELECT b FROM t"
        assert result.issued_queries == ["SELECT b FROM t"]

    def test_no_sql_in_response(self, db):
        client = ScriptedLLM(["I cannot answer."])
        method = OneShotMethod(client)
        claim = make_claim()
        result = method.translate(
            mask_claim(claim), "numeric", claim.value, claim.value_text,
            db, None, 0.0,
        )
        assert result.query is None
        assert result.issued_queries == []

    def test_prompt_carries_schema_with_sample_rows(self, db):
        client = ScriptedLLM(["```sql\nSELECT 1\n```"])
        method = OneShotMethod(client)
        claim = make_claim()
        method.translate(mask_claim(claim), "numeric", claim.value,
                         claim.value_text, db, None, 0.0)
        prompt = client.calls[0][0]
        assert "CREATE TABLE" in prompt
        assert "x | 1" in prompt  # Table 1-style row preview

    def test_sample_included_in_prompt(self, db):
        client = ScriptedLLM(["```sql\nSELECT 1\n```"])
        method = OneShotMethod(client)
        claim = make_claim()
        sample = Sample("Other claim x here.", "SELECT a FROM t")
        method.translate(mask_claim(claim), "numeric", claim.value,
                         claim.value_text, db, sample, 0.0)
        assert "Other claim x here." in client.calls[0][0]

    def test_default_name_includes_model(self, db):
        method = OneShotMethod(ScriptedLLM(["x"], model_name="gpt-4o"))
        assert method.name == "one_shot[gpt-4o]"

    def test_custom_name(self, db):
        method = OneShotMethod(ScriptedLLM(["x"]), name="my-method")
        assert method.name == "my-method"
        assert "my-method" in repr(method)

    def test_kind(self):
        assert OneShotMethod(ScriptedLLM(["x"])).kind == "one_shot"

    def test_retry_temperature_constant(self):
        # Section 7.1: one-shot retries run at 0.25.
        assert OneShotMethod.retry_temperature == 0.25


class TestAgentMethodPlumbing:
    def test_kind_and_temperature(self):
        from repro.core import AgentMethod

        method = AgentMethod(ScriptedLLM(["Final Answer: x"]))
        assert method.kind == "agent"
        assert method.retry_temperature == 0.5

    def test_no_queries_yields_no_query(self, db):
        from repro.core import AgentMethod

        client = ScriptedLLM(
            ["Thought: nothing to do.\nFinal Answer: unknown"]
        )
        method = AgentMethod(client)
        claim = make_claim()
        result = method.translate(
            mask_claim(claim), "numeric", claim.value, claim.value_text,
            db, None, 0.0,
        )
        assert result.query is None
        assert "Final Answer" in result.trace_text

    def test_reconstruction_toggle(self, db):
        from repro.core import AgentMethod

        responses = [
            ("Thought: try.\nAction: database_querying\n"
             "Action Input: SELECT MAX(b) FROM t"),
            ("Thought: next.\nAction: database_querying\n"
             "Action Input: SELECT a FROM t WHERE b = 2"),
            "Thought: done.\nFinal Answer: y",
        ]
        claim = make_claim()
        merged = AgentMethod(ScriptedLLM(list(responses))).translate(
            mask_claim(claim), "numeric", claim.value, claim.value_text,
            db, None, 0.0,
        )
        raw = AgentMethod(
            ScriptedLLM(list(responses)), reconstruct_queries=False
        ).translate(
            mask_claim(claim), "numeric", claim.value, claim.value_text,
            db, None, 0.0,
        )
        assert "(SELECT MAX" in merged.query
        assert raw.query == "SELECT a FROM t WHERE b = 2"
