"""Tests for claim-value masking (Algorithm 4)."""

import pytest

from repro.core.claims import Claim, Span
from repro.core.masking import MASK_TOKEN, mask_claim, mask_sentence


class TestMaskSentence:
    def test_paper_example(self):
        sentence = ("The 2 fatal accidents involving Malaysia Airlines this "
                    "year were the first for the carrier since 1995.")
        masked = mask_sentence(sentence, 1, 1)
        assert masked.split()[1] == MASK_TOKEN
        assert "2 fatal" not in masked
        assert "1995." in masked  # only the claim value is obfuscated

    def test_multiword_span(self):
        masked = mask_sentence("X is Malaysia Airlines today.", 2, 3)
        assert masked == "X is x today."

    def test_punctuation_preserved(self):
        masked = mask_sentence("The total reached 370, a record.", 3, 3)
        assert "x," in masked

    def test_parenthesis_preserved(self):
        masked = mask_sentence("The result (42) was shown.", 2, 2)
        assert "(x)" in masked

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            mask_sentence("short one.", 5, 5)


class TestMaskClaim:
    def make_claim(self):
        sentence = "KLM recorded 42 incidents this year."
        context = (
            "Safety statistics were released. " + sentence +
            " Analysts took note."
        )
        return Claim(sentence, Span(2, 2), context, "c1")

    def test_sentence_masked(self):
        masked = mask_claim(self.make_claim())
        assert "42" not in masked.masked_sentence
        assert MASK_TOKEN in masked.masked_sentence.split()

    def test_context_masked_too(self):
        masked = mask_claim(self.make_claim())
        # Algorithm 4: the sentence inside the paragraph is replaced by its
        # masked version, so the value cannot leak from the context.
        assert "42" not in masked.masked_context
        assert "Analysts took note." in masked.masked_context

    def test_context_without_sentence_left_alone(self):
        claim = Claim(
            "KLM recorded 42 incidents this year.",
            Span(2, 2),
            "A context that does not contain the sentence.",
            "c1",
        )
        masked = mask_claim(claim)
        assert masked.masked_context == claim.context

    def test_value_absent_from_both_outputs(self):
        claim = self.make_claim()
        masked = mask_claim(claim)
        assert claim.value_text not in masked.masked_sentence
        assert claim.value_text not in masked.masked_context
