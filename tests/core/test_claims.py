"""Tests for the claim model and numeric semantics (Definitions 2.x,
Example 4.1)."""

import pytest

from repro.core.claims import (
    Claim,
    Document,
    Span,
    numeric_values_match,
    parse_claim_value,
    round_to_precision,
    same_order_of_magnitude,
    value_precision,
)
from repro.sqlengine import Database


class TestSpan:
    def test_valid(self):
        Span(0, 0)
        Span(1, 3)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Span(-1, 0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Span(3, 1)


class TestClaimValue:
    def make(self, sentence, start, end):
        return Claim(sentence, Span(start, end), sentence, "c1")

    def test_paper_example(self):
        # Example 2.3: value "two" at word index 1.
        claim = self.make(
            "The two fatal accidents involving Malaysia Airlines this year "
            "were the first for the carrier since 1995.",
            1, 1,
        )
        assert claim.value_text == "two"
        assert claim.value == 2
        assert claim.is_numeric

    def test_digit_value(self):
        claim = self.make("KLM recorded 42 incidents.", 2, 2)
        assert claim.value == 42

    def test_trailing_punctuation_stripped(self):
        claim = self.make("The total is 370.", 3, 3)
        assert claim.value == 370

    def test_multiword_textual_value(self):
        claim = self.make("Lewis Hamilton leads all drivers.", 0, 1)
        assert claim.value == "Lewis Hamilton"
        assert not claim.is_numeric

    def test_span_out_of_range(self):
        claim = self.make("short sentence.", 5, 5)
        with pytest.raises(ValueError):
            claim.value_text


class TestParseClaimValue:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42),
        ("3.5", 3.5),
        ("1,234", 1234),
        ("$5", 5),
        ("12%", 12),
        ("two", 2),
        ("twenty five", 25),
        ("twenty-five", 25),
        ("two hundred", 200),
        ("zero", 0),
        ("Malaysia Airlines", "Malaysia Airlines"),
        ("-3", -3),
    ])
    def test_parsing(self, text, expected):
        assert parse_claim_value(text) == expected

    def test_empty_stays_text(self):
        assert parse_claim_value("") == ""


class TestPrecision:
    @pytest.mark.parametrize("text,precision", [
        ("3", 0), ("3.1", 1), ("3.14", 2), ("1,234.5", 1), ("42%", 0),
    ])
    def test_value_precision(self, text, precision):
        assert value_precision(text) == precision

    def test_round_to_precision_integer(self):
        assert round_to_precision(3.4, 0) == 3
        assert isinstance(round_to_precision(3.4, 0), int)

    def test_round_to_precision_decimal(self):
        assert round_to_precision(3.14159, 2) == 3.14


class TestExample41:
    """Paper Example 4.1, verbatim."""

    def test_3140_matches_31(self):
        assert numeric_values_match(3.140, "3.1")

    def test_3140_matches_3(self):
        assert numeric_values_match(3.140, "3")

    def test_3140_does_not_match_3143(self):
        assert not numeric_values_match(3.140, "3.143")

    def test_3143_matches_314(self):
        assert numeric_values_match(3.143, "3.14")

    def test_number_word(self):
        assert numeric_values_match(2.1, "two")

    def test_text_never_matches_number(self):
        assert not numeric_values_match(2.0, "Malaysia")


class TestOrderOfMagnitude:
    def test_equal(self):
        assert same_order_of_magnitude(5, 5)

    def test_within_decade(self):
        # Ratio 84/370 = 0.23, inside (0.1, 10): plausible.
        assert same_order_of_magnitude(84, 370)

    def test_ratio_bounds(self):
        assert same_order_of_magnitude(9, 1)
        assert not same_order_of_magnitude(10, 1)
        assert same_order_of_magnitude(0.11, 1)
        assert not same_order_of_magnitude(0.1, 1)

    def test_zero_vs_zero(self):
        assert same_order_of_magnitude(0, 0)

    def test_zero_result_vs_nonzero_claim(self):
        assert not same_order_of_magnitude(0, 3)

    def test_small_result_vs_zero_claim(self):
        assert same_order_of_magnitude(1, 0)
        assert not same_order_of_magnitude(5, 0)

    def test_sign_mismatch(self):
        assert not same_order_of_magnitude(-5, 5)


class TestDocument:
    def test_assigns_claim_ids(self):
        claims = [
            Claim("A has 1 thing.", Span(2, 2), "ctx"),
            Claim("B has 2 things.", Span(2, 2), "ctx"),
        ]
        document = Document("doc1", claims, Database("d"))
        assert [c.claim_id for c in document.claims] == ["doc1/c0", "doc1/c1"]

    def test_keeps_existing_ids(self):
        claim = Claim("A has 1 thing.", Span(2, 2), "ctx", claim_id="custom")
        document = Document("doc1", [claim], Database("d"))
        assert document.claims[0].claim_id == "custom"
