"""Tests for the schedule cost/accuracy model (Theorems 6.1-6.3).

Includes a Monte-Carlo property test checking the closed forms against
direct simulation of the verification process under the independence
assumptions.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model import (
    MethodProfile,
    PlannedStage,
    describe_schedule,
    distinct_methods_used,
    expected_latency,
    schedule_accuracy,
    schedule_cost,
    schedule_failure_probability,
)

A = MethodProfile("a", accuracy=0.5, cost=1.0, latency_seconds=2.0)
B = MethodProfile("b", accuracy=0.8, cost=4.0, latency_seconds=6.0)
PROFILES = {"a": A, "b": B}


class TestClosedForms:
    def test_single_stage_cost(self):
        schedule = (PlannedStage("a", 1),)
        assert schedule_cost(schedule, PROFILES) == 1.0

    def test_two_tries_cost(self):
        # C = 1 + (1-0.5)*1 = 1.5
        schedule = (PlannedStage("a", 2),)
        assert schedule_cost(schedule, PROFILES) == pytest.approx(1.5)

    def test_two_methods_cost(self):
        # Theorem 6.1: C(a) + (1-A(a)) * C(b) = 1 + 0.5*4 = 3
        schedule = (PlannedStage("a", 1), PlannedStage("b", 1))
        assert schedule_cost(schedule, PROFILES) == pytest.approx(3.0)

    def test_accuracy_single(self):
        assert schedule_accuracy((PlannedStage("b", 1),), PROFILES) == 0.8

    def test_accuracy_composition(self):
        # Theorem 6.2: 1 - (1-0.5)(1-0.8) = 0.9
        schedule = (PlannedStage("a", 1), PlannedStage("b", 1))
        assert schedule_accuracy(schedule, PROFILES) == pytest.approx(0.9)

    def test_failure_probability_complements_accuracy(self):
        schedule = (PlannedStage("a", 2), PlannedStage("b", 1))
        assert schedule_failure_probability(
            schedule, PROFILES
        ) == pytest.approx(1 - schedule_accuracy(schedule, PROFILES))

    def test_zero_tries_is_noop(self):
        with_zero = (PlannedStage("a", 0), PlannedStage("b", 1))
        without = (PlannedStage("b", 1),)
        assert schedule_cost(with_zero, PROFILES) == schedule_cost(
            without, PROFILES
        )
        assert schedule_accuracy(with_zero, PROFILES) == schedule_accuracy(
            without, PROFILES
        )

    def test_empty_schedule(self):
        assert schedule_cost((), PROFILES) == 0.0
        assert schedule_accuracy((), PROFILES) == 0.0

    def test_expected_latency_mirrors_cost(self):
        schedule = (PlannedStage("a", 1), PlannedStage("b", 1))
        assert expected_latency(schedule, PROFILES) == pytest.approx(
            2.0 + 0.5 * 6.0
        )


class TestHelpers:
    def test_distinct_methods_used(self):
        schedule = (PlannedStage("a", 2), PlannedStage("b", 0),
                    PlannedStage("a", 1))
        assert distinct_methods_used(schedule) == 1

    def test_describe(self):
        schedule = (PlannedStage("a", 2), PlannedStage("b", 1))
        assert describe_schedule(schedule) == "ax2 -> bx1"

    def test_describe_empty(self):
        assert describe_schedule(()) == "(empty)"

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            MethodProfile("x", accuracy=1.5, cost=1)
        with pytest.raises(ValueError):
            MethodProfile("x", accuracy=0.5, cost=-1)
        with pytest.raises(ValueError):
            PlannedStage("x", -1)


@st.composite
def random_plan(draw):
    accuracies = draw(st.lists(
        st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=4
    ))
    costs = draw(st.lists(
        st.floats(min_value=0.01, max_value=10.0),
        min_size=len(accuracies), max_size=len(accuracies),
    ))
    tries = draw(st.lists(
        st.integers(min_value=0, max_value=3),
        min_size=len(accuracies), max_size=len(accuracies),
    ))
    profiles = {
        f"m{i}": MethodProfile(f"m{i}", accuracies[i], costs[i])
        for i in range(len(accuracies))
    }
    schedule = tuple(
        PlannedStage(f"m{i}", tries[i]) for i in range(len(accuracies))
    )
    return profiles, schedule


@given(random_plan(), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_closed_forms_match_monte_carlo(plan, seed):
    """Simulate the schedule under Assumptions 1-2 and compare moments."""
    profiles, schedule = plan
    rng = random.Random(seed)
    trials = 4000
    total_cost = 0.0
    successes = 0
    for _ in range(trials):
        succeeded = False
        for stage in schedule:
            profile = profiles[stage.method_name]
            for _ in range(stage.tries):
                if succeeded:
                    break
                total_cost += profile.cost
                if rng.random() < profile.accuracy:
                    succeeded = True
            if succeeded:
                break
        successes += succeeded
    simulated_cost = total_cost / trials
    simulated_accuracy = successes / trials
    # Tolerance sized for the estimator, not the estimand: a cheap
    # early stage followed by an expensive rarely-reached one makes the
    # per-trial cost heavy-tailed, so at 4000 trials the sample mean
    # wanders ~2σ ≈ 0.12·E[cost] for the worst generated plans. rel=0.08
    # sat at the 2σ edge and flaked once in a few dozen examples.
    assert schedule_cost(schedule, profiles) == pytest.approx(
        simulated_cost, rel=0.12, abs=0.15
    )
    assert schedule_accuracy(schedule, profiles) == pytest.approx(
        simulated_accuracy, abs=0.05
    )


@given(random_plan())
@settings(max_examples=100, deadline=None)
def test_prefix_replacement_theorem(plan):
    """Theorem 6.3: a better-or-equal prefix never worsens the whole."""
    profiles, schedule = plan
    if len(schedule) < 2:
        return
    # Replace the first stage with a strictly better one.
    first = profiles[schedule[0].method_name]
    better = MethodProfile(
        "better",
        accuracy=min(0.99, first.accuracy + 0.01),
        cost=max(0.0, first.cost - 0.01),
    )
    profiles2 = dict(profiles)
    profiles2["better"] = better
    replaced = (PlannedStage("better", schedule[0].tries),) + schedule[1:]
    assert schedule_cost(replaced, profiles2) <= schedule_cost(
        schedule, profiles
    ) + 1e-9
    assert schedule_accuracy(replaced, profiles2) >= schedule_accuracy(
        schedule, profiles
    ) - 1e-9


@given(random_plan())
@settings(max_examples=100, deadline=None)
def test_more_tries_never_reduce_accuracy(plan):
    profiles, schedule = plan
    if not schedule:
        return
    extended = schedule[:-1] + (
        PlannedStage(schedule[-1].method_name, schedule[-1].tries + 1),
    )
    assert schedule_accuracy(extended, profiles) >= schedule_accuracy(
        schedule, profiles
    ) - 1e-12
