"""Tests for the DP scheduler (Algorithm 10) and SelectSchedule."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model import (
    MethodProfile,
    PlannedStage,
    schedule_accuracy,
    schedule_cost,
)
from repro.core.scheduling import (
    ScoredSchedule,
    optimal_schedule,
    pareto_schedules,
    prune,
    select_schedule,
)

CHEAP = MethodProfile("cheap", accuracy=0.5, cost=1.0)
MID = MethodProfile("mid", accuracy=0.8, cost=5.0)
EXPENSIVE = MethodProfile("expensive", accuracy=0.95, cost=30.0)
PROFILES = {"cheap": CHEAP, "mid": MID, "expensive": EXPENSIVE}


class TestPrune:
    def scored(self, cost, accuracy):
        return ScoredSchedule((), cost, accuracy)

    def test_dominated_candidate_dropped(self):
        frontier = [self.scored(1.0, 0.9)]
        result = prune(frontier, self.scored(2.0, 0.8))
        assert result == frontier

    def test_dominating_candidate_replaces(self):
        frontier = [self.scored(2.0, 0.8)]
        result = prune(frontier, self.scored(1.0, 0.9))
        assert len(result) == 1
        assert result[0].cost == 1.0

    def test_incomparable_coexist(self):
        frontier = [self.scored(1.0, 0.5)]
        result = prune(frontier, self.scored(2.0, 0.9))
        assert len(result) == 2

    def test_duplicate_not_added(self):
        frontier = [self.scored(1.0, 0.5)]
        result = prune(frontier, self.scored(1.0, 0.5))
        assert len(result) == 1

    def test_dominance(self):
        assert self.scored(1.0, 0.9).dominates(self.scored(2.0, 0.8))
        assert not self.scored(1.0, 0.9).dominates(self.scored(1.0, 0.9))
        assert not self.scored(2.0, 0.95).dominates(self.scored(1.0, 0.9))


class TestParetoSchedules:
    def test_frontier_is_pareto(self):
        frontier = pareto_schedules(PROFILES, max_tries=2)
        for left, right in itertools.permutations(frontier, 2):
            assert not left.dominates(right)

    def test_scores_are_consistent(self):
        for scored in pareto_schedules(PROFILES, max_tries=2):
            assert scored.cost == pytest.approx(
                schedule_cost(scored.schedule, PROFILES)
            )
            assert scored.accuracy == pytest.approx(
                schedule_accuracy(scored.schedule, PROFILES)
            )

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            pareto_schedules({})

    def test_zero_max_tries_rejected(self):
        with pytest.raises(ValueError):
            pareto_schedules(PROFILES, max_tries=0)

    def test_frontier_never_contains_zero_try_stages(self):
        # Schedules are canonicalised before scoring: a zero-try stage is
        # an explicit skip (ScheduleEntry documents it as such), and the
        # DP must never emit one — not in the frontier, not in the final
        # selection.
        for scored in pareto_schedules(PROFILES, max_tries=2):
            assert all(stage.tries > 0 for stage in scored.schedule)

    def test_exhaustive_comparison_small_instance(self):
        """The DP frontier must dominate every brute-force schedule."""
        profiles = {"cheap": CHEAP, "mid": MID}
        frontier = pareto_schedules(profiles, max_tries=2)
        names = sorted(profiles)
        # Enumerate every ordering x try-count assignment.
        for order in itertools.permutations(names):
            for tries in itertools.product(range(3), repeat=len(order)):
                candidate = tuple(
                    PlannedStage(name, k) for name, k in zip(order, tries)
                )
                cost = schedule_cost(candidate, profiles)
                accuracy = schedule_accuracy(candidate, profiles)
                assert any(
                    s.cost <= cost + 1e-9 and s.accuracy >= accuracy - 1e-9
                    for s in frontier
                ), f"{candidate} not covered by frontier"


class TestSelectSchedule:
    def test_meets_constraint_when_feasible(self):
        schedule = optimal_schedule(PROFILES, min_accuracy=0.9, max_tries=3)
        assert schedule_accuracy(schedule, PROFILES) >= 0.9

    def test_low_threshold_yields_cheaper_schedule(self):
        cheap_schedule = optimal_schedule(PROFILES, 0.5, max_tries=3)
        strict_schedule = optimal_schedule(PROFILES, 0.999, max_tries=3)
        assert schedule_cost(cheap_schedule, PROFILES) <= schedule_cost(
            strict_schedule, PROFILES
        )

    def test_infeasible_threshold_takes_best_accuracy(self):
        weak = {"w": MethodProfile("w", accuracy=0.3, cost=1.0)}
        schedule = optimal_schedule(weak, min_accuracy=0.999, max_tries=2)
        # Best achievable: two tries of the only method.
        assert schedule == (PlannedStage("w", 2),)

    def test_zero_stages_stripped(self):
        schedule = optimal_schedule(PROFILES, 0.5, max_tries=3)
        assert all(stage.tries > 0 for stage in schedule)

    def test_empty_frontier_rejected(self):
        with pytest.raises(ValueError):
            select_schedule([], 0.9)

    def test_diversity_tiebreak(self):
        # Two methods with identical profiles: among near-equal-cost
        # feasible schedules the two-method one is preferred.
        twins = {
            "x": MethodProfile("x", accuracy=0.6, cost=1.0),
            "y": MethodProfile("y", accuracy=0.6, cost=1.0),
        }
        schedule = optimal_schedule(twins, min_accuracy=0.84, max_tries=2)
        used = {s.method_name for s in schedule}
        assert used == {"x", "y"}


@st.composite
def random_profiles(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    return {
        f"m{i}": MethodProfile(
            f"m{i}",
            accuracy=draw(st.floats(min_value=0.05, max_value=0.95)),
            cost=draw(st.floats(min_value=0.01, max_value=20.0)),
        )
        for i in range(count)
    }


@given(random_profiles(), st.floats(min_value=0.1, max_value=0.999))
@settings(max_examples=60, deadline=None)
def test_optimal_schedule_never_dominated(profiles, threshold):
    """No brute-force schedule both meets the constraint and costs less."""
    chosen = optimal_schedule(profiles, threshold, max_tries=2)
    chosen_cost = schedule_cost(chosen, profiles)
    chosen_accuracy = schedule_accuracy(chosen, profiles)
    names = sorted(profiles)
    feasible_exists = chosen_accuracy >= threshold
    for order in itertools.permutations(names):
        for tries in itertools.product(range(3), repeat=len(order)):
            candidate = tuple(
                PlannedStage(n, k) for n, k in zip(order, tries)
            )
            accuracy = schedule_accuracy(candidate, profiles)
            cost = schedule_cost(candidate, profiles)
            if feasible_exists and accuracy >= threshold:
                # SelectSchedule may pay up to the diversity margin above
                # the true cost optimum (documented interpretation).
                assert chosen_cost <= cost * 1.10 + 1e-9
            if not feasible_exists:
                assert accuracy <= chosen_accuracy + 1e-9
