"""Property tests for Algorithm 9: termination and soundness."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.reconstruction import reconstruct
from repro.sqlengine import Database, Engine, Table
from repro.sqlengine.errors import SqlError


def make_db():
    database = Database("rp")
    database.add(Table(
        "t",
        ["name", "a", "b"],
        [("x", 3, 10), ("y", 7, 20), ("z", 11, 30)],
    ))
    return database


_QUERY_POOL = [
    'SELECT MAX("a") FROM "t"',                       # 11
    'SELECT MIN("a") FROM "t"',                       # 3
    'SELECT SUM("b") FROM "t"',                       # 60
    'SELECT "name" FROM "t" WHERE "a" = 11',
    'SELECT "b" FROM "t" WHERE "a" = 3',
    'SELECT "name" FROM "t" WHERE "b" = 60',
    "SELECT 'x'",
    "SELECT nothing FROM nowhere",                    # broken
    "SELECT",                                         # malformed
    'SELECT COUNT(*) FROM "t" WHERE "a" > 3',
]


@given(st.lists(st.sampled_from(_QUERY_POOL), min_size=1, max_size=6))
@settings(max_examples=200, deadline=None)
def test_reconstruct_terminates_and_returns_string(query_list):
    merged = reconstruct(list(query_list), make_db())
    assert isinstance(merged, str)
    assert merged.strip()


@given(st.lists(st.sampled_from(_QUERY_POOL), min_size=1, max_size=5))
@settings(max_examples=150, deadline=None)
def test_reconstruction_preserves_final_result_when_executable(query_list):
    """If the last query executes, the merged query executes to the same
    value — substitutions replace constants with sub-queries producing
    exactly those constants."""
    database = make_db()
    engine = Engine(database)
    try:
        expected = engine.execute(query_list[-1]).first_cell()
    except SqlError:
        return
    merged = reconstruct(list(query_list), database)
    try:
        actual = engine.execute(merged).first_cell()
    except SqlError:
        # Substitution into an already-broken later query may stay broken,
        # but never break a working final query.
        raise AssertionError(
            f"reconstruction broke an executable query: {merged!r}"
        )
    assert actual == expected


@given(st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_random_chains_merge_to_reference_semantics(seed):
    """Build an (inner, outer-with-constant) pair and check the merge is
    semantically the nested query."""
    rng = random.Random(seed)
    database = make_db()
    engine = Engine(database)
    inner = rng.choice([
        'SELECT MAX("a") FROM "t"',
        'SELECT MIN("a") FROM "t"',
    ])
    inner_value = engine.execute(inner).first_cell()
    outer = f'SELECT "name" FROM "t" WHERE "a" = {inner_value}'
    nested = (
        f'SELECT "name" FROM "t" WHERE "a" = ({inner})'
    )
    merged = reconstruct([inner, outer], database)
    assert engine.execute(merged).first_cell() == \
        engine.execute(nested).first_cell()
    assert str(inner_value) not in merged
