"""Tests for the concurrent executor, response cache, retry layer, and
the ``repro.verify`` facade."""

import threading
import warnings

import pytest

from repro.core import (
    MultiStageVerifier,
    OneShotMethod,
    ParallelVerifier,
    ScheduleEntry,
    VerifierConfig,
    verify,
)
from repro.core.claims import Claim, Document, Span
from repro.datasets import build_aggchecker
from repro.llm import (
    CachingLLMClient,
    CostLedger,
    LLMCache,
    LLMClient,
    ResilientLLMClient,
    RetriesExhaustedError,
    RetryPolicy,
    ScriptedLLM,
    SimulatedLLM,
    TransportError,
)
from repro.sqlengine import Database, Table


def reset_claims(documents):
    for document in documents:
        for claim in document.claims:
            claim.correct = None
            claim.query = None


def build_system(bundle, seed=0, config=None):
    """Two one-shot methods over the bundle's world, sharing one ledger."""
    config = config if config is not None else VerifierConfig()
    ledger = config.make_ledger()
    methods = [
        OneShotMethod(SimulatedLLM("gpt-3.5-turbo", bundle.world, ledger,
                                   seed=seed)),
        OneShotMethod(SimulatedLLM("gpt-4o", bundle.world, ledger,
                                   seed=seed + 1)),
    ]
    schedule = [ScheduleEntry(methods[0], 2), ScheduleEntry(methods[1], 1)]
    return ledger, schedule


def snapshot(bundle, run):
    return {
        claim.claim_id: (
            claim.correct,
            claim.query,
            run.reports[claim.claim_id].verified_by,
            run.reports[claim.claim_id].attempts,
        )
        for claim in bundle.claims
    }


class TestSequentialParallelEquivalence:
    """The acceptance contract: fixed seed, no cache -> identical runs."""

    def test_parallel_reproduces_sequential_run(self):
        bundle = build_aggchecker(document_count=6, total_claims=30)

        ledger_seq, schedule = build_system(bundle)
        sequential = MultiStageVerifier(
            config=VerifierConfig(ledger=ledger_seq)
        )
        reset_claims(bundle.documents)
        run_seq = sequential.verify_documents(bundle.documents, schedule)
        seq_state = snapshot(bundle, run_seq)

        ledger_par, schedule = build_system(bundle)
        parallel = ParallelVerifier(
            config=VerifierConfig(workers=4, ledger=ledger_par)
        )
        reset_claims(bundle.documents)
        run_par = parallel.verify_documents(bundle.documents, schedule)

        assert snapshot(bundle, run_par) == seq_state
        # Not just equal totals: the merge-on-join protocol reproduces the
        # sequential entry sequence byte for byte.
        assert ledger_par.entries == ledger_seq.entries

    def test_single_worker_parallel_is_sequential(self):
        bundle = build_aggchecker(document_count=3, total_claims=12)
        ledger, schedule = build_system(bundle)
        verifier = ParallelVerifier(config=VerifierConfig(ledger=ledger))
        reset_claims(bundle.documents)
        run = verifier.verify_documents(bundle.documents, schedule)
        assert len(run.reports) == len(bundle.claims)
        assert all(c.correct is not None for c in bundle.claims)


class TestCacheAccounting:
    def test_warm_rerun_hits_cache(self):
        bundle = build_aggchecker(document_count=3, total_claims=12)
        ledger = CostLedger()
        method = OneShotMethod(
            SimulatedLLM("gpt-4o", bundle.world, ledger, seed=0)
        )
        verifier = ParallelVerifier(
            config=VerifierConfig(workers=2, cache_size=512, ledger=ledger)
        )
        schedule = [ScheduleEntry(method, 1)]

        reset_claims(bundle.documents)
        verifier.verify_documents(bundle.documents, schedule)
        cold = verifier.cache.stats
        cold_calls = ledger.totals().calls
        assert cold.hits == 0 and cold.misses > 0

        reset_claims(bundle.documents)
        verifier.verify_documents(bundle.documents, schedule)
        warm = verifier.cache.stats
        # tries=1 keeps every call at temperature 0, so the warm round is
        # answered entirely from cache: no new ledger entries at all.
        assert warm.hits == cold.misses
        assert warm.misses == cold.misses
        assert ledger.totals().calls == cold_calls

    def test_temperature_zero_hit_skips_inner_and_ledger(self):
        ledger = CostLedger()
        inner = ScriptedLLM(["hello"], ledger=ledger)
        client = CachingLLMClient(inner, LLMCache(8))
        first = client.complete("prompt", 0.0)
        second = client.complete("prompt", 0.0)
        assert second is first
        assert len(inner.calls) == 1
        assert len(ledger) == 1          # the hit billed nothing
        assert client.cache.stats.hits == 1

    def test_positive_temperature_bypasses_cache(self):
        inner = ScriptedLLM(["a", "b"])
        client = CachingLLMClient(inner, LLMCache(8))
        client.complete("prompt", 0.5)
        client.complete("prompt", 0.5)
        # Assumption 1: retries must be independent draws, never replays.
        assert len(inner.calls) == 2
        assert client.cache.stats.bypasses == 2
        assert len(client.cache) == 0

    def test_clients_with_different_seeds_do_not_collide(self):
        world = build_aggchecker(document_count=1, total_claims=4).world
        cache = LLMCache(8)
        a = CachingLLMClient(SimulatedLLM("gpt-4o", world, seed=0), cache)
        b = CachingLLMClient(SimulatedLLM("gpt-4o", world, seed=1), cache)
        assert a._key("p", 0.0) != b._key("p", 0.0)

    def test_lru_eviction(self):
        inner = ScriptedLLM(["x"])
        client = CachingLLMClient(inner, LLMCache(2))
        for prompt in ("p1", "p2", "p3"):
            client.complete(prompt, 0.0)
        stats = client.cache.stats
        assert stats.evictions == 1
        assert stats.size == 2


class FlakyLLM(LLMClient):
    """Fails the first ``failures`` calls with ``error``, then answers."""

    def __init__(self, failures, ledger=None, error=TransportError,
                 text="recovered"):
        super().__init__("gpt-3.5-turbo", ledger)
        self.failures = failures
        self.error = error
        self.text = text
        self.attempts = 0

    def _generate(self, prompt, temperature):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise self.error("synthetic failure")
        return self.text


class TestRetry:
    def make_policy(self, slept, **overrides):
        defaults = dict(max_attempts=3, base_delay=0.01, sleep=slept.append)
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def test_transient_failure_retried_then_succeeds(self):
        ledger = CostLedger()
        slept = []
        client = ResilientLLMClient(
            FlakyLLM(2, ledger), self.make_policy(slept)
        )
        response = client.complete("prompt")
        assert response.text == "recovered"
        assert client.inner.attempts == 3
        assert len(slept) == 2 and all(d > 0 for d in slept)
        # Both retries are in the ledger, neither as a surrender.
        assert ledger.retry_count == 2
        assert not any(e.gave_up for e in ledger.events)

    def test_retries_exhausted(self):
        ledger = CostLedger()
        slept = []
        client = ResilientLLMClient(
            FlakyLLM(99, ledger), self.make_policy(slept)
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.complete("prompt")
        assert excinfo.value.attempts == 3
        assert client.inner.attempts == 3
        events = ledger.events
        assert len(events) == 3
        assert [e.gave_up for e in events] == [False, False, True]

    def test_permanent_failure_not_retried(self):
        client = ResilientLLMClient(
            FlakyLLM(99, error=ValueError), RetryPolicy(max_attempts=5)
        )
        with pytest.raises(ValueError):
            client.complete("prompt")
        assert client.inner.attempts == 1
        assert client.ledger.retry_count == 0

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.3, jitter=0.25)
        assert policy.delay_for(2, "tok") == policy.delay_for(2, "tok")
        assert policy.delay_for(1, "a") != policy.delay_for(1, "b")
        # nominal at attempt 9 is far past the cap; jitter stays within it
        assert policy.delay_for(9, "tok") <= 0.3 * 1.25

    def test_verifier_survives_transient_failures(self):
        """End to end: a flaky method retried by the instrumented stack."""
        database = Database("d")
        database.add(Table("t", ["k", "v"], [("a", 3)]))
        claim = Claim("There are 3 things.", Span(2, 2),
                      "Intro. There are 3 things. Outro.")
        document = Document("d", [claim], database)
        ledger = CostLedger()
        method = OneShotMethod(FlakyLLM(
            1, ledger, text="```sql\nSELECT v FROM t WHERE k = 'a'\n```"
        ))
        verifier = MultiStageVerifier(config=VerifierConfig(
            ledger=ledger,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        ))
        run = verifier.verify_documents([document], [ScheduleEntry(method, 1)])
        assert claim.correct is True
        assert run.reports[claim.claim_id].verified_by == method.name
        assert ledger.retry_count == 1
        # The retry event carries the call's doc/method/claim tags.
        assert any(t.startswith("claim:") for t in ledger.events[0].tags)


class TestConcurrentLedger:
    def test_concurrent_mutation_from_many_threads(self):
        ledger = CostLedger()
        threads = 12
        per_thread = 50

        def work(index):
            with ledger.tagged(f"thread:{index}"):
                for _ in range(per_thread):
                    ledger.record(
                        model="m",
                        prompt_tokens=1,
                        completion_tokens=1,
                        cost=0.001,
                        latency_seconds=0.0,
                    )
                ledger.record_retry(
                    model="m", attempt=1, delay_seconds=0.0, error="e"
                )

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert len(ledger) == threads * per_thread
        assert ledger.retry_count == threads
        assert ledger.totals().calls == threads * per_thread
        for index in range(threads):
            assert ledger.totals(f"thread:{index}").calls == per_thread

    def test_capture_absorb_preserves_order_and_tags(self):
        ledger = CostLedger()
        with ledger.tagged("outer"):
            with ledger.capture() as delta:
                ledger.record("m", 1, 0, 0.0, 0.0)
                ledger.record("m", 2, 0, 0.0, 0.0)
        assert len(ledger) == 0          # buffered, not yet merged
        ledger.absorb(delta)
        assert [e.prompt_tokens for e in ledger.entries] == [1, 2]
        assert ledger.entries[0].tags == ("outer",)

    def test_scoped_replays_tag_snapshot(self):
        ledger = CostLedger()
        with ledger.tagged("doc:1"):
            tags = ledger.current_tags()
        with ledger.scoped(tags):
            ledger.record("m", 1, 0, 0.0, 0.0)
        assert ledger.entries[0].tags == ("doc:1",)
        assert ledger.current_tags() == ()


class TestDeprecationShims:
    def test_positional_ledger_warns_but_works(self):
        ledger = CostLedger()
        with pytest.warns(DeprecationWarning):
            verifier = MultiStageVerifier(ledger)
        assert verifier.ledger is ledger

    def test_use_samples_keyword_warns_but_works(self):
        with pytest.warns(DeprecationWarning):
            verifier = MultiStageVerifier(use_samples=False)
        assert verifier.use_samples is False

    def test_warning_points_at_caller_site(self):
        # The shim must warn with stacklevel=2 so the filename/lineno in
        # the warning is the code constructing the verifier (this test),
        # not a frame inside repro.core.pipeline.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            MultiStageVerifier(CostLedger())
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__

    def test_parallel_verifier_warning_points_at_caller_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            ParallelVerifier(use_samples=False)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__

    def test_config_signature_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            verifier = MultiStageVerifier(
                config=VerifierConfig(use_samples=False)
            )
        assert verifier.use_samples is False


class TestVerifierConfigValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            VerifierConfig(workers=0)

    def test_cache_size_must_be_non_negative(self):
        with pytest.raises(ValueError):
            VerifierConfig(cache_size=-1)

    def test_negative_tries_rejected(self):
        method = OneShotMethod(ScriptedLLM(["x"]))
        with pytest.raises(ValueError):
            ScheduleEntry(method, -1)


class TestVerifyFacade:
    def make_document(self):
        database = Database("facade")
        database.add(Table("t", ["k", "v"], [("a", 3)]))
        claim = Claim("There are 3 things.", Span(2, 2),
                      "Intro. There are 3 things. Outro.")
        return Document("facade-doc", [claim], database), database

    def test_single_document_accepted(self):
        document, _ = self.make_document()
        method = OneShotMethod(
            ScriptedLLM(["```sql\nSELECT v FROM t WHERE k = 'a'\n```"])
        )
        run = verify(document, schedule=[ScheduleEntry(method, 1)])
        assert run.documents == [document]
        assert document.claims[0].correct is True
        assert isinstance(run.verifier, ParallelVerifier)

    def test_database_override(self):
        document, _ = self.make_document()
        other = Database("override")
        other.add(Table("t", ["k", "v"], [("a", 4)]))
        method = OneShotMethod(
            ScriptedLLM(["```sql\nSELECT v FROM t WHERE k = 'a'\n```"])
        )
        run = verify([document], other, schedule=[ScheduleEntry(method, 1)])
        assert document.data is other
        # Against the override the claim's 3 is contradicted by 4.
        assert document.claims[0].correct is False
        assert run.reports[document.claims[0].claim_id].plausible

    def test_config_controls_ledger(self):
        document, _ = self.make_document()
        ledger = CostLedger()
        method = OneShotMethod(
            ScriptedLLM(["```sql\nSELECT v FROM t WHERE k = 'a'\n```"],
                        ledger=ledger)
        )
        run = verify(document, schedule=[ScheduleEntry(method, 1)],
                     config=VerifierConfig(ledger=ledger))
        assert run.verifier.ledger is ledger
        assert len(ledger) == 1
