"""Tests for verification report rendering."""

import json

import pytest

from repro.core import (
    MultiStageVerifier,
    OneShotMethod,
    ScheduleEntry,
    VerifierConfig,
)
from repro.core.claims import Claim, Document, Span
from repro.core.reports import (
    claim_record,
    claim_records,
    document_report,
    to_json,
    to_markdown,
)
from repro.llm import CacheStats, CostLedger, LLMCache, ScriptedLLM
from repro.sqlengine import Database, Table


@pytest.fixture()
def verified():
    database = Database("r")
    database.add(Table("t", ["name", "v"], [("a", 5), ("b", 9)]))
    claims = [
        Claim("Row a stores 5 units.", Span(3, 3), "ctx",
              metadata={"label_correct": True}),
        Claim("Row b stores 7 units.", Span(3, 3), "ctx",
              metadata={"label_correct": False}),
    ]
    document = Document("rdoc", claims, database, title="Report demo")
    ledger = CostLedger()
    client = ScriptedLLM(
        ["```sql\nSELECT v FROM t WHERE name = 'a'\n```",
         "```sql\nSELECT v FROM t WHERE name = 'b'\n```"],
        ledger=ledger,
    )
    verifier = MultiStageVerifier(config=VerifierConfig(ledger=ledger))
    run = verifier.verify_documents(
        [document], [ScheduleEntry(OneShotMethod(client), 1)]
    )
    return document, run, ledger


class TestRecords:
    def test_one_record_per_claim(self, verified):
        document, run, _ = verified
        records = claim_records(document, run)
        assert len(records) == 2
        assert records[0]["verdict"] == "correct"
        assert records[1]["verdict"] == "incorrect"
        assert records[1]["query"].endswith("'b'")

    def test_summary_counts(self, verified):
        document, run, ledger = verified
        report = document_report(document, run, ledger)
        assert report["summary"] == {
            "total_claims": 2,
            "flagged": 1,
            "verified_without_fallback": 2,
        }
        assert report["spend"]["llm_calls"] == 2
        assert report["spend"]["cost_usd"] > 0

    def test_spend_optional(self, verified):
        document, run, _ = verified
        assert "spend" not in document_report(document, run)

    def test_retry_backoff_totals_surface_in_spend(self, verified):
        document, run, ledger = verified
        assert "retries" not in document_report(document, run,
                                                ledger)["spend"]
        ledger.record_retry("gpt-4o", attempt=1, delay_seconds=0.5,
                            error="RateLimitError()")
        ledger.record_retry("gpt-4o", attempt=2, delay_seconds=1.25,
                            error="RateLimitError()")
        spend = document_report(document, run, ledger)["spend"]
        assert spend["retries"] == 2
        assert spend["retry_backoff_seconds"] == pytest.approx(1.75)
        markdown = to_markdown(document, run, ledger)
        assert "2 retried, 1.750s of backoff" in markdown


class TestJson:
    def test_round_trips(self, verified):
        document, run, ledger = verified
        parsed = json.loads(to_json(document, run, ledger))
        assert parsed["document_id"] == "rdoc"
        assert len(parsed["claims"]) == 2


class TestMarkdown:
    def test_structure(self, verified):
        document, run, ledger = verified
        text = to_markdown(document, run, ledger)
        assert text.startswith("# Verification report — Report demo")
        assert "2 claims checked, 1 flagged." in text
        assert "⚠️" in text and "✅" in text
        assert "`SELECT v FROM t WHERE name = 'b'`" in text
        assert "Verification spend: $" in text

    def test_fallback_claims_labelled(self):
        database = Database("f")
        database.add(Table("t", ["v"], [(1,)]))
        claim = Claim("Value 9 here.", Span(1, 1), "ctx",
                      metadata={"label_correct": False})
        document = Document("fdoc", [claim], database)
        client = ScriptedLLM(["no sql at all"])
        verifier = MultiStageVerifier(
            config=VerifierConfig(ledger=client.ledger)
        )
        run = verifier.verify_documents(
            [document], [ScheduleEntry(OneShotMethod(client), 1)]
        )
        text = to_markdown(document, run)
        assert "fallback verdict" in text


class TestSingleClaimRecord:
    def test_claim_record_matches_claim_records(self, verified):
        document, run, _ = verified
        claim = document.claims[0]
        record = claim_record(claim, run.reports[claim.claim_id])
        assert record == claim_records(document, run)[0]
        assert record["claim_id"] == claim.claim_id


class TestCacheStatsRendering:
    def make_stats(self):
        return CacheStats(hits=3, misses=1, bypasses=2, evictions=1,
                          size=4, max_size=16)

    def test_report_includes_cache_section(self, verified):
        document, run, _ = verified
        report = document_report(document, run, cache=self.make_stats())
        assert report["cache"]["hits"] == 3
        assert report["cache"]["lookups"] == 4
        assert report["cache"]["hit_rate"] == 0.75

    def test_cache_section_optional(self, verified):
        document, run, _ = verified
        assert "cache" not in document_report(document, run)

    def test_live_cache_accepted(self, verified):
        document, run, _ = verified
        report = document_report(document, run, cache=LLMCache(8))
        assert report["cache"]["lookups"] == 0

    def test_markdown_cache_line(self, verified):
        document, run, ledger = verified
        text = to_markdown(document, run, ledger, cache=self.make_stats())
        assert ("Response cache: 3 hits / 4 lookups (75% hit rate), "
                "2 retry bypasses, 1 evictions.") in text

    def test_json_round_trips_cache(self, verified):
        document, run, ledger = verified
        parsed = json.loads(
            to_json(document, run, ledger, cache=self.make_stats())
        )
        assert parsed["cache"]["bypasses"] == 2
