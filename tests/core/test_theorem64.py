"""Property test for Theorem 6.4: consecutive retries are never worse.

The paper proves that a schedule interleaving two invocations of the same
method with another method's invocation can always be rearranged into one
with consecutive invocations at equal or lower expected cost. The DP
scheduler relies on this to restrict its search space. We verify the
claim directly against the cost model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model import (
    MethodProfile,
    PlannedStage,
    schedule_accuracy,
    schedule_cost,
)


@st.composite
def ab_profiles(draw):
    return {
        "A": MethodProfile(
            "A",
            accuracy=draw(st.floats(min_value=0.05, max_value=0.95)),
            cost=draw(st.floats(min_value=0.01, max_value=10.0)),
        ),
        "B": MethodProfile(
            "B",
            accuracy=draw(st.floats(min_value=0.05, max_value=0.95)),
            cost=draw(st.floats(min_value=0.01, max_value=10.0)),
        ),
    }


def interleaved(schedule_names):
    return tuple(PlannedStage(name, 1) for name in schedule_names)


@given(ab_profiles())
@settings(max_examples=200, deadline=None)
def test_consecutive_beats_interleaved_abab(profiles):
    """One of A,A,B,B / B,B,A,A is at most as costly as A,B,B,A etc."""
    split = interleaved(("A", "B", "B", "A"))
    consecutive_options = (
        interleaved(("A", "A", "B", "B")),
        interleaved(("B", "B", "A", "A")),
    )
    best_consecutive = min(
        schedule_cost(candidate, profiles)
        for candidate in consecutive_options
    )
    assert best_consecutive <= schedule_cost(split, profiles) + 1e-9


@given(ab_profiles())
@settings(max_examples=200, deadline=None)
def test_accuracy_is_order_invariant(profiles):
    """Theorem 6.2's accuracy only depends on the multiset of tries."""
    first = interleaved(("A", "B", "A", "B"))
    second = interleaved(("A", "A", "B", "B"))
    assert schedule_accuracy(first, profiles) == pytest.approx(
        schedule_accuracy(second, profiles)
    )


@given(ab_profiles())
@settings(max_examples=200, deadline=None)
def test_cheaper_effective_method_first_is_optimal_for_pairs(profiles):
    """For single tries of two methods, the rank condition C/A decides
    the optimal order (the classical expensive-predicate rule)."""
    ab = interleaved(("A", "B"))
    ba = interleaved(("B", "A"))
    a, b = profiles["A"], profiles["B"]
    rank_a = a.cost / a.accuracy
    rank_b = b.cost / b.accuracy
    cheaper_first = ab if rank_a <= rank_b else ba
    other = ba if cheaper_first is ab else ab
    assert schedule_cost(cheaper_first, profiles) <= schedule_cost(
        other, profiles
    ) + 1e-9
