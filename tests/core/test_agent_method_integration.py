"""Agent-method edge cases through the pipeline."""

import pytest

from repro.core import AgentMethod, MultiStageVerifier, ScheduleEntry
from repro.core.claims import Claim, Document, Span
from repro.llm import CostLedger, ScriptedLLM
from repro.sqlengine import Database, Table


def make_document():
    database = Database("am")
    database.add(Table("t", ["name", "v"], [("a", 5), ("b", 9)]))
    claim = Claim("Row a stores 5 units.", Span(3, 3), "ctx",
                  metadata={"label_correct": True})
    return Document("amdoc", [claim], database)


def action(tool, tool_input):
    return f"Thought: step.\nAction: {tool}\nAction Input: {tool_input}"


class TestAgentThroughPipeline:
    def test_agent_verifies_via_tools(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM([
            action("database_querying",
                   "SELECT v FROM t WHERE name = 'a'"),
            "Thought: done.\nFinal Answer: 5",
        ], ledger=ledger)
        method = AgentMethod(client)
        run = MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        claim = document.claims[0]
        assert claim.correct is True
        assert claim.query == "SELECT v FROM t WHERE name = 'a'"
        report = run.reports[claim.claim_id]
        assert report.verified_by == method.name

    def test_agent_cost_covers_every_iteration(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM([
            action("unique_column_values", "name"),
            action("database_querying",
                   "SELECT v FROM t WHERE name = 'a'"),
            "Thought: done.\nFinal Answer: 5",
        ], ledger=ledger)
        MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(AgentMethod(client), 1)]
        )
        # Three LLM calls, each billed with a growing scratchpad.
        assert ledger.totals().calls == 3
        prompt_sizes = [e.prompt_tokens for e in ledger.entries]
        assert prompt_sizes == sorted(prompt_sizes)
        assert prompt_sizes[0] < prompt_sizes[-1]

    def test_agent_iteration_cap_bounds_cost(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM(
            [action("unique_column_values", "name")], ledger=ledger
        )
        method = AgentMethod(client, max_iterations=4)
        MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(method, 1)]
        )
        assert ledger.totals().calls == 4

    def test_agent_with_broken_queries_falls_back(self):
        document = make_document()
        ledger = CostLedger()
        client = ScriptedLLM([
            action("database_querying", "SELECT nothing FROM nowhere"),
            "Thought: give up.\nFinal Answer: unknown",
        ], ledger=ledger)
        run = MultiStageVerifier(ledger).verify_documents(
            [document], [ScheduleEntry(AgentMethod(client), 1)]
        )
        claim = document.claims[0]
        report = run.reports[claim.claim_id]
        assert report.fallback
        # The broken query never executed: no executable evidence, so the
        # claim passes by default.
        assert claim.correct is True
