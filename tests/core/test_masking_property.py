"""Property tests for masking (Algorithm 4)."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.claims import Claim, Span
from repro.core.masking import MASK_TOKEN, mask_claim, mask_sentence

_WORDS = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1,
    max_size=10,
)


@st.composite
def sentence_and_span(draw):
    words = draw(st.lists(_WORDS, min_size=2, max_size=15))
    start = draw(st.integers(0, len(words) - 1))
    end = draw(st.integers(start, len(words) - 1))
    return " ".join(words), start, end


@given(sentence_and_span())
@settings(max_examples=200, deadline=None)
def test_mask_replaces_exactly_the_span(data):
    sentence, start, end = data
    masked = mask_sentence(sentence, start, end)
    original_tokens = sentence.split()
    masked_tokens = masked.split()
    # Token count shrinks by the span width minus one.
    assert len(masked_tokens) == len(original_tokens) - (end - start)
    # Tokens outside the span are untouched.
    assert masked_tokens[:start] == original_tokens[:start]
    assert masked_tokens[start + 1:] == original_tokens[end + 1:]
    # The span became the mask token (possibly with punctuation).
    assert MASK_TOKEN in masked_tokens[start]


@given(sentence_and_span())
@settings(max_examples=200, deadline=None)
def test_masking_is_idempotent_per_position(data):
    sentence, start, end = data
    once = mask_sentence(sentence, start, end)
    twice = mask_sentence(once, start, start)
    assert twice == once


@given(sentence_and_span(), st.lists(_WORDS, min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_context_masking_hides_the_value(data, padding):
    sentence, start, end = data
    value = sentence.split()[start]
    # The masked value must not be a token that also appears elsewhere in
    # the sentence or the padding, or "hiding" it is ill-defined.
    assume(sentence.split().count(value) == 1)
    assume(value not in padding)
    assume(value != MASK_TOKEN)
    context = " ".join(padding) + " " + sentence + " trailing words"
    claim = Claim(sentence, Span(start, start), context, "c")
    masked = mask_claim(claim)
    assert value not in masked.masked_sentence.split()
    assert value not in masked.masked_context.split()
    # The rest of the context survives.
    assert masked.masked_context.endswith("trailing words")
