"""The static analyzer gate through the verification layers.

Covers the non-engine halves of the analyzer tentpole: CorrectQuery
rejecting statically invalid candidates without executing them, the
agent's querying tool returning rendered diagnostics as observations,
Algorithm 9's reconstruction validation, and the report counters.
"""

from repro.core.claims import Claim, Span
from repro.core.plausibility import assess_query, static_rejection
from repro.core.reconstruction import reconstruct
from repro.core.reports import _engine_line
from repro.agents.tools import DatabaseQueryingTool, format_tool_error
from repro.sqlengine import (
    ANALYZER_COUNTERS,
    Database,
    Table,
    reset_engine_stats,
)
from repro.sqlengine.errors import (
    EmptyResultError,
    ExecutionError,
    PlanError,
)
from repro.sqlengine.planner import STRATEGY_COUNTERS


def _db() -> Database:
    db = Database("gate")
    db.add(Table("t", ["name", "amount"],
                 [("alpha", 5), ("beta", 7), ("gamma", 7)]))
    return db


def _claim(sentence="Row alpha stores 5 units.", span=Span(3, 3)):
    return Claim(sentence, span, "ctx", "c1")


class TestAssessQueryGate:
    def test_invalid_query_rejected_without_execution(self):
        reset_engine_stats()
        assessment = assess_query(
            "SELECT missing FROM t", _claim(), _db()
        )
        assert not assessment.executable
        assert not assessment.plausible
        assert "SQLA001" in assessment.error
        snapshot = ANALYZER_COUNTERS.snapshot()
        assert snapshot["rejected_pre_execution"] == 1
        # No execution strategies fired: the engine never saw the query.
        assert STRATEGY_COUNTERS.snapshot()["interpreted_fallbacks"] == 0

    def test_shape_mismatch_short_circuits_correct_query(self):
        # Two columns can never be Definition 2.4's single cell.
        assessment = assess_query(
            "SELECT name, amount FROM t", _claim(), _db()
        )
        assert not assessment.executable
        assert "SQLA030" in assessment.error

    def test_type_mismatch_short_circuits_numeric_claim(self):
        assessment = assess_query(
            "SELECT amount > 0 FROM t", _claim(), _db()
        )
        assert not assessment.executable
        assert "SQLA031" in assessment.error

    def test_boolean_result_allowed_for_textual_claim(self):
        claim = _claim("The flag reads yes today.", Span(3, 3))
        assert not claim.is_numeric
        assessment = assess_query(
            "SELECT amount > 0 FROM t", claim, _db()
        )
        assert assessment.executable   # SQLA031 only guards numeric claims

    def test_valid_query_still_assessed_normally(self):
        assessment = assess_query(
            "SELECT amount FROM t WHERE name = 'alpha'", _claim(), _db()
        )
        assert assessment.executable
        assert assessment.plausible
        assert assessment.result == 5

    def test_analyze_false_restores_execution_path(self):
        assessment = assess_query(
            "SELECT missing FROM t", _claim(), _db(), analyze=False
        )
        # Same verdict, discovered the expensive way: by executing.
        assert not assessment.executable
        assert "SQLA" not in (assessment.error or "")

    def test_static_rejection_none_for_sound_query(self):
        assert static_rejection(
            "SELECT amount FROM t WHERE name = 'alpha'", _claim(), _db()
        ) is None


class TestQueryingToolGate:
    def test_tool_returns_rendered_diagnostics(self):
        tool = DatabaseQueryingTool(_db(), 5, "5")
        observation = tool.run("SELECT missing FROM t")
        assert observation.startswith("Error: SQLA001")
        assert tool.queries == ["SELECT missing FROM t"]
        assert tool.results == []      # never executed

    def test_tool_analyze_off_surfaces_runtime_error(self):
        tool = DatabaseQueryingTool(_db(), 5, "5", analyze=False)
        observation = tool.run("SELECT missing FROM t")
        assert observation.startswith("Error: ")
        assert "SQLA" not in observation

    def test_empty_result_observation_is_figure_4_verbatim(self):
        # Statically sound, runs, selects nothing: the analyzer must not
        # intercept the paper's load-bearing empty-result observation.
        tool = DatabaseQueryingTool(_db(), 5, "5")
        observation = tool.run(
            "SELECT amount FROM t WHERE name = 'delta'"
        )
        assert observation == "index 0 is out of bounds for axis 0 with size 0"

    def test_valid_query_keeps_feedback_format(self):
        tool = DatabaseQueryingTool(_db(), 5, "5")
        observation = tool.run("SELECT amount FROM t WHERE name = 'alpha'")
        assert observation == "[5, 'Value is correct']"


class TestFormatToolError:
    def test_empty_result_passes_verbatim(self):
        assert format_tool_error(EmptyResultError()) == (
            "index 0 is out of bounds for axis 0 with size 0"
        )

    def test_sql_errors_get_stable_prefix(self):
        assert format_tool_error(
            PlanError("no table 'x' in database 'db' (tables: t)")
        ) == "Error: no table 'x' in database 'db' (tables: t)"
        assert format_tool_error(
            ExecutionError("division by zero")
        ) == "Error: division by zero"

    def test_foreign_exceptions_reduced_to_type_name(self):
        # Interpreter-authored messages drift across Python versions;
        # only the type name enters the transcript.
        try:
            {}["missing"]
        except KeyError as error:
            assert format_tool_error(error) == "Error: KeyError"


class TestReconstructionGate:
    def test_invalid_intermediate_skipped_without_execution(self):
        reset_engine_stats()
        queries = [
            "SELECT missing FROM t",                       # static error
            "SELECT MAX(amount) FROM t",                   # -> 7
            "SELECT name FROM t WHERE amount = 7 LIMIT 1", # uses the 7
        ]
        merged = reconstruct(queries, _db())
        assert "(SELECT MAX(amount) FROM t)" in merged
        assert ANALYZER_COUNTERS.snapshot()["rejected_pre_execution"] >= 1

    def test_sound_reconstruction_unchanged_by_validation(self):
        queries = [
            "SELECT MAX(amount) FROM t",
            "SELECT name FROM t WHERE amount = 7 LIMIT 1",
        ]
        assert reconstruct(queries, _db()) == (
            "SELECT name FROM t WHERE amount = (SELECT MAX(amount) FROM t) "
            "LIMIT 1"
        )

    def test_corrupted_reconstruction_falls_back_to_final_query(self):
        # The matching constant sits in a LIMIT clause, which this
        # engine's grammar restricts to integer literals; textual
        # substitution corrupts the query, the analyzer catches it, and
        # the agent's own final query wins.
        queries = [
            "SELECT MAX(amount) FROM t",        # -> 7
            "SELECT name FROM t LIMIT 7",       # 7 not substitutable
        ]
        merged = reconstruct(queries, _db())
        assert merged == "SELECT name FROM t LIMIT 7"


class TestReportCounters:
    def test_engine_line_includes_analyzer_segment(self):
        line = _engine_line({
            "plan_cache": {"hits": 3, "misses": 1},
            "strategies": {"result_cache_hits": 0, "result_cache_misses": 2},
            "analyzer": {
                "queries_analyzed": 9,
                "rejected_pre_execution": 2,
                "warnings": 1,
            },
        })
        assert "analyzer 9 analyzed/2 rejected/1 warnings" in line

    def test_engine_line_without_analyzer_stats_unchanged(self):
        line = _engine_line({
            "plan_cache": {"hits": 0, "misses": 0},
            "strategies": {},
        })
        assert "analyzer" not in line
