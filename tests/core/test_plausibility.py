"""Tests for CorrectQuery / CorrectClaim (Section 4, Algorithm 3)."""

import pytest

from repro.core.claims import Claim, Span
from repro.core.plausibility import assess_query, validate_claim
from repro.sqlengine import Database, Table
from repro.sqlengine.errors import SqlError


@pytest.fixture()
def db():
    database = Database("plaus")
    database.add(Table(
        "drinks",
        ["country", "wine_servings"],
        [("France", 370), ("USA", 84), ("Italy", 340)],
    ))
    return database


def numeric_claim(value_text):
    sentence = f"People consume {value_text} glasses of wine."
    return Claim(sentence, Span(2, 2), sentence, "c")


def text_claim(value_text):
    sentence = f"The leading country is {value_text} according to the data."
    tokens = value_text.split()
    return Claim(sentence, Span(4, 3 + len(tokens)), sentence, "c")


class TestAssessQuery:
    def test_no_query(self, db):
        assessment = assess_query(None, numeric_claim("84"), db)
        assert not assessment.executable
        assert not assessment.plausible

    def test_unparseable_query(self, db):
        assessment = assess_query("SELECT FROM", numeric_claim("84"), db)
        assert not assessment.executable

    def test_empty_result_is_executable_not_plausible(self, db):
        assessment = assess_query(
            "SELECT wine_servings FROM drinks WHERE country = 'Spain'",
            numeric_claim("84"), db,
        )
        assert assessment.executable
        assert not assessment.plausible
        assert "out of bounds" in assessment.error

    def test_exact_result_plausible(self, db):
        assessment = assess_query(
            "SELECT wine_servings FROM drinks WHERE country = 'USA'",
            numeric_claim("84"), db,
        )
        assert assessment.plausible
        assert assessment.result == 84

    def test_same_magnitude_plausible(self, db):
        # 370 claimed vs 340 retrieved: same order of magnitude.
        assessment = assess_query(
            "SELECT wine_servings FROM drinks WHERE country = 'Italy'",
            numeric_claim("370"), db,
        )
        assert assessment.plausible

    def test_wrong_magnitude_implausible(self, db):
        assessment = assess_query(
            "SELECT SUM(wine_servings) FROM drinks",  # 794
            numeric_claim("8"), db,
        )
        assert not assessment.plausible

    def test_textual_exact_plausible(self, db):
        assessment = assess_query(
            "SELECT country FROM drinks WHERE wine_servings = 370",
            text_claim("France"), db,
        )
        assert assessment.plausible

    def test_textual_unrelated_implausible(self, db):
        assessment = assess_query(
            "SELECT country FROM drinks WHERE wine_servings = 84",
            text_claim("France"), db,
        )
        assert not assessment.plausible

    def test_numeric_claim_text_result_implausible(self, db):
        assessment = assess_query(
            "SELECT country FROM drinks WHERE wine_servings = 84",
            numeric_claim("84"), db,
        )
        assert not assessment.plausible


class TestValidateClaim:
    def test_correct_numeric(self, db):
        assert validate_claim(
            "SELECT wine_servings FROM drinks WHERE country = 'USA'",
            numeric_claim("84"), db,
        )

    def test_incorrect_numeric(self, db):
        assert not validate_claim(
            "SELECT wine_servings FROM drinks WHERE country = 'USA'",
            numeric_claim("90"), db,
        )

    def test_rounding(self, db):
        assert validate_claim(
            "SELECT AVG(wine_servings) FROM drinks",  # 264.666...
            numeric_claim("265"), db,
        )

    def test_correct_textual(self, db):
        assert validate_claim(
            "SELECT country FROM drinks WHERE wine_servings = 370",
            text_claim("France"), db,
        )

    def test_incorrect_textual(self, db):
        assert not validate_claim(
            "SELECT country FROM drinks WHERE wine_servings = 370",
            text_claim("Italy"), db,
        )

    def test_broken_query_raises(self, db):
        with pytest.raises(SqlError):
            validate_claim("SELECT nothing FROM nowhere",
                           numeric_claim("84"), db)
