"""The unified cache API: stats shape, stable keys, config, codecs."""

import pytest

from repro.cache import (
    DEFAULT_PERSIST_NAMESPACES,
    CacheBackend,
    CacheConfig,
    CacheStats,
    MemoryCacheBackend,
    SqliteCacheBackend,
    open_cache,
    stable_key,
)
from repro.llm import ChatResponse, ChatUsage
from repro.llm.cache import CHAT_RESPONSE_CODEC
from repro.sqlengine import QueryResult
from repro.sqlengine.planner import QUERY_RESULT_CODEC


class TestCacheStats:
    def test_hit_rate_excludes_bypasses(self):
        stats = CacheStats(hits=3, misses=1, bypasses=10)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_subtraction_isolates_a_window(self):
        earlier = CacheStats(hits=2, misses=1, size=5, max_size=8)
        later = CacheStats(hits=7, misses=2, size=6, max_size=8)
        window = later - earlier
        assert (window.hits, window.misses) == (5, 1)
        # Size describes the cache now, not the window's traffic.
        assert (window.size, window.max_size) == (6, 8)

    def test_addition_aggregates_two_caches(self):
        total = CacheStats(hits=1, size=2) + CacheStats(hits=2, size=3)
        assert total.hits == 3
        assert total.size == 5

    def test_to_dict_shape(self):
        rendered = CacheStats(hits=1, misses=3).to_dict()
        assert set(rendered) == {
            "hits", "misses", "lookups", "bypasses", "evictions",
            "expirations", "size", "max_size", "hit_rate",
        }
        assert rendered["hit_rate"] == 0.25


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("ns", "a", 1) == stable_key("ns", "a", 1)

    def test_namespace_and_parts_matter(self):
        baseline = stable_key("ns", "a", 1)
        assert stable_key("other", "a", 1) != baseline
        assert stable_key("ns", "a", 2) != baseline
        assert stable_key("ns", "a1") != baseline  # no concatenation tricks

    def test_distinguishes_types(self):
        assert stable_key("ns", 1) != stable_key("ns", "1")
        assert stable_key("ns", None) != stable_key("ns", "null")


class TestCacheConfig:
    def test_defaults_have_no_persistent_tier(self):
        store = CacheConfig().open()
        assert store.backend is None
        assert not store.persistent
        assert store.l2_for("llm") is None
        assert store.profile_store() is None
        assert store.stats() == {}

    def test_open_is_memoised(self):
        config = CacheConfig()
        assert config.open() is config.open()

    def test_path_enables_default_namespaces_only(self, tmp_path):
        store = open_cache(tmp_path / "l2.sqlite")
        assert store.persistent
        for namespace in DEFAULT_PERSIST_NAMESPACES:
            assert store.l2_for(namespace) is store.backend
        assert store.l2_for("sql_plan") is None
        assert store.profile_store() is None  # profiles are opt-in
        store.close()

    def test_profiles_opt_in(self, tmp_path):
        store = open_cache(tmp_path / "l2.sqlite", profiles=True)
        assert store.profile_store() is not None
        store.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(max_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(ttl_seconds=0)

    def test_backends_satisfy_the_protocol(self, tmp_path):
        assert isinstance(MemoryCacheBackend(4), CacheBackend)
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        assert isinstance(backend, CacheBackend)
        backend.close()


class TestCodecs:
    def test_chat_response_exact_round_trip(self):
        response = ChatResponse(
            text="verdict: TRUE\nbecause 0.1 + 0.2 == 0.30000000000000004",
            model="gpt-4o",
            usage=ChatUsage(prompt_tokens=123, completion_tokens=45),
            cost=0.1 + 0.2,  # a float that exposes sloppy serialisation
            latency_seconds=1.25,
        )
        decoded = CHAT_RESPONSE_CODEC.decode(
            CHAT_RESPONSE_CODEC.encode(response)
        )
        assert decoded == response

    def test_query_result_exact_round_trip(self):
        result = QueryResult(
            columns=["name", "score", "ratio"],
            rows=[("a", 1, 0.1 + 0.2), ("b", None, -3.5), ("c", True, 2.0)],
        )
        decoded = QUERY_RESULT_CODEC.decode(QUERY_RESULT_CODEC.encode(result))
        assert decoded.columns == result.columns
        assert decoded.rows == result.rows
        assert all(isinstance(row, tuple) for row in decoded.rows)
