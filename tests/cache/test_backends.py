"""Backend behaviour: L1 LRU, sqlite persistence/TTL/budget, tiering."""

import json

import pytest

from repro.cache import (
    MemoryCacheBackend,
    SqliteCacheBackend,
    TieredCache,
)


class _JsonCodec:
    def encode(self, value):
        return json.dumps(value)

    def decode(self, text):
        return json.loads(text)


class _Clock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestMemoryBackend:
    def test_lru_evicts_least_recent_across_namespaces(self):
        backend = MemoryCacheBackend(2)
        backend.put("a", "k1", 1)
        backend.put("b", "k2", 2)
        backend.get("a", "k1")            # refresh k1; k2 is least-recent
        backend.put("a", "k3", 3)
        assert backend.get("b", "k2") is None
        assert backend.get("a", "k1") == 1
        # The eviction is charged to the evicted entry's namespace.
        assert backend.stats("b").evictions == 1
        assert backend.stats("a").evictions == 0

    def test_namespaces_are_disjoint_keyspaces(self):
        backend = MemoryCacheBackend(8)
        backend.put("a", "k", "from-a")
        backend.put("b", "k", "from-b")
        assert backend.get("a", "k") == "from-a"
        assert backend.get("b", "k") == "from-b"

    def test_per_namespace_stats_and_aggregate(self):
        backend = MemoryCacheBackend(8)
        backend.put("a", "k", 1)
        backend.get("a", "k")
        backend.get("b", "missing")
        assert backend.stats("a").hits == 1
        assert backend.stats("b").misses == 1
        total = backend.stats()
        assert (total.hits, total.misses, total.size) == (1, 1, 1)

    def test_evict_one_namespace_keeps_others(self):
        backend = MemoryCacheBackend(8)
        backend.put("a", "k", 1)
        backend.put("b", "k", 2)
        backend.evict("a")
        assert backend.get("a", "k") is None
        assert backend.get("b", "k") == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoryCacheBackend(0)


class TestSqliteBackend:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "l2.sqlite"
        first = SqliteCacheBackend(path)
        first.put("llm", "key1", "value1")
        first.close()
        second = SqliteCacheBackend(path)
        assert second.get("llm", "key1") == "value1"
        assert second.stats("llm").hits == 1
        second.close()

    def test_ttl_expires_lazily(self, tmp_path):
        clock = _Clock()
        backend = SqliteCacheBackend(
            tmp_path / "l2.sqlite", ttl_seconds=60.0, clock=clock
        )
        backend.put("llm", "k", "v")
        clock.now += 59.0
        assert backend.get("llm", "k") == "v"
        clock.now += 2.0
        assert backend.get("llm", "k") is None
        stats = backend.stats("llm")
        assert stats.expirations == 1
        assert stats.misses == 1
        assert stats.size == 0              # the expired row was deleted
        backend.close()

    def test_byte_budget_drops_oldest_first(self, tmp_path):
        clock = _Clock()
        backend = SqliteCacheBackend(
            tmp_path / "l2.sqlite", max_bytes=250, clock=clock
        )
        for index in range(5):
            clock.now += 1.0
            backend.put("llm", f"k{index}", "x" * 100)
        # 5 * 100 bytes against a 250-byte budget: the first puts go.
        assert backend.get("llm", "k0") is None
        assert backend.get("llm", "k4") == "x" * 100
        assert backend.stats("llm").evictions >= 3
        backend.close()

    def test_corrupt_file_is_quarantined(self, tmp_path):
        path = tmp_path / "l2.sqlite"
        path.write_bytes(b"garbage, not sqlite" * 32)
        backend = SqliteCacheBackend(path)
        assert backend.enabled
        assert (tmp_path / "l2.sqlite.corrupt").exists()
        backend.put("llm", "k", "v")
        assert backend.get("llm", "k") == "v"
        backend.close()

    def test_disabled_backend_degrades_to_misses(self, tmp_path):
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        backend.put("llm", "k", "v")
        backend.close()                     # simulate mid-flight failure
        assert not backend.enabled
        assert backend.get("llm", "k") is None
        backend.put("llm", "k2", "v2")      # silently dropped, no crash
        assert backend.namespaces() == []


class TestTieredCache:
    def test_l2_requires_codec(self, tmp_path):
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        with pytest.raises(ValueError):
            TieredCache("ns", 8, l2=backend)
        backend.close()

    def test_l2_hit_promotes_into_l1(self, tmp_path):
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        writer = TieredCache("ns", 8, l2=backend, codec=_JsonCodec())
        writer.put(("local", 1), {"answer": 42}, stable_key="stable-1")
        # A second facade (fresh L1, same L2) — the restart picture.
        reader = TieredCache("ns", 8, l2=backend, codec=_JsonCodec())
        assert reader.get(("local", 1), stable_key="stable-1") == {
            "answer": 42
        }
        tiers = reader.tier_stats()
        assert tiers["l1"]["misses"] == 1
        assert tiers["l2"]["hits"] >= 1
        # Promoted: the next read is pure L1.
        reader.get(("local", 1), stable_key="stable-1")
        assert reader.tier_stats()["l1"]["hits"] == 1
        assert reader.stats().hits == 2
        backend.close()

    def test_no_stable_key_stays_l1_only(self, tmp_path):
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        cache = TieredCache("ns", 8, l2=backend, codec=_JsonCodec())
        cache.put("k", [1, 2, 3])
        assert backend.stats("ns").size == 0
        fresh = TieredCache("ns", 8, l2=backend, codec=_JsonCodec())
        assert fresh.get("k") is None
        backend.close()

    def test_undecodable_l2_payload_is_a_miss(self, tmp_path):
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        backend.put("ns", "stable-1", "{not json")
        cache = TieredCache("ns", 8, l2=backend, codec=_JsonCodec())
        assert cache.get("k", stable_key="stable-1") is None
        assert cache.stats().misses == 1
        backend.close()

    def test_bypasses_counted_without_touching_tiers(self):
        cache = TieredCache("ns", 8)
        cache.note_bypass()
        stats = cache.stats()
        assert stats.bypasses == 1
        assert stats.lookups == 0

    def test_clear_leaves_shared_l2_alone(self, tmp_path):
        backend = SqliteCacheBackend(tmp_path / "l2.sqlite")
        cache = TieredCache("ns", 8, l2=backend, codec=_JsonCodec())
        cache.put("k", "v", stable_key="stable-1")
        cache.clear()
        assert len(cache) == 0
        assert backend.stats("ns").size == 1
        backend.close()
