"""The warm-start profile store and its blend into scheduler priors."""

from repro.cache import (
    MethodObservation,
    ProfileStore,
    SqliteCacheBackend,
    warm_profiles,
)
from repro.core import MethodProfile


def _store(tmp_path):
    return ProfileStore(SqliteCacheBackend(tmp_path / "l2.sqlite"))


class TestProfileStore:
    def test_observations_aggregate_across_runs(self, tmp_path):
        store = _store(tmp_path)
        store.record("one_shot", trials=10, successes=7,
                     cost=0.5, latency_seconds=2.0)
        store.record("one_shot", trials=10, successes=9,
                     cost=0.3, latency_seconds=1.0)
        store.record("agent", trials=4, successes=4,
                     cost=1.0, latency_seconds=8.0)
        observed = store.observations()
        assert set(observed) == {"agent", "one_shot"}
        one_shot = observed["one_shot"]
        assert one_shot.trials == 20
        assert one_shot.successes == 16
        assert one_shot.accuracy == 0.8
        assert one_shot.cost_per_try == (0.5 + 0.3) / 20
        assert one_shot.latency_per_try == 3.0 / 20

    def test_zero_trial_records_are_dropped(self, tmp_path):
        store = _store(tmp_path)
        store.record("noop", trials=0, successes=0,
                     cost=0.0, latency_seconds=0.0)
        assert store.observations() == {}

    def test_clear(self, tmp_path):
        store = _store(tmp_path)
        store.record("m", trials=1, successes=1,
                     cost=0.1, latency_seconds=0.1)
        store.clear()
        assert store.observations() == {}

    def test_accuracy_is_clamped(self):
        observation = MethodObservation(
            method="m", trials=2, successes=5,
            cost=0.0, latency_seconds=0.0,
        )
        assert observation.accuracy == 1.0


class TestWarmProfiles:
    def test_enough_trials_overrides_the_prior(self, tmp_path):
        store = _store(tmp_path)
        store.record("one_shot", trials=50, successes=40,
                     cost=5.0, latency_seconds=25.0)
        priors = [
            MethodProfile("one_shot", accuracy=0.6, cost=0.2),
            MethodProfile("agent", accuracy=0.9, cost=1.5),
        ]
        warmed = warm_profiles(store, priors, min_trials=20)
        assert [p.name for p in warmed] == ["one_shot", "agent"]
        assert warmed[0].accuracy == 0.8
        assert warmed[0].cost == 0.1
        assert warmed[0].latency_seconds == 0.5
        assert warmed[1] is priors[1]       # no data: prior kept

    def test_small_samples_keep_priors(self, tmp_path):
        store = _store(tmp_path)
        store.record("one_shot", trials=3, successes=0,
                     cost=0.1, latency_seconds=0.1)
        priors = [MethodProfile("one_shot", accuracy=0.6, cost=0.2)]
        warmed = warm_profiles(store, priors, min_trials=20)
        assert warmed == priors

    def test_results_are_valid_scheduler_input(self, tmp_path):
        store = _store(tmp_path)
        store.record("m", trials=100, successes=100,
                     cost=0.0, latency_seconds=0.0)
        warmed = warm_profiles(
            store, [MethodProfile("m", accuracy=0.5, cost=0.5)],
            min_trials=1,
        )
        # MethodProfile validates accuracy/cost on construction; landing
        # here at all means the blend produced legal values.
        assert 0.0 <= warmed[0].accuracy <= 1.0
        assert warmed[0].cost >= 0.0
