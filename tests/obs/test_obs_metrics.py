"""Unit tests for the metrics registry and the stats collectors."""

import pytest

from repro.llm import CostLedger
from repro.obs.metrics import (
    Metric,
    MetricsRegistry,
    cache_metrics,
    engine_metrics,
    ledger_metrics,
    merge_metrics,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("cedar_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("cedar_depth")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc(0.5)
        assert gauge.value == 3.5

    def test_histogram_buckets_and_overflow(self):
        histogram = MetricsRegistry().histogram(
            "cedar_latency_seconds", bounds=[0.1, 1.0]
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(99.0)
        metric = histogram.collect()
        ((labels, value),) = metric.samples
        assert labels == ()
        assert value["counts"] == [1, 1, 1]
        assert value["count"] == 3
        assert value["sum"] == pytest.approx(99.55)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("cedar_bad", bounds=[2.0, 1.0])

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("cedar_x_total") is registry.counter(
            "cedar_x_total"
        )

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("cedar_x_total")
        with pytest.raises(TypeError):
            registry.gauge("cedar_x_total")


class TestRegistry:
    def test_collect_merges_collector_families(self):
        registry = MetricsRegistry()
        registry.counter("cedar_jobs_total").inc(4)
        registry.register_collector(
            lambda: [Metric.counter("cedar_cache_hits_total", 7,
                                    labels={"cache": "a"})]
        )
        registry.register_collector(
            lambda: [Metric.counter("cedar_cache_hits_total", 9,
                                    labels={"cache": "b"})]
        )
        by_name = {m.name: m for m in registry.collect()}
        assert by_name["cedar_jobs_total"].samples[0][1] == 4
        hits = by_name["cedar_cache_hits_total"]
        assert len(hits.samples) == 2
        assert {dict(labels)["cache"] for labels, _ in hits.samples} \
            == {"a", "b"}

    def test_snapshot_collapses_unlabelled_singletons(self):
        registry = MetricsRegistry()
        registry.counter("cedar_jobs_total").inc(2)
        registry.register_collector(
            lambda: [Metric.gauge("cedar_depth", 3,
                                  labels={"queue": "main"})]
        )
        snapshot = registry.snapshot()
        assert snapshot["cedar_jobs_total"] == 2
        assert snapshot["cedar_depth"] == {"queue=main": 3}

    def test_merge_preserves_first_seen_order(self):
        merged = merge_metrics([
            Metric.counter("b_total", 1),
            Metric.counter("a_total", 1),
            Metric.counter("b_total", 2, labels={"x": "y"}),
        ])
        assert [m.name for m in merged] == ["b_total", "a_total"]
        assert len(merged[0].samples) == 2


class TestCollectors:
    def test_ledger_metrics_names_and_values(self):
        ledger = CostLedger()
        metrics = {m.name for m in ledger_metrics(ledger)}
        assert "cedar_llm_calls_total" in metrics
        assert "cedar_llm_retry_backoff_seconds_total" in metrics
        assert "cedar_sql_executions_total" in metrics

    def test_cache_metrics_accept_dicts_and_objects(self):
        class Stats:
            hits, misses, bypasses, evictions, size = 5, 2, 1, 0, 9

        for stats in (Stats(), {"hits": 5, "misses": 2, "bypasses": 1,
                                "evictions": 0, "size": 9}):
            by_name = {m.name: m for m in cache_metrics("llm", stats)}
            ((labels, hits),) = by_name["cedar_cache_hits_total"].samples
            assert dict(labels) == {"cache": "llm"}
            assert hits == 5
            assert by_name["cedar_cache_entries"].samples[0][1] == 9

    def test_engine_metrics_render_strategies_and_analyzer(self):
        stats = {
            "plan_cache": {"hits": 3, "misses": 1, "size": 4},
            "strategies": {"hash_joins": 2},
            "analyzer": {"queries_analyzed": 6},
            "result_cache": {"hits": 1, "misses": 1},
        }
        metrics = engine_metrics(stats)
        names = {m.name for m in metrics}
        assert "cedar_sql_strategy_total" in names
        assert "cedar_sql_analyzer_total" in names
        caches = {
            dict(labels).get("cache")
            for metric in metrics if metric.name == "cedar_cache_hits_total"
            for labels, _ in metric.samples
        }
        assert caches == {"sql_plan", "sql_result"}

    def test_engine_metrics_default_to_live_stats(self):
        # No stats argument: pulls repro.sqlengine.engine_stats().
        names = {m.name for m in engine_metrics()}
        assert "cedar_sql_strategy_total" in names
