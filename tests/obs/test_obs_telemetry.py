"""TelemetryWindow: windowed deltas, keyed groups, eviction, metrics."""

import pytest

from repro.obs.telemetry import TelemetryWindow, hit_rate


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_counters_report_total_delta_and_rate():
    clock = FakeClock()
    window = TelemetryWindow(window_seconds=60.0, clock=clock)
    totals = {"done": 0}
    window.register_counters("jobs", lambda: dict(totals))
    window.sample()
    totals["done"] = 10
    clock.advance(5.0)
    snapshot = window.snapshot()
    stat = snapshot["counters"]["jobs_done"]
    assert stat == {"total": 10.0, "delta": 10.0, "per_second": 2.0}
    assert snapshot["window_seconds"] == 5.0
    assert snapshot["samples"] == 2


def test_single_sample_window_reports_zero_rate():
    window = TelemetryWindow(clock=FakeClock())
    window.register_counters("jobs", lambda: {"done": 7})
    snapshot = window.snapshot()
    stat = snapshot["counters"]["jobs_done"]
    assert stat["total"] == 7.0
    assert stat["delta"] == 0.0
    assert stat["per_second"] == 0.0


def test_keyed_group_fans_out_per_key():
    clock = FakeClock()
    window = TelemetryWindow(clock=clock)
    spend = {"sql": 0.0}
    window.register_counters("method_cost_usd", lambda: dict(spend),
                             keyed_by="method")
    window.sample()
    spend["sql"] = 0.5
    spend["agent"] = 2.0       # method appears mid-window
    clock.advance(10.0)
    snapshot = window.snapshot()
    keyed = snapshot["keyed"]["method_cost_usd"]
    assert keyed["sql"] == {"total": 0.5, "delta": 0.5,
                            "per_second": 0.05}
    assert keyed["agent"]["delta"] == 2.0  # baseline 0 for new keys


def test_gauges_are_live_not_windowed():
    value = {"depth": 3}
    window = TelemetryWindow(clock=FakeClock())
    window.register_gauges(lambda: dict(value))
    assert window.snapshot()["gauges"]["depth"] == 3.0
    value["depth"] = 9
    assert window.snapshot()["gauges"]["depth"] == 9.0


def test_derived_hit_rate_over_deltas():
    clock = FakeClock()
    window = TelemetryWindow(clock=clock)
    cache = {"hits": 0, "misses": 0}
    window.register_counters("cache", lambda: dict(cache))
    window.register_derived(
        "cache_hit_rate", hit_rate("cache_hits", "cache_misses"),
    )
    # Idle window: no traffic must mean 0.0, not a ZeroDivisionError.
    assert window.snapshot()["derived"]["cache_hit_rate"] == 0.0
    cache["hits"], cache["misses"] = 3, 1
    clock.advance(1.0)
    assert window.snapshot()["derived"]["cache_hit_rate"] == 0.75


def test_eviction_keeps_window_and_at_least_two_samples():
    clock = FakeClock()
    window = TelemetryWindow(window_seconds=10.0, clock=clock)
    totals = {"n": 0}
    window.register_counters("c", lambda: dict(totals))
    for _ in range(6):
        totals["n"] += 1
        window.sample()
        clock.advance(4.0)
    # Samples older than the 10s window fall off the front…
    snapshot = window.snapshot()
    assert snapshot["window_seconds"] <= 10.0 + 4.0
    # …but even after a long idle gap two samples always survive.
    clock.advance(1000.0)
    snapshot = window.snapshot()
    assert snapshot["samples"] >= 2
    assert snapshot["counters"]["c_n"]["total"] == 6.0


def test_max_samples_caps_the_ring():
    clock = FakeClock()
    window = TelemetryWindow(window_seconds=1e9, max_samples=4,
                             clock=clock)
    window.register_counters("c", lambda: {"n": 1})
    for _ in range(10):
        window.sample()
        clock.advance(1.0)
    assert window.snapshot()["samples"] <= 5   # 4 retained + this read


def test_broken_provider_is_skipped_not_fatal():
    window = TelemetryWindow(clock=FakeClock())

    def broken():
        raise RuntimeError("provider down")

    window.register_counters("bad", broken)
    window.register_counters("good", lambda: {"ok": 1})
    window.register_gauges(broken)
    window.register_derived("bad_ratio", broken)
    snapshot = window.snapshot()
    assert snapshot["counters"] == {
        "good_ok": {"total": 1.0, "delta": 0.0, "per_second": 0.0},
    }
    assert snapshot["gauges"] == {}
    assert snapshot["derived"] == {}


def test_metrics_families_and_labels():
    clock = FakeClock()
    window = TelemetryWindow(clock=clock)
    window.register_gauges(lambda: {"queue_depth": 2})
    window.register_counters("jobs", lambda: {"done": 4})
    window.register_counters("method_cost_usd", lambda: {"sql": 1.0},
                             keyed_by="method")
    window.register_derived("ratio", lambda deltas: 0.5)
    window.sample()
    clock.advance(2.0)
    by_name = {}
    for metric in window.metrics():
        by_name.setdefault(metric.name, []).append(metric)
    assert "cedar_telemetry_window_seconds" in by_name
    assert "cedar_telemetry_queue_depth" in by_name
    assert "cedar_telemetry_jobs_done_per_second" in by_name
    assert "cedar_telemetry_ratio" in by_name
    keyed = by_name["cedar_telemetry_method_cost_usd_per_second"]
    labelsets = [labels for labels, _value in keyed[0].samples]
    assert labelsets == [(("method", "sql"),)]


def test_constructor_validation():
    with pytest.raises(ValueError):
        TelemetryWindow(window_seconds=0)
    with pytest.raises(ValueError):
        TelemetryWindow(max_samples=1)
