"""Unit tests for the Chrome-trace, ndjson, and Prometheus exporters."""

import io
import json

from repro.obs.export import (
    to_chrome_trace,
    to_ndjson,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import Metric, MetricsRegistry
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self, start=1.0, step=0.25):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def small_tracer():
    tracer = Tracer(trace_id="t-1", clock=FakeClock())
    with tracer.span("doc-1", "document", doc_id="doc-1"):
        with tracer.span("stage", "stage"):
            tracer.record("sql", "sql_execute", 1.1, 1.2, rows=2)
    with tracer.span("doc-2", "document", doc_id="doc-2"):
        pass
    return tracer


class TestChromeTrace:
    def test_structure_and_units(self):
        payload = to_chrome_trace(small_tracer(), process_name="cedar-test")
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert payload["displayTimeUnit"] == "ms"
        assert metadata[0]["args"]["name"] == "cedar-test"
        # One lane per root plus the process-name record.
        assert len(metadata) == 3
        assert len(complete) == 4
        # Timestamps are microseconds relative to the earliest span.
        root = next(e for e in complete if e["name"] == "doc-1")
        assert root["ts"] == 0.0
        sql = next(e for e in complete if e["name"] == "sql")
        assert sql["dur"] == 0.1 * 1e6
        assert sql["cat"] == "sql_execute"
        assert sql["args"]["rows"] == 2
        assert sql["args"]["status"] == "ok"

    def test_roots_get_distinct_lanes(self):
        events = to_chrome_trace(small_tracer())["traceEvents"]
        lanes = {e["name"]: e["tid"] for e in events if e["ph"] == "X"
                 and e["cat"] == "document"}
        assert lanes["doc-1"] != lanes["doc-2"]

    def test_accepts_span_list_and_writes_to_file(self):
        tracer = small_tracer()
        buffer = io.StringIO()
        write_chrome_trace(list(tracer.roots), buffer)
        parsed = json.loads(buffer.getvalue())
        assert parsed == to_chrome_trace(list(tracer.roots))

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(small_tracer(), str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestNdjson:
    def test_one_record_per_span_with_correlation_ids(self):
        lines = to_ndjson(small_tracer()).splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 4
        assert all(r["trace_id"] == "t-1" for r in records)
        by_id = {r["span_id"]: r for r in records}
        assert by_id["1"]["parent_id"] is None
        assert by_id["1.1"]["parent_id"] == "1"
        assert by_id["1.1.1"]["parent_id"] == "1.1"
        assert by_id["2"]["name"] == "doc-2"
        assert by_id["1.1.1"]["duration_seconds"] == 0.1

    def test_trace_id_override(self):
        record = json.loads(
            to_ndjson(small_tracer(), trace_id="other").splitlines()[0]
        )
        assert record["trace_id"] == "other"


class TestPrometheus:
    def test_counter_gauge_and_help_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("cedar_jobs_total", "Jobs processed").inc(3)
        registry.gauge("cedar_queue_depth", "Queue depth").set(2)
        text = to_prometheus(registry)
        assert "# HELP cedar_jobs_total Jobs processed" in text
        assert "# TYPE cedar_jobs_total counter" in text
        assert "cedar_jobs_total 3" in text
        assert "# TYPE cedar_queue_depth gauge" in text
        assert "cedar_queue_depth 2" in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "cedar_latency_seconds", bounds=[0.1, 1.0]
        )
        for value in (0.05, 0.5, 99.0):
            histogram.observe(value)
        lines = to_prometheus(registry).splitlines()
        buckets = [line for line in lines if "_bucket" in line]
        assert buckets == [
            'cedar_latency_seconds_bucket{le="0.1"} 1',
            'cedar_latency_seconds_bucket{le="1"} 2',
            'cedar_latency_seconds_bucket{le="+Inf"} 3',
        ]
        assert "cedar_latency_seconds_count 3" in lines
        assert any(line.startswith("cedar_latency_seconds_sum ")
                   for line in lines)

    def test_labels_are_escaped(self):
        text = to_prometheus([
            Metric.counter("cedar_x_total", 1,
                           labels={"q": 'say "hi"\nback\\slash'}),
        ])
        assert r'q="say \"hi\"\nback\\slash"' in text

    def test_valid_exposition_shape(self):
        # Every non-comment line is `name{labels} value` with a numeric
        # value — the contract a Prometheus scraper relies on.
        registry = MetricsRegistry()
        registry.counter("cedar_a_total").inc()
        registry.histogram("cedar_b_seconds", bounds=[1.0]).observe(0.5)
        registry.register_collector(
            lambda: [Metric.gauge("cedar_c", 1.5, labels={"k": "v"})]
        )
        for line in to_prometheus(registry).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part.startswith("cedar_")
            float(value_part)  # must parse
