"""Structured logging: schema, sinks, correlation ids, isolation."""

import io
import json

import pytest

from repro.obs.logging import (
    FIELD_ORDER,
    FileSink,
    LogRecord,
    Logger,
    RingBufferSink,
    add_sink,
    configure_logging,
    get_logger,
    remove_sink,
    reset_logging,
)
from repro.obs.tracer import Tracer, set_default_tracer


@pytest.fixture(autouse=True)
def _clean_logging_state():
    reset_logging()
    yield
    reset_logging()


# -- LogRecord schema ---------------------------------------------------------


def test_record_round_trips_through_json():
    record = LogRecord(
        ts=12.3456789, level="warning", component="svc",
        event="thing_happened", trace_id="trace-000001",
        span="document:0", job_id="job-7",
        fields={"zeta": 1, "alpha": "x"},
    )
    rebuilt = LogRecord.from_json(record.to_json())
    assert rebuilt.to_dict() == record.to_dict()
    assert rebuilt.level == "warning"
    assert rebuilt.job_id == "job-7"
    assert rebuilt.fields == {"zeta": 1, "alpha": "x"}


def test_record_key_order_is_canonical_then_sorted_extras():
    record = LogRecord(
        ts=1.0, level="info", component="c", event="e",
        trace_id="t", span="s", job_id="j",
        fields={"zzz": 1, "aaa": 2, "mmm": 3},
    )
    keys = list(record.to_dict())
    assert keys == list(FIELD_ORDER) + ["aaa", "mmm", "zzz"]
    # json.dumps preserves that insertion order on the wire too.
    assert list(json.loads(record.to_json())) == keys


def test_none_correlation_ids_are_omitted():
    record = LogRecord(ts=1.0, level="info", component="c", event="e")
    rendered = record.to_dict()
    assert "trace_id" not in rendered
    assert "span" not in rendered
    assert "job_id" not in rendered
    assert LogRecord.from_dict(rendered).trace_id is None


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        LogRecord(ts=0.0, level="fatal", component="c", event="e")


# -- sinks --------------------------------------------------------------------


def test_ring_buffer_keeps_only_the_last_capacity_records():
    sink = RingBufferSink(capacity=3)
    add_sink(sink)
    log = get_logger("test")
    for index in range(5):
        log.info("tick", n=index)
    assert len(sink) == 3
    assert [r.fields["n"] for r in sink.tail()] == [2, 3, 4]
    assert [r.fields["n"] for r in sink.tail(2)] == [3, 4]
    lines = sink.to_ndjson(2).strip().splitlines()
    assert [json.loads(line)["n"] for line in lines] == [3, 4]


def test_file_sink_appends_ndjson(tmp_path):
    path = tmp_path / "svc.log"
    sink = FileSink(str(path))
    add_sink(sink)
    log = get_logger("test")
    log.info("first", n=1)
    log.error("second", n=2)
    sink.close()
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    parsed = [LogRecord.from_json(line) for line in lines]
    assert [r.event for r in parsed] == ["first", "second"]
    assert parsed[1].level == "error"


def test_broken_sink_never_raises_into_the_caller():
    class Broken:
        def emit(self, record):
            raise RuntimeError("sink down")

    healthy = RingBufferSink()
    add_sink(Broken())
    add_sink(healthy)
    get_logger("test").info("survives")
    assert [r.event for r in healthy.tail()] == ["survives"]


def test_level_threshold_filters_and_no_sinks_is_a_noop():
    get_logger("test").info("dropped_without_sinks")  # must not raise
    sink = RingBufferSink()
    add_sink(sink)
    configure_logging(level="warning")
    log = get_logger("test")
    log.debug("too_low")
    log.info("still_too_low")
    log.warning("kept")
    log.error("also_kept")
    assert [r.event for r in sink.tail()] == ["kept", "also_kept"]
    remove_sink(sink)
    log.error("after_removal")
    assert len(sink) == 2


# -- correlation ids ----------------------------------------------------------


def test_records_carry_ambient_trace_and_span():
    sink = RingBufferSink()
    add_sink(sink)
    tracer = Tracer(trace_id="trace-test")
    previous = set_default_tracer(tracer)
    try:
        with tracer.span("document:0", "document"):
            with tracer.span("claim:1", "claim"):
                get_logger("test").info("inside")
        get_logger("test").info("outside")
    finally:
        set_default_tracer(previous)
    inside, outside = sink.tail()
    assert inside.trace_id == "trace-test"
    assert inside.span == "claim:1"          # innermost open span's name
    assert outside.trace_id == "trace-test"
    assert outside.span is None              # nothing open any more


def test_explicit_trace_id_wins_over_ambient():
    sink = RingBufferSink()
    add_sink(sink)
    log = get_logger("test")
    log.info("no_tracer_minted_id", trace_id="trace-000042")
    tracer = Tracer(trace_id="trace-ambient")
    previous = set_default_tracer(tracer)
    try:
        log.info("explicit_beats_ambient", trace_id="trace-000043")
    finally:
        set_default_tracer(previous)
    minted, explicit = sink.tail()
    assert minted.trace_id == "trace-000042"
    assert minted.fields == {}                # not duplicated in extras
    assert explicit.trace_id == "trace-000043"


def test_bound_job_id_lands_in_the_dedicated_field():
    sink = RingBufferSink()
    add_sink(sink)
    log = get_logger("test").bind(job_id="job-42", shard=3)
    log.info("bound")
    log.info("overridden", job_id="job-43")
    first, second = sink.tail()
    assert first.job_id == "job-42"
    assert first.fields == {"shard": 3}       # job_id not duplicated
    assert second.job_id == "job-43"


def test_injected_clock_stamps_records():
    sink = RingBufferSink()
    add_sink(sink)
    ticks = iter([100.5, 101.25])
    configure_logging(clock=lambda: next(ticks))
    log = Logger("test")
    log.info("a")
    log.info("b")
    assert [r.ts for r in sink.tail()] == [100.5, 101.25]
