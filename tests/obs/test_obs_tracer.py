"""Unit tests for the deterministic span tree tracer."""

import threading

import pytest

from repro.obs.tracer import (
    MAX_ATTRIBUTE_LENGTH,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_default_tracer,
    strip_times,
)


class FakeClock:
    """Deterministic injected clock: each call advances by ``step``."""

    def __init__(self, start=100.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanStructure:
    def test_nesting_and_structural_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("doc-1", "document"):
            with tracer.span("stage-a", "stage"):
                with tracer.span("call", "llm_call"):
                    pass
            with tracer.span("stage-b", "stage"):
                pass
        tree = tracer.tree()
        assert len(tree) == 1
        root = tree[0]
        assert root["span_id"] == "1"
        assert [c["span_id"] for c in root["children"]] == ["1.1", "1.2"]
        assert root["children"][0]["children"][0]["span_id"] == "1.1.1"

    def test_ids_are_parent_scoped_sequence_numbers_not_clock(self):
        # Two tracers with wildly different clocks produce identical
        # timeless trees — identity is purely structural.
        def build(clock):
            tracer = Tracer(clock=clock)
            with tracer.span("doc", "document", doc_id="d1"):
                with tracer.span("m", "method"):
                    pass
            return tracer.tree(include_times=False)

        assert build(FakeClock(0.0, 1.0)) == build(FakeClock(9e9, 777.0))

    def test_record_attaches_pretimed_leaf(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("doc", "document"):
            span = tracer.record("sql", "sql_execute", 1.0, 2.5, rows=3)
        assert span.start == 1.0 and span.end == 2.5
        assert span.duration == 1.5
        assert tracer.tree()[0]["children"][0]["attributes"]["rows"] == 3

    def test_exception_marks_span_errored(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doc", "document"):
                with tracer.span("m", "method"):
                    raise RuntimeError("boom")
        tree = tracer.tree()
        assert tree[0]["status"] == "error"
        method = tree[0]["children"][0]
        assert method["status"] == "error"
        assert method["attributes"]["error"] == "RuntimeError"

    def test_annotate_open_and_latest_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("doc", "document"):
            tracer.annotate(claims=4)
            with tracer.span("call", "llm_call"):
                pass
            tracer.annotate_latest(cache="hit")
        root = tracer.tree()[0]
        assert root["attributes"]["claims"] == 4
        assert root["children"][0]["attributes"]["cache"] == "hit"

    def test_long_attributes_are_clipped(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("doc", "document", sql="x" * 1000):
            tracer.annotate(note="y" * 1000)
        attributes = tracer.tree()[0]["attributes"]
        assert len(attributes["sql"]) == MAX_ATTRIBUTE_LENGTH
        assert len(attributes["note"]) == MAX_ATTRIBUTE_LENGTH
        assert attributes["sql"].endswith("…")

    def test_injected_clock_is_the_only_time_source(self):
        clock = FakeClock(start=10.0, step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("doc", "document"):
            pass
        root = tracer.tree()[0]
        assert root["start"] == 10.0
        assert root["end"] == 11.0

    def test_strip_times_matches_timeless_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("doc", "document"):
            with tracer.span("m", "method"):
                pass
        assert strip_times(tracer.tree()) == tracer.tree(
            include_times=False
        )


class TestCaptureAbsorb:
    def test_absorb_in_submission_order_ignores_completion_order(self):
        tracer = Tracer(clock=FakeClock())
        deltas = [None, None]
        barrier = threading.Barrier(2)

        def work(index):
            with tracer.capture() as delta:
                barrier.wait()
                with tracer.span(f"doc-{index}", "document"):
                    pass
            deltas[index] = delta

        threads = [threading.Thread(target=work, args=(i,))
                   for i in (1, 0)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for delta in deltas:           # submission order, not finish order
            tracer.absorb(delta)
        assert [r["name"] for r in tracer.tree()] == ["doc-0", "doc-1"]

    def test_capture_activates_tracer_on_worker_thread(self):
        tracer = Tracer(clock=FakeClock())
        seen = []

        def work():
            with tracer.capture():
                seen.append(current_tracer() is tracer)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert seen == [True]
        assert current_tracer() is NULL_TRACER

    def test_absorb_under_open_span_grafts_as_children(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.capture() as delta:
            with tracer.span("inner", "document"):
                pass
        with tracer.span("outer", "document"):
            tracer.absorb(delta)
        root = tracer.tree()[0]
        assert root["name"] == "outer"
        assert [c["name"] for c in root["children"]] == ["inner"]


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_activated_wins_over_default(self):
        default = Tracer(trace_id="default", clock=FakeClock())
        active = Tracer(trace_id="active", clock=FakeClock())
        previous = set_default_tracer(default)
        try:
            assert current_tracer() is default
            with active.activated():
                assert current_tracer() is active
            assert current_tracer() is default
        finally:
            set_default_tracer(previous)

    def test_set_default_returns_previous(self):
        tracer = Tracer(clock=FakeClock())
        assert set_default_tracer(tracer) is None
        assert set_default_tracer(None) is tracer


class TestNullTracer:
    def test_records_nothing_and_costs_no_state(self):
        null = NullTracer()
        with null.span("doc", "document", doc_id="d"):
            null.annotate(ignored=True)
        null.record("sql", "sql_execute", 0.0, 1.0)
        null.annotate_latest(ignored=True)
        with null.capture() as delta:
            pass
        null.absorb(delta)
        assert null.tree() == []
        assert null.span_count() == 0
        assert not null.enabled

    def test_shared_singleton_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert isinstance(NULL_TRACER, Tracer)

    def test_span_yields_a_span_object(self):
        # Instrumented code does `with tracer.span(...) as s: s.set(...)`
        # unconditionally; the null handle must tolerate that.
        with NULL_TRACER.span("doc", "document") as span:
            assert isinstance(span, Span)
            span.set(anything="goes")


class TestIntrospection:
    def test_span_count_and_len(self):
        tracer = Tracer(clock=FakeClock())
        for name in ("a", "b"):
            with tracer.span(name, "document"):
                with tracer.span("m", "method"):
                    pass
        assert len(tracer) == 2
        assert tracer.span_count() == 4

    def test_drain_roots_with_predicate(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("keep", "queue_wait"):
            pass
        with tracer.span("take", "document"):
            pass
        drained = tracer.drain_roots(lambda s: s.kind == "document")
        assert [s.name for s in drained] == ["take"]
        assert [r["name"] for r in tracer.tree()] == ["keep"]
        assert tracer.drain_roots() and tracer.tree() == []
