"""Tests for the MiniSimLM embedding substitute."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import (
    MiniSimLM,
    cosine_similarity,
    default_model,
    text_similarity,
)

_texts = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Zs")),
    min_size=1,
    max_size=40,
)


class TestEncoder:
    def test_unit_norm(self):
        vector = MiniSimLM().encode("Malaysia Airlines")
        assert math.isclose(sum(v * v for v in vector), 1.0, rel_tol=1e-9)

    def test_empty_string_is_zero_vector(self):
        vector = MiniSimLM().encode("")
        assert all(v == 0.0 for v in vector)

    def test_dimension(self):
        assert len(MiniSimLM(dimension=128).encode("x")) == 128

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            MiniSimLM(dimension=2)

    def test_cache_returns_same_object(self):
        model = MiniSimLM()
        assert model.encode("abc") is model.encode("abc")

    def test_default_model_shared(self):
        assert default_model() is default_model()


class TestSimilarity:
    def test_identical(self):
        assert text_similarity("France", "France") == pytest.approx(1.0)

    def test_case_insensitive(self):
        assert text_similarity("FRANCE", "france") == pytest.approx(1.0)

    def test_punctuation_normalised(self):
        assert text_similarity("U.S.A", "U S A") == pytest.approx(1.0)

    def test_unrelated_near_zero(self):
        assert text_similarity("wine", "beer") < 0.2

    def test_typo_scores_high(self):
        assert text_similarity("Lewis Hamilton", "Lewis Hamiltn") > 0.6

    def test_partial_name_intermediate(self):
        partial = text_similarity("Lewis Hamilton", "Hamilton")
        assert 0.4 < partial < 0.9

    def test_thresholds_separate_cases(self):
        # The 0.8 correctness bar: exact passes, different entity fails.
        assert text_similarity("Barcelona", "Barcelona") >= 0.8
        assert text_similarity("Barcelona", "Liverpool") < 0.8

    def test_mismatched_dimensions_raise(self):
        with pytest.raises(ValueError):
            cosine_similarity([1.0], [1.0, 0.0])

    def test_zero_vector_similarity(self):
        assert cosine_similarity([0.0, 0.0], [1.0, 0.0]) == 0.0


@given(_texts)
@settings(max_examples=100, deadline=None)
def test_self_similarity_is_one(text):
    model = default_model()
    if model.encode(text) == [0.0] * model.dimension:
        return  # whitespace-only normalises to nothing
    assert model.similarity(text, text) == pytest.approx(1.0, abs=1e-9)


@given(_texts, _texts)
@settings(max_examples=100, deadline=None)
def test_similarity_symmetric(left, right):
    assert text_similarity(left, right) == pytest.approx(
        text_similarity(right, left), abs=1e-9
    )


@given(_texts, _texts)
@settings(max_examples=100, deadline=None)
def test_similarity_bounded(left, right):
    assert 0.0 <= text_similarity(left, right) <= 1.0
