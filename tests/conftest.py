"""Shared test configuration: hermetic process-wide counters.

Several subsystems keep process-wide state on purpose — the SQL
engine's shared plan cache, :class:`StrategyCounters`, the analyzer's
counters and memo cache, and the tracing layer's default tracer. Tests
that assert on those counters would otherwise see whatever the
previously-run test left behind, making outcomes depend on collection
order. The autouse fixture below zeroes all of it around every test.
"""

import pytest

from repro.obs.logging import reset_logging
from repro.obs.tracer import set_default_tracer
from repro.sqlengine import reset_engine_stats


@pytest.fixture(autouse=True)
def _fresh_process_counters():
    """Zero engine/analyzer counters, clear the ambient tracer, and
    drop any log sinks the previous test left installed."""
    reset_engine_stats()
    reset_logging()
    previous = set_default_tracer(None)
    yield
    set_default_tracer(previous)
    reset_logging()
    reset_engine_stats()
