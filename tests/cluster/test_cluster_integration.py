"""Router + real worker processes: routing, failure, drain, determinism.

These tests spawn genuine ``python -m repro.cluster.worker`` processes
(the "tiny" dataset profile keeps them cheap) behind a shared router
running on a background event loop, and drive it over its public
surfaces — ``submit``, the HTTP front end, kill -9, drain.
"""

import asyncio
import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterConfig, ClusterRouter

_TAG = re.compile(r"^r\d+/")


def _strip_tag(claim_id):
    """Drop the per-process request tag (``r00001/``) from a claim id."""
    return _TAG.sub("", claim_id)


class ClusterHarness:
    """A router on a background event loop, driven synchronously."""

    def __init__(self, **config):
        config.setdefault("workers", 2)
        config.setdefault("profile", "tiny")
        config.setdefault("spawn_timeout", 120.0)
        self.config = ClusterConfig(**config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True,
        )
        self.thread.start()
        self.router = self.run(self._start())
        self.host, self.port = self.run(self.router.serve_http(port=0))

    async def _start(self):
        return await ClusterRouter(self.config).start()

    def run(self, coroutine, timeout=180):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop,
        ).result(timeout)

    def submit(self, **payload):
        return self.run(self.router.submit(payload))

    def http(self, path, data=None, timeout=120):
        request = urllib.request.Request(
            f"http://{self.host}:{self.port}{path}",
            data=json.dumps(data).encode() if data is not None else None,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read().decode(), \
                    dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode(), dict(error.headers)

    def events(self, job_id, wait=True, timeout=120):
        status, body, _ = self.http(
            f"/v1/jobs/{job_id}/events?wait={'1' if wait else '0'}"
            f"&timeout={timeout}"
        )
        assert status == 200, body
        return [json.loads(line) for line in body.strip().splitlines()]

    def wait_for(self, predicate, timeout=60, message="condition"):
        async def _poll():
            for _ in range(int(timeout / 0.05)):
                if predicate():
                    return True
                await asyncio.sleep(0.05)
            return predicate()

        assert self.run(_poll()), f"timed out waiting for {message}"

    def close(self):
        try:
            self.run(self.router.stop())
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=10)
            self.loop.close()


@pytest.fixture(scope="module")
def cluster():
    harness = ClusterHarness(workers=2)
    yield harness
    harness.close()


# -- routing -----------------------------------------------------------------


def test_submit_runs_to_job_done_over_http(cluster):
    status, body, _ = cluster.http(
        "/v1/verify",
        {"dataset": "aggchecker", "document": 0, "client_id": "t1"},
    )
    assert status == 202, body
    accepted = json.loads(body)
    assert accepted["job_id"].startswith(f"w{accepted['worker']}g")
    events = cluster.events(accepted["job_id"])
    kinds = [event["event"] for event in events]
    assert kinds[0] == "job_queued"
    assert kinds[-1] == "job_done"
    assert all(event["job_id"] == accepted["job_id"] for event in events)


def test_same_fingerprint_routes_to_same_live_shard(cluster):
    workers = set()
    for attempt in range(3):
        status, body = cluster.submit(
            dataset="aggchecker", document=1, client_id=f"route-{attempt}",
        )
        assert status == 202, body
        workers.add(body["worker"])
        cluster.events(body["job_id"])  # let it finish
    assert len(workers) == 1
    # A different document may land elsewhere, but is equally sticky.
    status, body = cluster.submit(
        dataset="tabfact", document=0, client_id="route-x",
    )
    assert status == 202
    first = body["worker"]
    cluster.events(body["job_id"])
    status, body = cluster.submit(
        dataset="tabfact", document=0, client_id="route-y",
    )
    assert status == 202
    assert body["worker"] == first
    cluster.events(body["job_id"])


def test_unknown_dataset_and_bad_index_rejected(cluster):
    status, body = cluster.submit(dataset="nope", document=0)
    assert status == 400 and "unknown dataset" in body["error"]
    status, body = cluster.submit(dataset="aggchecker", document=99)
    assert status == 400 and "out of range" in body["error"]


# -- admission control -------------------------------------------------------


def test_client_limit_aggregates_across_shards(cluster):
    router = cluster.router
    client = "greedy-client"
    router._client_open[client] = router.config.per_client_limit
    try:
        status, body = cluster.submit(
            dataset="aggchecker", document=0, client_id=client,
        )
        assert status == 429
        assert body["rejected"]["code"] == "client_limit"
        assert body["retry_after_seconds"] >= 1
    finally:
        router._client_open.pop(client, None)


def test_queue_full_returns_429_with_retry_after(cluster):
    router = cluster.router
    # Pretend the target shard is saturated with open jobs.
    fingerprints = cluster.run(router.routing.fingerprints("aggchecker"))
    target = router.ring.route(fingerprints[0])
    saved = router._worker_open[target]
    router._worker_open[target] = {
        f"fake-{index}" for index in range(router.config.max_shard_inflight)
    }
    try:
        status, body, headers = cluster.http(
            "/v1/verify",
            {"dataset": "aggchecker", "document": 0, "client_id": "qf"},
        )
        assert status == 429
        assert json.loads(body)["rejected"]["code"] == "queue_full"
        assert int(headers["Retry-After"]) >= 1
    finally:
        router._worker_open[target] = saved


def test_draining_rejects_with_503_and_readyz_flips(cluster):
    router = cluster.router
    router.draining = True
    try:
        status, body, headers = cluster.http(
            "/v1/verify",
            {"dataset": "aggchecker", "document": 0, "client_id": "dr"},
        )
        assert status == 503
        assert json.loads(body)["rejected"]["code"] == "draining"
        assert "Retry-After" in headers
        status, body, _ = cluster.http("/v1/readyz")
        assert status == 503
        assert json.loads(body)["ready"] is False
        # Liveness is unaffected: the router process is still up.
        status, _, _ = cluster.http("/v1/healthz")
        assert status == 200
    finally:
        router.draining = False
    status, body, _ = cluster.http("/v1/readyz")
    assert status == 200
    assert json.loads(body)["ready"] is True


# -- aggregation -------------------------------------------------------------


def test_stats_and_metrics_aggregate_all_shards(cluster):
    status, body, _ = cluster.http("/v1/stats")
    assert status == 200
    stats = json.loads(body)
    assert set(stats["workers"]) == {"0", "1"}
    assert stats["cluster"]["workers"] == 2
    assert stats["jobs"]["submitted"] >= stats["jobs"]["completed"] >= 1
    status, text, _ = cluster.http("/metrics")
    assert status == 200
    assert 'cedar_cluster_jobs_routed_total{worker="0"}' in text
    assert 'cedar_cluster_jobs_routed_total{worker="1"}' in text
    assert "cedar_cluster_workers 2" in text
    # Shard registries arrive relabelled, one family for all shards.
    assert 'worker="0"' in text and 'worker="1"' in text


# -- failure: kill a worker ---------------------------------------------------


def test_killed_worker_yields_worker_lost_and_respawn(cluster):
    router = cluster.router
    # Park jobs on both shards (slow nothing: tiny jobs finish fast, so
    # open a follow stream first and race the kill against completion —
    # either outcome must terminate the stream, never wedge it).
    status, body = cluster.submit(
        dataset="aggchecker", document=0, client_id="kill-test",
    )
    assert status == 202, body
    victim = body["worker"]
    job_id = body["job_id"]
    restarts_before = router.supervisor.total_restarts

    stream_events = []
    stream_done = threading.Event()

    def _follow():
        stream_events.extend(cluster.events(job_id, wait=True, timeout=120))
        stream_done.set()

    follower = threading.Thread(target=_follow, daemon=True)
    follower.start()

    slot = router.supervisor.slots[victim]
    generation_before = slot.generation
    slot.process.kill()

    # The stream must end (terminal event), not hang: zero wedged streams.
    assert stream_done.wait(timeout=60), "event stream wedged after kill"
    assert stream_events, "stream ended with no events"
    terminal = stream_events[-1]["event"]
    assert terminal in {"job_done", "worker_lost"}
    record = router.records[job_id]
    assert record.terminal
    if terminal == "worker_lost":
        assert stream_events[-1]["worker"] == victim
        assert stream_events[-1]["error"]

    # The supervisor respawns the slot into the same shard identity.
    cluster.wait_for(
        lambda: slot.alive and slot.generation == generation_before + 1,
        timeout=120, message="worker respawn",
    )
    assert router.supervisor.total_restarts == restarts_before + 1
    cluster.wait_for(
        lambda: sorted(router.supervisor.live_workers()) == [0, 1],
        timeout=120, message="full fleet",
    )

    # And the shard serves the same fingerprints again.
    status, body = cluster.submit(
        dataset="aggchecker", document=0, client_id="kill-test-2",
    )
    assert status == 202, body
    assert body["worker"] == victim
    assert f"g{generation_before + 1}-" in body["job_id"]
    events = cluster.events(body["job_id"])
    assert events[-1]["event"] == "job_done"


# -- drain: zero dropped jobs -------------------------------------------------


def test_drain_completes_every_accepted_job():
    harness = ClusterHarness(workers=2, latency_scale=0.05)
    try:
        accepted = []
        for index in range(6):
            status, body = harness.submit(
                dataset="aggchecker",
                document=index % 2,
                client_id=f"drain-{index}",
            )
            assert status == 202, body
            accepted.append(body["job_id"])
        harness.run(harness.router.drain(timeout=120))
        for job_id in accepted:
            record = harness.router.records[job_id]
            assert record.terminal, f"{job_id} still open after drain"
            assert record.events[-1]["event"] == "job_done", (
                job_id, [event["event"] for event in record.events],
            )
        # Draining cluster refuses new work.
        status, body = harness.submit(
            dataset="aggchecker", document=0, client_id="late",
        )
        assert status == 503
        assert body["rejected"]["code"] == "draining"
    finally:
        harness.close()


# -- determinism vs the single-process service --------------------------------


def _verdict_view(events):
    """The order-independent, tag-independent essence of a job's run."""
    verdicts = sorted(
        (
            _strip_tag(event["claim_id"]),
            event["verdict"],
            event["verified_by"],
            event["fallback"],
        )
        for event in events
        if event["event"] == "claim_verdict"
    )
    done = [event for event in events if event["event"] == "job_done"]
    assert len(done) == 1
    return {
        "verdicts": verdicts,
        "claims": done[0]["claims"],
        "flagged": done[0]["flagged"],
    }


def test_cluster_verdicts_match_single_process(cluster):
    from repro.cluster.worker import dataset_builders
    from repro.service import ServiceConfig, VerificationService
    from repro.service.http import ServiceApp

    single = VerificationService(ServiceConfig(workers=2)).start()
    try:
        app = ServiceApp(
            single, datasets=dataset_builders("tiny"), seed=0,
        )
        for dataset, document in [("aggchecker", 0), ("aggchecker", 1),
                                  ("tabfact", 1)]:
            status, body = app.submit({
                "dataset": dataset, "document": document,
                "client_id": "single",
            })
            assert status == 202, body
            handle = single.job(body["job_id"])
            local = [event.to_dict()
                     for event in handle.events(timeout=None)]

            status, body = cluster.submit(
                dataset=dataset, document=document,
                client_id=f"det-{dataset}-{document}",
            )
            assert status == 202, body
            remote = cluster.events(body["job_id"])
            assert _verdict_view(remote) == _verdict_view(local), (
                dataset, document,
            )
    finally:
        single.shutdown(drain=False)
