"""Wire framing: round-trips, truncation, limits, metric snapshots."""

import asyncio
import io
import struct

import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    metrics_from_wire,
    metrics_to_wire,
    read_frame,
    read_frame_async,
)
from repro.obs.metrics import Metric


def test_round_trip_single_frame():
    message = {"id": 7, "op": "submit", "payload": {"dataset": "aggchecker"}}
    assert read_frame(io.BytesIO(encode_frame(message))) == message


def test_round_trip_many_frames_back_to_back():
    messages = [{"id": index, "value": "x" * index} for index in range(20)]
    stream = io.BytesIO(b"".join(encode_frame(m) for m in messages))
    decoded = []
    while True:
        frame = read_frame(stream)
        if frame is None:
            break
        decoded.append(frame)
    assert decoded == messages


def test_clean_eof_returns_none():
    assert read_frame(io.BytesIO(b"")) is None


def test_truncated_length_raises():
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(b"\x00\x00"))


def test_truncated_body_raises():
    frame = encode_frame({"id": 1})
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(frame[:-2]))


def test_oversized_length_prefix_rejected_without_allocation():
    header = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(header))


def test_non_object_body_rejected():
    body = b"[1, 2, 3]"
    stream = io.BytesIO(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError):
        read_frame(stream)


def test_async_reader_matches_blocking_reader():
    messages = [{"id": 1, "op": "hello"}, {"id": 2, "event": {"x": 1}}]
    wire = b"".join(encode_frame(m) for m in messages)

    async def _read_all():
        reader = asyncio.StreamReader()
        reader.feed_data(wire)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame_async(reader)
            if frame is None:
                break
            frames.append(frame)
        return frames

    assert asyncio.run(_read_all()) == messages


def test_async_reader_raises_on_truncation():
    async def _read():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"id": 1})[:-1])
        reader.feed_eof()
        await read_frame_async(reader)

    with pytest.raises(ProtocolError):
        asyncio.run(_read())


def test_metrics_survive_the_wire_with_worker_label():
    metrics = [
        Metric.counter("cedar_jobs_total", 3, "jobs",
                       {"state": "completed"}),
        Metric.gauge("cedar_queue_depth", 2, "depth"),
        Metric.histogram("cedar_latency_seconds", [0.1, 1.0],
                         [1, 2, 0], 1.4, 3, "latency"),
    ]
    wire = metrics_to_wire(metrics)
    rebuilt = metrics_from_wire(wire, {"worker": "1"})
    assert [m.name for m in rebuilt] == [m.name for m in metrics]
    assert [m.type for m in rebuilt] == [m.type for m in metrics]
    for metric in rebuilt:
        for labels, _value in metric.samples:
            assert ("worker", "1") in labels
    # Original labels survive alongside the added one.
    (labels, value), = rebuilt[0].samples
    assert ("state", "completed") in labels
    assert value == 3
    # Histogram values survive structurally.
    (_, histogram_value), = rebuilt[2].samples
    assert histogram_value["counts"] == [1, 2, 0]
    assert histogram_value["count"] == 3


def test_metrics_wire_is_json_safe():
    import json

    metrics = [Metric.counter("cedar_x_total", 1)]
    assert json.loads(json.dumps(metrics_to_wire(metrics)))


def test_encode_rejects_oversized_message():
    with pytest.raises(ProtocolError):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})
