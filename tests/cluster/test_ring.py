"""Consistent-hash ring: stability, minimal remapping, balance."""

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing


def _keys(count):
    return [f"fingerprint-{index:04d}" for index in range(count)]


def test_routing_is_deterministic():
    ring = HashRing(range(4))
    again = HashRing(range(4))
    for key in _keys(200):
        assert ring.route(key) == again.route(key)


def test_same_key_same_worker_across_ring_rebuilds():
    # The ring is rebuilt from worker ids alone (no runtime state), so
    # a router restart routes every fingerprint identically.
    ring = HashRing([0, 1, 2])
    mapping = {key: ring.route(key) for key in _keys(500)}
    rebuilt = HashRing([0, 1, 2])
    assert mapping == {key: rebuilt.route(key) for key in _keys(500)}


def test_route_respects_live_subset():
    ring = HashRing(range(4))
    for key in _keys(100):
        assert ring.route(key, live=[2]) == 2
    assert ring.route("anything", live=[]) is None


def test_worker_loss_remaps_only_dead_workers_keys():
    ring = HashRing(range(4))
    keys = _keys(1000)
    before = {key: ring.route(key) for key in keys}
    live = [0, 1, 3]  # worker 2 died
    moved = {
        key for key in keys
        if ring.route(key, live=live) != before[key]
    }
    # Exactly the dead worker's keys move; every other key stays put.
    assert moved == {key for key, worker in before.items() if worker == 2}
    # And they move onto live workers only.
    for key in moved:
        assert ring.route(key, live=live) in live


def test_respawn_restores_the_exact_prior_routing():
    ring = HashRing(range(4))
    keys = _keys(500)
    before = {key: ring.route(key) for key in keys}
    # Kill worker 1, then bring it back: routing snaps back exactly.
    assert {key: ring.route(key, live=[0, 2, 3]) for key in keys} != before
    assert {key: ring.route(key, live=[0, 1, 2, 3]) for key in keys} == before


def test_virtual_nodes_spread_load_roughly_evenly():
    workers = 4
    ring = HashRing(range(workers), replicas=DEFAULT_REPLICAS)
    counts = {worker: 0 for worker in range(workers)}
    for key in _keys(4000):
        counts[ring.route(key)] += 1
    for worker, count in counts.items():
        # Perfect balance is 1000 each; 64 virtual nodes keep every
        # shard within a loose 2x band (deterministic, not flaky).
        assert 400 <= count <= 2000, (worker, counts)


def test_assignment_matches_route():
    ring = HashRing(range(3))
    keys = _keys(30)
    assignment = ring.assignment(keys)
    assert sorted(assignment) == sorted(keys)
    for key, worker in assignment.items():
        assert ring.route(key) == worker
    # Routing restricted to a live subset drops nothing.
    partial = ring.assignment(keys, live=[0, 2])
    assert sorted(partial) == sorted(keys)
    assert set(partial.values()) <= {0, 2}


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing([0], replicas=0)
