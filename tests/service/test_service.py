"""Integration tests for the verification service.

The acceptance contract of the subsystem:

* concurrent jobs well past the queue depth all complete, with verdicts
  identical to calling ``repro.verify`` directly;
* over-limit submissions are rejected with a structured reason
  (queue_full / client_limit / conflict / draining), never an exception
  from deep inside the executor;
* a cancelled job stops emitting events;
* graceful shutdown drains accepted jobs with no lost or duplicated
  ledger entries;
* jobs arriving together coalesce into one verifier batch.

Deterministic tests use a *never-started* service: submissions queue up,
and ``shutdown(drain=True)`` runs them inline on the calling thread.
"""

import threading
import time

import pytest

from repro.core import ScheduleEntry, VerifierConfig, verify
from repro.datasets import build_aggchecker
from repro.experiments import build_cedar
from repro.llm import CostLedger
from repro.service import (
    AdmissionError,
    ClaimVerdict,
    JobCancelled,
    JobDone,
    JobQueued,
    JobStarted,
    REASON_CLIENT_LIMIT,
    REASON_CONFLICT,
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    ServiceConfig,
    StageStarted,
    VerificationService,
    clone_document,
)


def make_bundle():
    return build_aggchecker(document_count=3, total_claims=12)


def make_service(bundle, seed=0, **config_kwargs):
    """A service plus a deterministic all-temperature-0 schedule.

    The schedule's methods share the service ledger; single-try stages
    with sample harvesting off keep every call at temperature 0 (the
    sample re-pass would re-attempt claims at retry temperature, and
    those draws are independent across jobs by Assumption 1). With that
    pinned, verdicts are a pure function of the seed no matter how jobs
    are interleaved or batched.
    """
    config_kwargs.setdefault("use_samples", False)
    ledger = CostLedger()
    service = VerificationService(ServiceConfig(ledger=ledger,
                                                **config_kwargs))
    system = build_cedar(bundle, seed=seed,
                         config=VerifierConfig(ledger=ledger))
    schedule = [ScheduleEntry(method, 1) for method in system.methods[:3]]
    return service, schedule


def baseline_verdicts(bundle, seed=0):
    """Per-claim verdicts from a direct ``repro.verify`` call."""
    system = build_cedar(bundle, seed=seed)
    schedule = [ScheduleEntry(method, 1) for method in system.methods[:3]]
    run = verify(bundle.documents, schedule=schedule,
                 config=VerifierConfig(use_samples=False))
    assert run is not None
    return {
        claim.claim_id: (claim.correct, claim.query)
        for document in bundle.documents
        for claim in document.claims
    }


class TestConcurrentAcceptance:
    def test_sixteen_jobs_through_a_depth_eight_queue(self):
        bundle = make_bundle()
        expected = baseline_verdicts(bundle)

        service, schedule = make_service(
            bundle, max_queue_depth=8, per_client_limit=4,
            max_batch_jobs=4, batch_window=0.001, workers=2,
        )
        service.start()
        handles = [None] * 16
        errors = []

        def submitter(index):
            document = clone_document(
                bundle.documents[index % 3], f"t{index:02d}"
            )
            while True:
                try:
                    handles[index] = service.submit(
                        document, schedule, client_id=f"client-{index}"
                    )
                    return
                except AdmissionError as error:
                    if error.reason.code != REASON_QUEUE_FULL:
                        errors.append(error)
                        return
                    time.sleep(0.005)  # back off and resubmit, as told

        threads = [threading.Thread(target=submitter, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        try:
            assert errors == []
            assert all(handle is not None for handle in handles)
            for handle in handles:
                assert handle.wait(timeout=30)
                assert handle.state == "completed"
        finally:
            service.shutdown(drain=True)

        # Every clone's verdicts match the direct verify() baseline.
        for handle in handles:
            run = handle.result()
            for document in run.documents:
                for claim in document.claims:
                    original_id = claim.claim_id.split("/", 1)[1]
                    assert (claim.correct, claim.query) == \
                        expected[original_id], claim.claim_id

        # And the streams saw the whole lifecycle.
        events = handles[0].events_snapshot()
        kinds = [type(event) for event in events]
        assert kinds[0] is JobQueued
        assert JobStarted in kinds and StageStarted in kinds
        first_run = handles[0].result()
        assert sum(1 for k in kinds if k is ClaimVerdict) == \
            len(first_run.documents[0].claims)
        assert type(events[-1]) is JobDone

    def test_two_dispatchers_share_one_batch_key_safely(self):
        # Eight jobs against one database all carry the same batch key,
        # so with max_batch_jobs=2 two dispatchers repeatedly race for
        # the same verifier. The per-verifier mutex must serialise them:
        # no job's documents may be skipped or fed another batch's
        # observer, and every verdict must match the direct baseline.
        bundle = make_bundle()
        expected = baseline_verdicts(bundle)
        service, schedule = make_service(
            bundle, dispatchers=2, max_batch_jobs=2, max_queue_depth=16,
            workers=2,
        )
        service.start()
        handles = [
            service.submit(clone_document(bundle.documents[0], f"p{i:02d}"),
                           schedule, client_id=f"client-{i}")
            for i in range(8)
        ]
        try:
            for handle in handles:
                assert handle.wait(timeout=30)
                assert handle.state == "completed", handle.error
        finally:
            service.shutdown(drain=True)
        for handle in handles:
            run = handle.result()
            for document in run.documents:
                for claim in document.claims:
                    original_id = claim.claim_id.split("/", 1)[1]
                    assert (claim.correct, claim.query) == \
                        expected[original_id], claim.claim_id

    def test_streamed_verdicts_match_final_reports(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        handle = service.submit(
            clone_document(bundle.documents[0], "s"), schedule
        )
        service.shutdown(drain=True)
        verdicts = {event.claim_id: event.verdict
                    for event in handle.events_snapshot()
                    if isinstance(event, ClaimVerdict)}
        run = handle.result()
        claims = run.documents[0].claims
        assert len(verdicts) == len(claims)
        for claim in claims:
            expected = "correct" if claim.correct else "incorrect"
            assert verdicts[claim.claim_id] == expected


class TestAdmissionControl:
    def test_queue_full_rejection(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle, max_queue_depth=2)
        for index in range(2):
            service.submit(clone_document(bundle.documents[0], f"q{index}"),
                           schedule)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(clone_document(bundle.documents[0], "q2"),
                           schedule)
        assert excinfo.value.reason.code == REASON_QUEUE_FULL
        assert service.stats().jobs["rejected"] == 1
        service.shutdown(drain=False)

    def test_per_client_limit_rejection(self):
        bundle = make_bundle()
        service, schedule = make_service(
            bundle, max_queue_depth=8, per_client_limit=1
        )
        service.submit(clone_document(bundle.documents[0], "a0"), schedule,
                       client_id="alice")
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(clone_document(bundle.documents[0], "a1"),
                           schedule, client_id="alice")
        assert excinfo.value.reason.code == REASON_CLIENT_LIMIT
        # Another client still gets in.
        service.submit(clone_document(bundle.documents[0], "b0"), schedule,
                       client_id="bob")
        service.shutdown(drain=False)

    def test_conflicting_claim_ids_rejected(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        document = clone_document(bundle.documents[0], "dup")
        service.submit(document, schedule)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(document, schedule)  # same claim ids, in flight
        assert excinfo.value.reason.code == REASON_CONFLICT
        service.shutdown(drain=False)

    def test_conflicting_doc_ids_rejected(self):
        # Distinct claim ids but a shared doc id must still be refused:
        # doc ids key the observer maps and the ledger's doc tags.
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        first = clone_document(bundle.documents[0], "doc-a")
        second = clone_document(bundle.documents[0], "doc-b")
        second.doc_id = first.doc_id
        service.submit(first, schedule)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(second, schedule)
        assert excinfo.value.reason.code == REASON_CONFLICT
        service.shutdown(drain=False)

    def test_duplicate_doc_ids_within_a_submission_rejected(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        first = clone_document(bundle.documents[0], "twin-a")
        second = clone_document(bundle.documents[0], "twin-b")
        second.doc_id = first.doc_id
        with pytest.raises(AdmissionError) as excinfo:
            service.submit([first, second], schedule)
        assert excinfo.value.reason.code == REASON_CONFLICT
        service.shutdown(drain=False)

    def test_draining_service_rejects_submissions(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        service.shutdown(drain=True)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(clone_document(bundle.documents[0], "late"),
                           schedule)
        assert excinfo.value.reason.code == REASON_DRAINING

    def test_claim_ids_released_after_completion(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        document = clone_document(bundle.documents[0], "again")
        service.submit(document, schedule)
        # Inline drain completes the job without ending the service's
        # accounting of it; resubmitting the same ids must now pass
        # admission (on a fresh, non-draining service).
        fresh, fresh_schedule = make_service(bundle)
        handle = fresh.submit(document, fresh_schedule)
        fresh.cancel(handle.job_id)
        resubmitted = fresh.submit(document, fresh_schedule)
        assert resubmitted.job_id != handle.job_id
        fresh.shutdown(drain=False)
        service.shutdown(drain=False)


class TestCancellation:
    def test_cancelled_queued_job_stops_emitting(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        victim = service.submit(clone_document(bundle.documents[0], "v"),
                                schedule)
        survivor = service.submit(clone_document(bundle.documents[1], "s"),
                                  schedule)
        assert victim.cancel() is True
        assert victim.cancel() is False  # second cancel loses
        service.shutdown(drain=True)

        events = victim.events_snapshot()
        assert type(events[-1]) is JobCancelled
        assert not any(isinstance(e, (JobStarted, StageStarted, ClaimVerdict))
                       for e in events)
        assert victim.state == "cancelled"
        # The events iterator terminates at the terminal event.
        assert [type(e) for e in victim.events(timeout=1)][-1] is JobCancelled
        # The other job ran to completion.
        assert survivor.state == "completed"
        assert service.stats().jobs["cancelled"] == 1

    def test_cancelled_job_result_raises(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        handle = service.submit(clone_document(bundle.documents[0], "c"),
                                schedule)
        handle.cancel()
        service.shutdown(drain=True)
        with pytest.raises(RuntimeError):
            handle.result(timeout=1)

    def test_cancel_refused_after_completion(self):
        # A terminal job must refuse cancellation: its stream is closed
        # by the (forced) JobDone and no JobCancelled may follow it.
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        handle = service.submit(clone_document(bundle.documents[0], "done"),
                                schedule)
        service.shutdown(drain=True)
        assert handle.state == "completed"
        assert handle.cancel() is False
        assert handle.state == "completed"
        events = handle.events_snapshot()
        assert type(events[-1]) is JobDone
        assert not any(isinstance(e, JobCancelled) for e in events)


class TestDrainAccounting:
    def test_drain_loses_and_duplicates_nothing(self):
        bundle = make_bundle()
        # Cache off: every model call lands in the ledger exactly once,
        # so the entry stream is directly comparable to a plain run.
        service, schedule = make_service(bundle, cache_size=0)
        clones = [clone_document(bundle.documents[index % 3], f"d{index}")
                  for index in range(6)]
        handles = [service.submit(clone, schedule) for clone in clones]
        service.shutdown(drain=True)
        assert all(handle.state == "completed" for handle in handles)

        # Baseline: the same six documents through the plain facade.
        system = build_cedar(bundle, seed=0)
        baseline_schedule = [ScheduleEntry(method, 1)
                             for method in system.methods[:3]]
        baseline = [clone_document(bundle.documents[index % 3], f"d{index}")
                    for index in range(6)]
        verify(baseline, schedule=baseline_schedule,
               config=VerifierConfig(use_samples=False))
        expected = system.ledger.totals()

        got = service.ledger.totals()
        assert got.calls == expected.calls
        assert got.cost == pytest.approx(expected.cost)
        # Per-job spend partitions the ledger exactly: no call is billed
        # to two jobs, none is dropped.
        per_job = [
            next(e for e in handle.events_snapshot()
                 if isinstance(e, JobDone)).spend
            for handle in handles
        ]
        assert sum(spend["llm_calls"] for spend in per_job) == got.calls
        assert sum(spend["cost_usd"] for spend in per_job) == \
            pytest.approx(got.cost, abs=1e-5)


class TestBatching:
    def test_jobs_sharing_a_database_coalesce(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle, max_batch_jobs=4)
        handles = [
            service.submit(clone_document(bundle.documents[0], f"b{index}"),
                           schedule)
            for index in range(4)
        ]
        service.shutdown(drain=True)
        stats = service.stats()
        assert stats.batches == {"count": 1, "jobs": 4, "mean_size": 4.0,
                                 "max_size": 4}
        for handle in handles:
            started = next(e for e in handle.events_snapshot()
                           if isinstance(e, JobStarted))
            assert started.batch_jobs == 4

    def test_different_databases_do_not_coalesce(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle, max_batch_jobs=4)
        for index in range(3):
            service.submit(
                clone_document(bundle.documents[index], f"n{index}"),
                schedule,
            )
        service.shutdown(drain=True)
        assert service.stats().batches["count"] == 3
        assert service.stats().batches["max_size"] == 1

    def test_priority_orders_inline_drain(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle, max_batch_jobs=1)
        low = service.submit(clone_document(bundle.documents[0], "lo"),
                             schedule, priority=5)
        high = service.submit(clone_document(bundle.documents[1], "hi"),
                              schedule, priority=-5)
        service.shutdown(drain=True)
        batch_of = {
            handle.job_id: next(e for e in handle.events_snapshot()
                                if isinstance(e, JobStarted)).batch_id
            for handle in (low, high)
        }
        assert batch_of[high.job_id] < batch_of[low.job_id]


class TestStats:
    def test_stats_snapshot_shape(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle, cache_size=64)
        service.submit(clone_document(bundle.documents[0], "st"), schedule)
        service.shutdown(drain=True)
        stats = service.stats().to_dict()
        assert stats["queue_depth"] == 0
        assert stats["draining"] is True
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["completed"] == 1
        assert stats["ledger"]["calls"] > 0
        assert stats["cache"]["lookups"] > 0
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p95_seconds"] >= stats["latency"]["p50_seconds"]

    def test_events_serialise_to_json_lines(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        handle = service.submit(clone_document(bundle.documents[0], "js"),
                                schedule)
        service.shutdown(drain=True)
        import json
        for event in handle.events_snapshot():
            payload = json.loads(event.to_json())
            assert payload["event"] == type(event).kind
            assert payload["job_id"] == handle.job_id
