"""Unit tests for the service's queue, admission types, and histogram."""

import threading

import pytest

from repro.service import (
    AdmissionError,
    BoundedJobQueue,
    LatencyHistogram,
    RejectionReason,
)
from repro.service.queue import REASON_QUEUE_FULL


class TestBoundedJobQueue:
    def test_fifo_within_equal_priority(self):
        queue = BoundedJobQueue(8)
        for name in ("a", "b", "c"):
            queue.offer(name)
        assert [queue.pop(0) for _ in range(3)] == ["a", "b", "c"]

    def test_lower_priority_number_pops_first(self):
        queue = BoundedJobQueue(8)
        queue.offer("low", priority=5)
        queue.offer("high", priority=-1)
        queue.offer("mid", priority=0)
        assert [queue.pop(0) for _ in range(3)] == ["high", "mid", "low"]

    def test_full_queue_rejects_with_structured_reason(self):
        queue = BoundedJobQueue(2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(AdmissionError) as excinfo:
            queue.offer("c")
        assert excinfo.value.reason.code == REASON_QUEUE_FULL
        assert isinstance(excinfo.value.reason, RejectionReason)
        assert excinfo.value.reason.to_dict()["code"] == REASON_QUEUE_FULL
        # Rejection is non-destructive: draining frees a slot again.
        assert queue.pop(0) == "a"
        queue.offer("c")
        assert len(queue) == 2

    def test_pop_timeout_returns_none(self):
        queue = BoundedJobQueue(2)
        assert queue.pop(timeout=0) is None
        assert queue.pop(timeout=0.01) is None

    def test_pop_wakes_on_offer_from_other_thread(self):
        queue = BoundedJobQueue(2)
        result = []
        thread = threading.Thread(
            target=lambda: result.append(queue.pop(timeout=5.0))
        )
        thread.start()
        queue.offer("x")
        thread.join(timeout=5.0)
        assert result == ["x"]

    def test_pop_matching_takes_only_matches_in_priority_order(self):
        queue = BoundedJobQueue(8)
        queue.offer("a1")
        queue.offer("b1")
        queue.offer("a2", priority=-1)
        queue.offer("b2")
        taken = queue.pop_matching(lambda item: item.startswith("a"), 5)
        assert taken == ["a2", "a1"]
        # Non-matches keep their order.
        assert [queue.pop(0), queue.pop(0)] == ["b1", "b2"]

    def test_pop_matching_respects_limit(self):
        queue = BoundedJobQueue(8)
        for name in ("a1", "a2", "a3"):
            queue.offer(name)
        assert queue.pop_matching(lambda item: True, 2) == ["a1", "a2"]
        assert len(queue) == 1

    def test_remove_is_identity_based(self):
        queue = BoundedJobQueue(8)
        first, twin = "job", "job"[:]  # equal strings, possibly interned
        box_a, box_b = [first], [twin]
        queue.offer(box_a)
        queue.offer(box_b)
        assert queue.remove(box_b) is True
        assert queue.remove(box_b) is False
        assert queue.pop(0) is box_a


class TestLatencyHistogram:
    def test_quantiles_of_known_distribution(self):
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.record(0.010)
        for _ in range(10):
            histogram.record(1.0)
        # p50 falls in the bucket holding the 10 ms samples; p95 in the
        # 1 s bucket. Bucket upper bounds are powers of two over 1 ms.
        assert 0.010 <= histogram.quantile(0.5) <= 0.016
        assert 1.0 <= histogram.quantile(0.95) <= 1.024
        assert histogram.count == 100

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p95_seconds"] == 0.0

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram(first_bound=0.001, factor=2.0, buckets=3)
        histogram.record(50.0)   # way past the last bound (4 ms)
        assert histogram.quantile(0.95) == 50.0
        assert histogram.snapshot()["max_seconds"] == 50.0

    def test_snapshot_mean(self):
        histogram = LatencyHistogram()
        histogram.record(0.1)
        histogram.record(0.3)
        assert histogram.snapshot()["mean_seconds"] == pytest.approx(0.2)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_snapshot_exposes_bucket_bounds_and_counts(self):
        histogram = LatencyHistogram(first_bound=0.001, factor=2.0,
                                     buckets=4)
        histogram.record(0.0005)   # first bucket (≤1 ms)
        histogram.record(0.003)    # third bucket (≤4 ms)
        histogram.record(99.0)     # overflow
        buckets = histogram.snapshot()["buckets"]
        assert buckets["bounds"] == [0.001, 0.002, 0.004, 0.008]
        # One count per bound plus the trailing overflow bucket.
        assert buckets["counts"] == [1, 0, 1, 0, 1]
        assert sum(buckets["counts"]) == histogram.count

    def test_overflow_bucket_lands_in_final_count(self):
        histogram = LatencyHistogram(first_bound=0.001, factor=2.0,
                                     buckets=3)
        histogram.record(50.0)
        counts = histogram.snapshot()["buckets"]["counts"]
        assert counts == [0, 0, 0, 1]

    def test_quantiles_are_monotone_in_q(self):
        histogram = LatencyHistogram()
        for value in (0.002, 0.002, 0.015, 0.3, 0.3, 0.9, 7.0, 120.0):
            histogram.record(value)
        quantiles = [histogram.quantile(q / 20) for q in range(21)]
        assert quantiles == sorted(quantiles)

    def test_quantile_extremes(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        histogram.record(2.0)
        # q=0 reports from the lowest occupied bucket, q=1 the maximum.
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)
        assert histogram.quantile(1.0) == pytest.approx(2.0, rel=0.05)

    def test_snapshot_sum_seconds(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        histogram.record(0.75)
        assert histogram.snapshot()["sum_seconds"] == pytest.approx(1.0)
