"""Drain-on-signal semantics: first signal drains, second kills."""

import os
import signal
import threading

from repro.service.signals import (
    DRAIN_SIGNALS,
    install_drain_handlers,
    restore_handlers,
)


def test_first_signal_invokes_drain_callback():
    calls = []
    previous = install_drain_handlers(calls.append)
    try:
        os.kill(os.getpid(), signal.SIGTERM)
        # Delivery is synchronous for a self-signal in the main thread.
        assert calls == [signal.SIGTERM]
    finally:
        restore_handlers(previous)


def test_handlers_restored_before_callback_runs():
    # By the time drain() executes, the old dispositions are back — the
    # guarantee that lets a second Ctrl-C interrupt a stuck drain.
    seen = {}
    previous = install_drain_handlers(
        lambda signum: seen.update(
            {s: signal.getsignal(s) for s in DRAIN_SIGNALS}
        )
    )
    try:
        os.kill(os.getpid(), signal.SIGTERM)
        assert seen  # callback ran
        for signum in DRAIN_SIGNALS:
            assert seen[signum] == previous[signum]
    finally:
        restore_handlers(previous)


def test_both_drain_signals_are_covered():
    previous = install_drain_handlers(lambda signum: None)
    try:
        assert set(previous) == set(DRAIN_SIGNALS)
        installed = {signal.getsignal(s) for s in DRAIN_SIGNALS}
        assert len(installed) == 1  # one shared handler
    finally:
        restore_handlers(previous)
    for signum in DRAIN_SIGNALS:
        assert signal.getsignal(signum) == previous[signum]


def test_callback_may_hand_off_to_a_thread():
    # The documented pattern: the handler only starts a thread.
    drained = threading.Event()
    previous = install_drain_handlers(
        lambda signum: threading.Thread(target=drained.set).start()
    )
    try:
        os.kill(os.getpid(), signal.SIGTERM)
        assert drained.wait(timeout=5)
    finally:
        restore_handlers(previous)
