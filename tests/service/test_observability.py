"""Service-level observability: per-job traces, /metrics, retry totals.

The inline-drain tests use a never-started service (submissions queue
up; ``shutdown(drain=True)`` runs them on the calling thread), the same
deterministic harness as ``test_service.py``. The HTTP tests boot a
real server on a free port and scrape the new endpoints over sockets.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cache import CacheConfig
from repro.core import ScheduleEntry, VerifierConfig
from repro.datasets import build_aggchecker
from repro.experiments import build_cedar
from repro.llm import CostLedger
from repro.obs.export import to_prometheus
from repro.service import ServiceConfig, VerificationService, clone_document
from repro.service.http import ServiceApp, make_server


def make_bundle():
    return build_aggchecker(document_count=3, total_claims=12)


def make_service(bundle, seed=0, **config_kwargs):
    config_kwargs.setdefault("use_samples", False)
    ledger = CostLedger()
    service = VerificationService(ServiceConfig(ledger=ledger,
                                                **config_kwargs))
    system = build_cedar(bundle, seed=seed,
                        config=VerifierConfig(ledger=ledger))
    schedule = [ScheduleEntry(method, 1) for method in system.methods[:3]]
    return service, schedule


def drain_one_job(**config_kwargs):
    bundle = make_bundle()
    service, schedule = make_service(bundle, **config_kwargs)
    handle = service.submit(
        clone_document(bundle.documents[0], "obs"), schedule
    )
    service.shutdown(drain=True)
    assert handle.state == "completed"
    return service, handle


class TestJobTraces:
    def test_completed_job_carries_queue_wait_and_document_spans(self):
        _, handle = drain_one_job()
        spans = handle.spans()
        kinds = [span.kind for span in spans]
        assert kinds == ["queue_wait", "document"]
        wait, document = spans
        assert wait.attributes["job_id"] == handle.job_id
        assert wait.duration >= 0.0
        nested = {span.kind for span in document.walk()}
        assert {"stage", "method", "llm_call"} <= nested

    def test_tracing_off_files_no_spans(self):
        _, handle = drain_one_job(tracing=False)
        assert handle.spans() == []

    def test_spans_route_to_the_owning_job(self):
        bundle = make_bundle()
        service, schedule = make_service(bundle)
        handles = [
            service.submit(
                clone_document(bundle.documents[i], f"own{i}"), schedule
            )
            for i in range(3)
        ]
        service.shutdown(drain=True)
        for handle in handles:
            documents = [s for s in handle.spans()
                         if s.kind == "document"]
            assert len(documents) == 1
            waits = [s for s in handle.spans() if s.kind == "queue_wait"]
            assert waits and waits[0].attributes["job_id"] \
                == handle.job_id


class TestServiceMetrics:
    def test_stats_include_retry_backoff_seconds(self):
        service, _ = drain_one_job()
        ledger = service.stats().to_dict()["ledger"]
        assert "retry_backoff_seconds" in ledger
        assert ledger["retry_backoff_seconds"] >= 0.0

    def test_registry_snapshot_covers_the_stack(self):
        service, _ = drain_one_job()
        snapshot = service.metrics.snapshot()
        assert snapshot["cedar_llm_calls_total"] > 0
        assert snapshot["cedar_jobs_total"]["state=completed"] == 1
        assert snapshot["cedar_batches_total"] == 1
        assert "cedar_queue_depth" in snapshot
        assert snapshot["cedar_job_latency_seconds"]["count"] == 1

    def test_prometheus_rendering_of_live_registry(self):
        service, _ = drain_one_job()
        text = to_prometheus(service.metrics)
        assert text.endswith("\n")
        assert "# TYPE cedar_jobs_total counter" in text
        assert 'cedar_jobs_total{state="completed"} 1' in text
        assert "cedar_job_latency_seconds_bucket" in text
        assert 'cedar_cache_hits_total{cache="llm"}' in text
        # No persistent tier configured: no tier-labelled samples.
        assert 'tier="l2"' not in text

    def test_tier_labelled_cache_metrics_when_persistent(self, tmp_path):
        service, _ = drain_one_job(
            cache_config=CacheConfig(path=tmp_path / "l2.sqlite"),
        )
        text = to_prometheus(service.metrics)
        lines = text.splitlines()
        for cache_name in ("llm", "sql_result"):
            for tier in ("l1", "l2"):
                assert any(
                    line.startswith("cedar_cache_hits_total")
                    and f'cache="{cache_name}"' in line
                    and f'tier="{tier}"' in line
                    for line in lines
                ), f"missing {cache_name}/{tier} tier sample"


@pytest.fixture(scope="module")
def server():
    service = VerificationService(
        ServiceConfig(workers=2, use_samples=False)
    ).start()
    app = ServiceApp(
        service=service,
        datasets={"tiny": lambda: build_aggchecker(document_count=2,
                                                   total_claims=6)},
    )
    http_server = make_server(port=0, app=app)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    host, port = http_server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.shutdown(drain=False)
        thread.join(timeout=5.0)


def get_raw(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode())


def post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHttpObservability:
    def test_metrics_route_serves_prometheus_text(self, server):
        status, content_type, body = get_raw(f"{server}/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE cedar_queue_depth gauge" in body
        for line in body.splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_job_trace_route_serves_chrome_trace(self, server):
        status, body = post_json(f"{server}/verify",
                                 {"dataset": "tiny", "document": 0})
        assert status == 202
        job_id = body["job_id"]
        # Stream to completion so spans have been filed.
        with urllib.request.urlopen(
            f"{server}/jobs/{job_id}/events?wait=1&timeout=30", timeout=35
        ) as response:
            for _ in response:
                pass
        status, _, raw = get_raw(f"{server}/jobs/{job_id}/trace")
        assert status == 200
        payload = json.loads(raw)
        complete = [e for e in payload["traceEvents"]
                    if e.get("ph") == "X"]
        assert any(e["cat"] == "queue_wait" for e in complete)
        assert any(e["cat"] == "document" for e in complete)

    def test_trace_for_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_raw(f"{server}/jobs/nope/trace")
        assert excinfo.value.code == 404
