"""Smoke test for the stdlib HTTP front end.

Boots a real ``ThreadingHTTPServer`` on a free port with a tiny injected
dataset and exercises every route once over actual sockets: submit,
stream, summary, stats, health, and the error paths. Kept small so it
can run in tier-1; load behaviour is covered by the service tests and
``benchmarks/bench_service.py``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets import build_aggchecker
from repro.service import ServiceConfig, VerificationService
from repro.service.http import ServiceApp, make_server


@pytest.fixture(scope="module")
def server():
    service = VerificationService(
        ServiceConfig(workers=2, use_samples=False)
    ).start()
    app = ServiceApp(
        service=service,
        datasets={"tiny": lambda: build_aggchecker(document_count=2,
                                                   total_claims=6)},
    )
    http_server = make_server(port=0, app=app)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    host, port = http_server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.shutdown(drain=False)
        thread.join(timeout=5.0)


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def get_json_with_headers(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read()), response.headers


def post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHttpSmoke:
    def test_healthz(self, server):
        status, body, headers = get_json_with_headers(f"{server}/v1/healthz")
        assert status == 200
        assert body == {"status": "ok", "draining": False}
        assert headers.get("Deprecation") is None

    def test_legacy_alias_carries_deprecation_header(self, server):
        status, body, headers = get_json_with_headers(f"{server}/healthz")
        assert status == 200
        assert body == {"status": "ok", "draining": False}
        assert headers.get("Deprecation") == "true"

    def test_unknown_version_structured_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(f"{server}/v2/healthz")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["supported"] == ["v1"]
        assert "v2" in body["error"]

    def test_submit_stream_and_summary(self, server):
        status, body = post_json(
            f"{server}/v1/verify", {"dataset": "tiny", "document": 0}
        )
        assert status == 202
        assert body["state"] == "queued"
        assert body["claims"] > 0
        job_id = body["job_id"]
        assert body["events_url"] == f"/v1/jobs/{job_id}/events"

        # ?wait=1 streams ndjson until the terminal event.
        with urllib.request.urlopen(
            f"{server}{body['events_url']}?wait=1&timeout=30", timeout=40
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in response if line.strip()]
        assert events[0]["event"] == "job_queued"
        assert events[-1]["event"] == "job_done"
        assert events[-1]["claims"] == body["claims"]
        verdicts = [e for e in events if e["event"] == "claim_verdict"]
        assert len(verdicts) == body["claims"]

        status, summary = get_json(f"{server}/v1/jobs/{job_id}")
        assert status == 200
        assert summary["state"] == "completed"
        assert summary["events"] == len(events)

        # Without ?wait the stream is an instant replay.
        status, _ = get_json(f"{server}/v1/jobs/{job_id}")
        with urllib.request.urlopen(
            f"{server}{body['events_url']}", timeout=10
        ) as response:
            replay = [json.loads(line) for line in response if line.strip()]
        assert replay == events

    def test_stats_route(self, server):
        status, body = get_json(f"{server}/v1/stats")
        assert status == 200
        assert body["queue_depth"] == 0
        assert "hit_rate" in body["cache"]
        assert "p95_seconds" in body["latency"]

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(f"{server}/nope")
        assert excinfo.value.code == 404

    def test_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(f"{server}/jobs/job-999999/events")
        assert excinfo.value.code == 404

    def test_bad_body_400(self, server):
        request = urllib.request.Request(
            f"{server}/verify", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_dataset_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(f"{server}/verify", {"dataset": "missing"})
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["datasets"] == ["tiny"]

    def test_document_index_validation(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(f"{server}/verify", {"dataset": "tiny", "document": 99})
        assert excinfo.value.code == 400

    def test_bad_priority_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(f"{server}/verify",
                      {"dataset": "tiny", "priority": "urgent"})
        assert excinfo.value.code == 400
        assert "priority" in json.loads(excinfo.value.read())["error"]

    def test_readyz_reports_accepting(self, server):
        status, body, _ = get_json_with_headers(f"{server}/v1/readyz")
        assert status == 200
        assert body == {"ready": True, "draining": False}

    def test_bad_events_timeout_400(self, server):
        status, body = post_json(f"{server}/verify", {"dataset": "tiny"})
        assert status == 202
        for bad in ("soon", "nan", "-1"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get_json(f"{server}{body['events_url']}?wait=1&timeout={bad}")
            assert excinfo.value.code == 400
            assert "timeout" in json.loads(excinfo.value.read())["error"]


class TestAdmissionRejections:
    """429/503 + Retry-After on retryable rejections, and readiness.

    Uses a deliberately *unstarted* service: submitted jobs stay queued,
    so limit-driven rejections are deterministic rather than a race
    against the dispatcher.
    """

    @pytest.fixture()
    def tight(self):
        service = VerificationService(ServiceConfig(
            max_queue_depth=2, per_client_limit=1, use_samples=False,
        ))
        app = ServiceApp(
            service=service,
            datasets={"tiny": lambda: build_aggchecker(document_count=2,
                                                       total_claims=6)},
        )
        http_server = make_server(port=0, app=app)
        thread = threading.Thread(target=http_server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = http_server.server_address[:2]
        try:
            yield f"http://{host}:{port}", service
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.shutdown(drain=False)
            thread.join(timeout=5.0)

    @staticmethod
    def _rejection(url, payload):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        error = excinfo.value
        return error.code, json.loads(error.read()), error.headers

    def test_client_limit_is_429_with_retry_after(self, tight):
        url, _service = tight
        status, body = post_json(
            f"{url}/v1/verify",
            {"dataset": "tiny", "document": 0, "client_id": "hog"},
        )
        assert status == 202
        code, body, headers = self._rejection(
            f"{url}/v1/verify",
            {"dataset": "tiny", "document": 1, "client_id": "hog"},
        )
        assert code == 429
        assert body["rejected"]["code"] == "client_limit"
        assert body["retry_after_seconds"] >= 1
        assert int(headers["Retry-After"]) == body["retry_after_seconds"]

    def test_queue_full_is_429_with_retry_after(self, tight):
        url, _service = tight
        for client in ("a", "b"):
            status, _ = post_json(
                f"{url}/v1/verify",
                {"dataset": "tiny", "document": 0, "client_id": client},
            )
            assert status == 202
        code, body, headers = self._rejection(
            f"{url}/v1/verify",
            {"dataset": "tiny", "document": 0, "client_id": "c"},
        )
        assert code == 429
        assert body["rejected"]["code"] == "queue_full"
        assert "Retry-After" in headers

    def test_draining_is_503_and_flips_readyz_not_healthz(self, tight):
        url, service = tight
        service.begin_drain()
        code, body, headers = self._rejection(
            f"{url}/v1/verify", {"dataset": "tiny", "document": 0},
        )
        assert code == 503
        assert body["rejected"]["code"] == "draining"
        assert "Retry-After" in headers
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(f"{url}/v1/readyz")
        assert excinfo.value.code == 503
        ready_body = json.loads(excinfo.value.read())
        assert ready_body["ready"] is False
        assert ready_body["draining"] is True
        # Liveness is a different question: the process is healthy.
        status, body = get_json(f"{url}/v1/healthz")
        assert status == 200
        assert body["draining"] is True
