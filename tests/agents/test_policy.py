"""Tests for the simulated agent policy driving the real ReAct loop."""

import pytest

from repro.agents import ReActAgent, agent_success_probability
from repro.agents.policy import install_agent_policy
from repro.core import AgentMethod, mask_claim
from repro.core.claims import Claim, Span
from repro.llm import (
    ClaimKnowledge,
    ClaimWorld,
    CostLedger,
    LookupTrap,
    SimulatedLLM,
)
from repro.llm.simulated import BEHAVIOURS
from repro.sqlengine import Database, Engine, Table


@pytest.fixture()
def db():
    database = Database("policy")
    database.add(Table(
        "drinks",
        ["country", "wine_servings", "beer_servings"],
        [("France", 370, 120), ("USA", 84, 250), ("Italy", 340, 90)],
    ))
    return database


def make_claim_and_knowledge(db, **overrides):
    sentence = "The French consume 370 glasses of wine per person."
    claim = Claim(sentence, Span(3, 3), sentence, "p/c0",
                  metadata={"label_correct": True})
    masked = mask_claim(claim)
    defaults = dict(
        claim_id="p/c0",
        masked_sentence=masked.masked_sentence,
        unmasked_sentence=sentence,
        reference_sql=(
            'SELECT "wine_servings" FROM "drinks" '
            "WHERE \"country\" = 'France'"
        ),
        claim_value_text="370",
        claim_type="numeric",
        difficulty=0.1,
        table_name="drinks",
        columns=("country", "wine_servings", "beer_servings"),
    )
    defaults.update(overrides)
    return claim, ClaimKnowledge(**defaults)


def run_agent(db, claim, knowledge, model="gpt-4-turbo", seed=0):
    world = ClaimWorld()
    world.register(knowledge)
    client = install_agent_policy(
        SimulatedLLM(model, world, CostLedger(), seed=seed)
    )
    method = AgentMethod(client)
    masked = mask_claim(claim)
    return method.translate(
        masked, "numeric", claim.value, claim.value_text, db, None, 0.0
    )


class TestAgentFlows:
    def test_easy_claim_solved_directly(self, db):
        claim, knowledge = make_claim_and_knowledge(db)
        result = run_agent(db, claim, knowledge)
        assert result.query is not None
        value = Engine(db).execute(result.query).first_cell()
        assert value == 370

    def test_trap_recovered_via_unique_values(self, db):
        # Figure 4: the constant in the data differs from the prose form;
        # the agent must consult unique_column_values to find it.
        claim, knowledge = make_claim_and_knowledge(
            db,
            lookup_trap=LookupTrap("country", "The French Republic",
                                   "France"),
        )
        found_flow = False
        for seed in range(8):
            result = run_agent(db, claim, knowledge, seed=seed)
            trace = result.trace_text
            if "unique_column_values" in trace:
                found_flow = True
                assert "France" in trace  # the revealed constant
                assert result.query is not None
                assert Engine(db).execute(result.query).first_cell() == 370
                break
        assert found_flow, "trap recovery flow never triggered"

    def test_decomposition_reconstructed(self, db):
        inner = 'SELECT MAX("beer_servings") FROM "drinks"'
        outer = (
            'SELECT "wine_servings" FROM "drinks" '
            'WHERE "beer_servings" = 250'
        )
        nested = (
            'SELECT "wine_servings" FROM "drinks" WHERE "beer_servings" = '
            '(SELECT MAX("beer_servings") FROM "drinks")'
        )
        claim, knowledge = make_claim_and_knowledge(
            db,
            reference_sql=nested,
            decomposition=(inner, outer),
            claim_value_text="84",
        )
        solved = False
        for seed in range(8):
            result = run_agent(db, claim, knowledge, seed=seed)
            if len(result.issued_queries) >= 2 and result.query:
                # Algorithm 9 must fold the constant back into a sub-query.
                if "MAX" in result.query and "250" not in result.query:
                    solved = True
                    break
        assert solved, "stepwise decomposition flow never produced a merge"

    def test_trace_is_react_formatted(self, db):
        claim, knowledge = make_claim_and_knowledge(db)
        result = run_agent(db, claim, knowledge)
        assert "Thought:" in result.trace_text
        assert "Action: database_querying" in result.trace_text
        assert "Observation:" in result.trace_text

    def test_policy_required_for_agent_prompts(self, db):
        claim, knowledge = make_claim_and_knowledge(db)
        world = ClaimWorld()
        world.register(knowledge)
        client = SimulatedLLM("gpt-4o", world, CostLedger())  # no policy
        method = AgentMethod(client)
        masked = mask_claim(claim)
        with pytest.raises(RuntimeError):
            method.translate(masked, "numeric", claim.value,
                             claim.value_text, db, None, 0.0)


class TestAgentProbabilities:
    def knowledge(self, **overrides):
        _, knowledge = make_claim_and_knowledge(Database("x"), **overrides)
        return knowledge

    def test_agent_beats_oneshot_on_difficulty(self):
        behaviour = BEHAVIOURS["gpt-4o"]
        hard = self.knowledge(difficulty=0.6)
        agent_p = agent_success_probability(hard, behaviour, False)
        oneshot_p = (
            behaviour.oneshot_skill
            - behaviour.difficulty_slope * hard.difficulty
        )
        assert agent_p > oneshot_p

    def test_sample_bonus(self):
        behaviour = BEHAVIOURS["gpt-4o"]
        knowledge = self.knowledge(difficulty=0.4)
        assert agent_success_probability(knowledge, behaviour, True) > \
            agent_success_probability(knowledge, behaviour, False)

    def test_ambiguous_collapse(self):
        behaviour = BEHAVIOURS["gpt-4-turbo"]
        ambiguous = self.knowledge(difficulty=0.9, ambiguous=True)
        assert agent_success_probability(ambiguous, behaviour, False) < 0.2
