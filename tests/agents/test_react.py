"""Tests for the ReAct loop with scripted models and real tools."""

import pytest

from repro.agents import (
    DatabaseQueryingTool,
    ReActAgent,
    UniqueColumnValuesTool,
    parse_scratchpad,
)
from repro.agents.react import _parse_reply
from repro.llm import ScriptedLLM
from repro.sqlengine import Database, Table


@pytest.fixture()
def db():
    database = Database("agents")
    database.add(Table(
        "drinks",
        ["country", "wine_servings"],
        [("France", 370), ("USA", 84), ("Italy", 340)],
    ))
    return database


def action(thought, tool, tool_input):
    return f"Thought: {thought}\nAction: {tool}\nAction Input: {tool_input}"


def final(answer):
    return f"Thought: I now know the final answer.\nFinal Answer: {answer}"


class TestParseReply:
    def test_action(self):
        thought, act, inp, fin = _parse_reply(
            action("check values", "database_querying", "SELECT 1")
        )
        assert thought == "check values"
        assert act == "database_querying"
        assert inp == "SELECT 1"
        assert fin is None

    def test_final(self):
        thought, act, inp, fin = _parse_reply(final("84"))
        assert fin == "84"
        assert act is None

    def test_reasoning_only(self):
        thought, act, inp, fin = _parse_reply("Thought: hmm, thinking.")
        assert thought == "hmm, thinking."
        assert act is None and fin is None

    def test_multiline_action_input(self):
        text = ("Thought: t\nAction: database_querying\n"
                "Action Input: SELECT a\nFROM t")
        _, act, inp, _ = _parse_reply(text)
        assert inp == "SELECT a\nFROM t"


class TestLoop:
    def test_query_then_finish(self, db):
        client = ScriptedLLM([
            action("try a query", "database_querying",
                   "SELECT wine_servings FROM drinks WHERE country = 'USA'"),
            final("84"),
        ])
        tool = DatabaseQueryingTool(db, 84, "84")
        agent = ReActAgent(client, [UniqueColumnValuesTool(db), tool])
        result = agent.run("Base prompt.\n\nBegin!\n\n")
        assert result.final_answer == "84"
        assert result.queries == [
            "SELECT wine_servings FROM drinks WHERE country = 'USA'"
        ]
        assert result.trace.stopped_reason == "finished"

    def test_observation_fed_back(self, db):
        client = ScriptedLLM([
            action("look at countries", "unique_column_values", "country"),
            final("done"),
        ])
        agent = ReActAgent(client, [UniqueColumnValuesTool(db)])
        agent.run("Base.\n\nBegin!\n\n")
        second_prompt = client.calls[1][0]
        assert "France" in second_prompt
        assert "Observation:" in second_prompt

    def test_unknown_tool_reported(self, db):
        client = ScriptedLLM([
            action("oops", "nonexistent_tool", "whatever"),
            final("give up"),
        ])
        agent = ReActAgent(client, [UniqueColumnValuesTool(db)])
        result = agent.run("Base.\n\nBegin!\n\n")
        assert "unknown tool" in result.trace.steps[0].observation

    def test_iteration_limit(self, db):
        client = ScriptedLLM([
            action("again", "unique_column_values", "country"),
        ])
        agent = ReActAgent(client, [UniqueColumnValuesTool(db)],
                           max_iterations=3)
        result = agent.run("Base.\n\nBegin!\n\n")
        assert result.trace.stopped_reason == "iteration_limit"
        assert len(client.calls) == 3

    def test_reasoning_only_step_continues(self, db):
        client = ScriptedLLM([
            "Thought: just thinking, no action yet.",
            final("ok"),
        ])
        agent = ReActAgent(client, [])
        result = agent.run("Base.\n\nBegin!\n\n")
        assert result.final_answer == "ok"

    def test_invalid_max_iterations(self, db):
        with pytest.raises(ValueError):
            ReActAgent(ScriptedLLM(["x"]), [], max_iterations=0)


class TestTools:
    def test_unique_values(self, db):
        tool = UniqueColumnValuesTool(db)
        output = tool.run("country")
        assert output.splitlines()[0] == "country"
        assert "France" in output

    def test_unique_values_qualified(self, db):
        tool = UniqueColumnValuesTool(db)
        assert "France" in tool.run("drinks.country")

    def test_unique_values_missing_column(self, db):
        assert "Error" in UniqueColumnValuesTool(db).run("nope")

    def test_unique_values_truncated(self):
        database = Database("big")
        database.add(Table("t", ["v"], [(i,) for i in range(200)]))
        output = UniqueColumnValuesTool(database).run("v")
        assert "more" in output

    def test_querying_correct_feedback(self, db):
        tool = DatabaseQueryingTool(db, 84, "84")
        output = tool.run(
            "SELECT wine_servings FROM drinks WHERE country = 'USA'"
        )
        assert "Value is correct" in output
        assert output.startswith("[84,")

    def test_querying_close_feedback(self, db):
        tool = DatabaseQueryingTool(db, 90, "90")
        output = tool.run(
            "SELECT wine_servings FROM drinks WHERE country = 'USA'"
        )
        assert "close" in output and "smaller" in output

    def test_querying_far_feedback(self, db):
        tool = DatabaseQueryingTool(db, 2, "2")
        output = tool.run("SELECT SUM(wine_servings) FROM drinks")
        assert "greater" in output

    def test_querying_error_surfaced(self, db):
        tool = DatabaseQueryingTool(db, 84, "84")
        output = tool.run(
            "SELECT wine_servings FROM drinks WHERE country = 'United States'"
        )
        assert "index 0 is out of bounds" in output

    def test_querying_never_reveals_claim_value(self, db):
        tool = DatabaseQueryingTool(db, 9999, "9999")
        output = tool.run("SELECT SUM(wine_servings) FROM drinks")
        assert "9999" not in output

    def test_text_feedback_matched(self, db):
        tool = DatabaseQueryingTool(db, "France", "France")
        output = tool.run(
            "SELECT country FROM drinks WHERE wine_servings = 370"
        )
        assert "matched" in output

    def test_text_feedback_mismatched(self, db):
        tool = DatabaseQueryingTool(db, "Italy", "Italy")
        output = tool.run(
            "SELECT country FROM drinks WHERE wine_servings = 370"
        )
        assert "mismatched" in output

    def test_queries_logged(self, db):
        tool = DatabaseQueryingTool(db, 84, "84")
        tool.run("SELECT COUNT(*) FROM drinks")
        tool.run("SELECT SUM(wine_servings) FROM drinks")
        assert len(tool.queries) == 2


class TestScratchpadParsing:
    def test_roundtrip_through_render(self, db):
        client = ScriptedLLM([
            action("first", "unique_column_values", "country"),
            action("second", "database_querying", "SELECT COUNT(*) FROM drinks"),
            final("3"),
        ])
        tool = DatabaseQueryingTool(db, 3, "3")
        agent = ReActAgent(client, [UniqueColumnValuesTool(db), tool])
        agent.run("Base.\n\nBegin!\n\n")
        last_prompt = client.calls[-1][0]
        steps = parse_scratchpad(last_prompt)
        assert [s.action for s in steps] == [
            "unique_column_values", "database_querying"
        ]
        assert steps[1].action_input == "SELECT COUNT(*) FROM drinks"
        assert steps[0].observation is not None
