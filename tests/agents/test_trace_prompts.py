"""Tests for trace rendering and the agent prompt template."""

from repro.agents import AgentStep, AgentTrace, agent_prompt
from repro.agents.tools import DatabaseQueryingTool, UniqueColumnValuesTool
from repro.llm.simulated import AGENT_PROMPT_MARKER
from repro.sqlengine import Database, Table


def make_tools():
    database = Database("p")
    database.add(Table("t", ["a"], [("x",)]))
    return [
        UniqueColumnValuesTool(database),
        DatabaseQueryingTool(database, 1, "1"),
    ]


class TestTraceRendering:
    def test_step_with_action(self):
        step = AgentStep("think", "database_querying", "SELECT 1", "[1, ok]")
        text = step.render()
        assert text.splitlines() == [
            "Thought: think",
            "Action: database_querying",
            "Action Input: SELECT 1",
            "Observation: [1, ok]",
        ]

    def test_step_without_action(self):
        step = AgentStep("just thinking")
        assert step.render() == "Thought: just thinking"

    def test_trace_with_final_answer(self):
        trace = AgentTrace(
            steps=[AgentStep("a"), AgentStep("b")], final_answer="42"
        )
        text = trace.render()
        assert text.endswith("Final Answer: 42")
        assert trace.iterations == 2

    def test_empty_trace(self):
        assert AgentTrace().render() == ""
        assert AgentTrace().iterations == 0


class TestAgentPrompt:
    def build(self, sample_text=""):
        return agent_prompt(
            "The masked claim with x.",
            "numeric",
            "CREATE TABLE schema",
            sample_text,
            "context paragraph",
            make_tools(),
        )

    def test_contains_marker_for_routing(self):
        # The simulated model routes on this marker; a real model just
        # reads it as the tool preamble.
        assert AGENT_PROMPT_MARKER in self.build()

    def test_lists_both_tools(self):
        prompt = self.build()
        assert "- unique_column_values:" in prompt
        assert "- database_querying:" in prompt
        assert "[unique_column_values, database_querying]" in prompt

    def test_react_format_instructions(self):
        prompt = self.build()
        for keyword in ("Thought:", "Action:", "Action Input:",
                        "Observation:", "Final Answer:"):
            assert keyword in prompt

    def test_claim_and_context_embedded(self):
        prompt = self.build()
        assert 'the claim "The masked claim with x."' in prompt
        assert "context paragraph" in prompt
        assert "CREATE TABLE schema" in prompt

    def test_sample_block_optional(self):
        with_sample = self.build("For example, given the claim ...")
        without = self.build("")
        assert "For example" in with_sample
        assert "For example" not in without

    def test_ends_ready_for_scratchpad(self):
        assert self.build().endswith("Begin!\n\n")
