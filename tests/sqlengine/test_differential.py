"""Differential tests: the optimized engine vs ``naive=True``.

The optimization contract is byte-identical behaviour — every plan-cache
hit, compiled evaluator, pushed predicate, indexed scan, and hash join
must produce exactly the rows (and exactly the errors) of the original
parse-per-call interpreter. The property tests drive both arms over a
query family chosen to hit the interesting strategy boundaries: NULL
join keys, LEFT joins with pushable WHERE conjuncts, OR-connected
predicates (not splittable), and grouped aggregates.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, Engine, QueryResultCache, Table
from repro.sqlengine.errors import SqlError

_KEYS = st.one_of(st.none(), st.integers(0, 4))
_CATS = ("red", "green", "blue")


@st.composite
def databases(draw):
    left_rows = draw(st.lists(
        st.tuples(_KEYS, st.sampled_from(_CATS), st.integers(-10, 10)),
        min_size=0, max_size=12,
    ))
    right_rows = draw(st.lists(
        st.tuples(_KEYS, st.integers(0, 100)),
        min_size=0, max_size=12,
    ))
    db = Database("diff")
    db.add(Table("l", ["k", "cat", "v"], left_rows))
    db.add(Table("r", ["k", "w"], right_rows))
    return db


_JOIN_QUERIES = (
    # INNER hash join; NULL keys on either side must never match.
    "SELECT l.k, cat, w FROM l JOIN r ON l.k = r.k ORDER BY w, cat",
    # LEFT join with a pushable single-table WHERE conjunct on the left.
    "SELECT cat, w FROM l LEFT JOIN r ON l.k = r.k "
    "WHERE v > 0 ORDER BY cat, w",
    # LEFT join where the predicate targets the padded (right) side —
    # must NOT be pushed below the join (it would drop padded rows).
    "SELECT cat, w FROM l LEFT JOIN r ON l.k = r.k "
    "WHERE w IS NULL ORDER BY cat",
    # OR across tables: not splittable, stays a residual filter.
    "SELECT cat, w FROM l JOIN r ON l.k = r.k "
    "WHERE v > 5 OR w < 50 ORDER BY cat, w",
    # Equality probe eligible for an indexed scan.
    "SELECT v FROM l WHERE cat = 'red' ORDER BY v",
    # Grouped aggregate with HAVING over the join.
    "SELECT cat, COUNT(*), SUM(w) FROM l JOIN r ON l.k = r.k "
    "GROUP BY cat HAVING COUNT(*) > 1 ORDER BY cat",
    # Cross join (comma syntax) with a join predicate in WHERE.
    "SELECT cat, w FROM l, r WHERE l.k = r.k AND v >= 0 ORDER BY cat, w",
    # Plain aggregates over an empty-able group.
    "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM l WHERE v > 3",
)


def _run(engine, sql):
    try:
        result = engine.execute(sql)
    except SqlError as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", result.columns, result.rows)


@given(databases(), st.sampled_from(_JOIN_QUERIES))
@settings(max_examples=120, deadline=None)
def test_optimized_matches_naive(db, sql):
    naive = _run(Engine(db, naive=True), sql)
    optimized_engine = Engine(db, result_cache=QueryResultCache(32))
    assert _run(optimized_engine, sql) == naive
    # Second execution answers from the result cache — still identical.
    assert _run(optimized_engine, sql) == naive


@given(databases())
@settings(max_examples=60, deadline=None)
def test_null_join_keys_never_match(db):
    sql = "SELECT l.k, r.k FROM l JOIN r ON l.k = r.k"
    naive = _run(Engine(db, naive=True), sql)
    optimized = _run(Engine(db, result_cache=None), sql)
    assert optimized == naive
    if naive[0] == "ok":
        assert all(k is not None for row in naive[2] for k in row)


def _correlated_db():
    db = Database("corr")
    db.add(Table("emp", ["dept", "salary"],
                 [("a", 10), ("a", 30), ("b", 20), ("b", 40)]))
    db.add(Table("dept", ["dept", "cap"], [("a", 25), ("b", 35)]))
    return db


CORRELATED = (
    "SELECT d.dept, (SELECT COUNT(*) FROM emp e "
    "WHERE e.dept = d.dept AND e.salary > d.cap) FROM dept d "
    "ORDER BY d.dept"
)


def test_correlated_subquery_matches_naive():
    db = _correlated_db()
    naive = _run(Engine(db, naive=True), CORRELATED)
    assert _run(Engine(db, result_cache=QueryResultCache(32)), CORRELATED) \
        == naive
    assert naive[0] == "ok"
    assert naive[2] == [("a", 1), ("b", 1)]


def test_correlated_subquery_bypasses_result_cache():
    db = _correlated_db()
    cache = QueryResultCache(32)
    engine = Engine(db, result_cache=cache)
    engine.execute(CORRELATED)
    # Only the top-level statement lands in the cache; the inner query,
    # evaluated once per outer row, never consults it.
    assert len(cache) == 1
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 0
    engine.execute(CORRELATED)
    assert cache.stats()["hits"] == 1


def test_unknown_column_error_matches_naive():
    db = _correlated_db()
    sql = "SELECT nope FROM emp"
    naive = _run(Engine(db, naive=True), sql)
    optimized = _run(Engine(db, result_cache=None), sql)
    assert naive[0] == "error"
    assert optimized == naive


def test_division_by_zero_error_matches_naive():
    db = Database("dz")
    db.add(Table("t", ["a", "b"], [(1, 0)]))
    sql = "SELECT a / b FROM t"
    naive = _run(Engine(db, naive=True), sql)
    optimized = _run(Engine(db, result_cache=None), sql)
    assert naive[0] == "error"
    assert optimized == naive
