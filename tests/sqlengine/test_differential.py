"""Differential tests: the optimized engine vs ``naive=True``.

The optimization contract is byte-identical behaviour — every plan-cache
hit, compiled evaluator, pushed predicate, indexed scan, hash join, and
vectorized batch plan must produce exactly the rows (and exactly the
errors) of the original parse-per-call interpreter. The property tests
drive both arms over a query family chosen to hit the interesting
strategy boundaries: NULL join keys, LEFT joins with pushable WHERE
conjuncts, OR-connected predicates (not splittable), and grouped
aggregates. A second family targets the vectorized path's soundness
gates specifically: NaN/inf columns, mixed-type columns, NULL-heavy and
empty tables, and GROUP BY over all-NULL keys.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, Engine, QueryResultCache, Table
from repro.sqlengine.errors import SqlError
from repro.sqlengine.planner import STRATEGY_COUNTERS

_KEYS = st.one_of(st.none(), st.integers(0, 4))
_CATS = ("red", "green", "blue")


@st.composite
def databases(draw):
    left_rows = draw(st.lists(
        st.tuples(_KEYS, st.sampled_from(_CATS), st.integers(-10, 10)),
        min_size=0, max_size=12,
    ))
    right_rows = draw(st.lists(
        st.tuples(_KEYS, st.integers(0, 100)),
        min_size=0, max_size=12,
    ))
    db = Database("diff")
    db.add(Table("l", ["k", "cat", "v"], left_rows))
    db.add(Table("r", ["k", "w"], right_rows))
    return db


_JOIN_QUERIES = (
    # INNER hash join; NULL keys on either side must never match.
    "SELECT l.k, cat, w FROM l JOIN r ON l.k = r.k ORDER BY w, cat",
    # LEFT join with a pushable single-table WHERE conjunct on the left.
    "SELECT cat, w FROM l LEFT JOIN r ON l.k = r.k "
    "WHERE v > 0 ORDER BY cat, w",
    # LEFT join where the predicate targets the padded (right) side —
    # must NOT be pushed below the join (it would drop padded rows).
    "SELECT cat, w FROM l LEFT JOIN r ON l.k = r.k "
    "WHERE w IS NULL ORDER BY cat",
    # OR across tables: not splittable, stays a residual filter.
    "SELECT cat, w FROM l JOIN r ON l.k = r.k "
    "WHERE v > 5 OR w < 50 ORDER BY cat, w",
    # Equality probe eligible for an indexed scan.
    "SELECT v FROM l WHERE cat = 'red' ORDER BY v",
    # Grouped aggregate with HAVING over the join.
    "SELECT cat, COUNT(*), SUM(w) FROM l JOIN r ON l.k = r.k "
    "GROUP BY cat HAVING COUNT(*) > 1 ORDER BY cat",
    # Cross join (comma syntax) with a join predicate in WHERE.
    "SELECT cat, w FROM l, r WHERE l.k = r.k AND v >= 0 ORDER BY cat, w",
    # Plain aggregates over an empty-able group.
    "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM l WHERE v > 3",
)


def _run(engine, sql):
    try:
        result = engine.execute(sql)
    except SqlError as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", result.columns, result.rows)


@given(databases(), st.sampled_from(_JOIN_QUERIES))
@settings(max_examples=120, deadline=None)
def test_optimized_matches_naive(db, sql):
    naive = _run(Engine(db, naive=True), sql)
    optimized_engine = Engine(db, result_cache=QueryResultCache(32))
    assert _run(optimized_engine, sql) == naive
    # Second execution answers from the result cache — still identical.
    assert _run(optimized_engine, sql) == naive


@given(databases())
@settings(max_examples=60, deadline=None)
def test_null_join_keys_never_match(db):
    sql = "SELECT l.k, r.k FROM l JOIN r ON l.k = r.k"
    naive = _run(Engine(db, naive=True), sql)
    optimized = _run(Engine(db, result_cache=None), sql)
    assert optimized == naive
    if naive[0] == "ok":
        assert all(k is not None for row in naive[2] for k in row)


def _correlated_db():
    db = Database("corr")
    db.add(Table("emp", ["dept", "salary"],
                 [("a", 10), ("a", 30), ("b", 20), ("b", 40)]))
    db.add(Table("dept", ["dept", "cap"], [("a", 25), ("b", 35)]))
    return db


CORRELATED = (
    "SELECT d.dept, (SELECT COUNT(*) FROM emp e "
    "WHERE e.dept = d.dept AND e.salary > d.cap) FROM dept d "
    "ORDER BY d.dept"
)


def test_correlated_subquery_matches_naive():
    db = _correlated_db()
    naive = _run(Engine(db, naive=True), CORRELATED)
    assert _run(Engine(db, result_cache=QueryResultCache(32)), CORRELATED) \
        == naive
    assert naive[0] == "ok"
    assert naive[2] == [("a", 1), ("b", 1)]


def test_correlated_subquery_bypasses_result_cache():
    db = _correlated_db()
    cache = QueryResultCache(32)
    engine = Engine(db, result_cache=cache)
    engine.execute(CORRELATED)
    # Only the top-level statement lands in the cache; the inner query,
    # evaluated once per outer row, never consults it.
    assert len(cache) == 1
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 0
    engine.execute(CORRELATED)
    assert cache.stats()["hits"] == 1


def test_unknown_column_error_matches_naive():
    db = _correlated_db()
    sql = "SELECT nope FROM emp"
    naive = _run(Engine(db, naive=True), sql)
    optimized = _run(Engine(db, result_cache=None), sql)
    assert naive[0] == "error"
    assert optimized == naive


def test_division_by_zero_error_matches_naive():
    db = Database("dz")
    db.add(Table("t", ["a", "b"], [(1, 0)]))
    sql = "SELECT a / b FROM t"
    naive = _run(Engine(db, naive=True), sql)
    optimized = _run(Engine(db, result_cache=None), sql)
    assert naive[0] == "error"
    assert optimized == naive


# -- vectorized path ----------------------------------------------------------
#
# These drive the vectorized batch plans against the naive oracle AND the
# unvectorized row path. Comparisons go through repr() so NaN cells (which
# are != themselves) still compare, and so -0.0 vs 0.0 divergence would be
# caught rather than masked.

_NAN = float("nan")
_INF = float("inf")

_NUMS = st.one_of(st.none(), st.integers(-5, 5))
_FLOATS = st.one_of(
    st.none(),
    st.integers(-3, 3),
    st.sampled_from((0.5, -2.25, 1e15, _NAN, _INF, -_INF)),
)
_MIXED = st.one_of(
    st.none(), st.integers(-3, 3), st.booleans(),
    st.sampled_from(("x", "7", "", "y z")), st.just(_NAN),
)
_TEXTS = st.one_of(st.none(), st.sampled_from(("ab", "c", "", "zz")))


@st.composite
def vectorized_databases(draw):
    v_rows = draw(st.lists(
        st.tuples(_NUMS, _FLOATS, _MIXED, _TEXTS), min_size=0, max_size=14,
    ))
    j_rows = draw(st.lists(
        st.tuples(_FLOATS, st.integers(0, 50)), min_size=0, max_size=10,
    ))
    db = Database("vecdiff")
    db.add(Table("v", ["num", "fnum", "mix", "txt"], v_rows))
    db.add(Table("j", ["k", "w"], j_rows))
    return db


_VECTOR_QUERIES = (
    # Numeric scan + arithmetic (inf/NaN columns force the row path; the
    # classes are per-database, so both outcomes are exercised).
    "SELECT num, num + 1, num * 2 FROM v WHERE num > 0 ORDER BY 1, 2",
    # Mixed-type column in predicates: only compare_values semantics work.
    "SELECT mix FROM v WHERE mix = 7",
    # NULL-heavy grouping; an all-NULL txt column makes one NULL group.
    "SELECT txt, COUNT(*), COUNT(txt), SUM(num) FROM v "
    "GROUP BY txt ORDER BY 2 DESC, 1",
    # GROUP BY over a mixed column (bools, NaN, numeric strings).
    "SELECT COUNT(*) FROM v GROUP BY mix ORDER BY 1",
    # Global aggregates, empty-relation fallback included.
    "SELECT COUNT(*), SUM(num), AVG(num), MIN(txt), MAX(fnum) FROM v",
    "SELECT COUNT(*), MIN(num) FROM v WHERE num > 100",
    # DISTINCT + aggregate arguments.
    "SELECT COUNT(DISTINCT num), COUNT(DISTINCT txt) FROM v",
    # Join on a float column: NaN keys defeat hashing at runtime and must
    # fall back identically (the padded LEFT variant too).
    "SELECT num, w FROM v JOIN j ON v.fnum = j.k ORDER BY 1, 2",
    "SELECT num, w FROM v LEFT JOIN j ON v.fnum = j.k ORDER BY 1, 2",
    # IN / BETWEEN / CASE / IS NULL over nullable numerics.
    "SELECT num FROM v WHERE num IN (1, 2, NULL) OR num BETWEEN -2 AND -1",
    "SELECT CASE WHEN num > 0 THEN txt WHEN num IS NULL THEN 'n' END "
    "FROM v ORDER BY 1",
    # HAVING over a computed aggregate.
    "SELECT txt, SUM(num) FROM v GROUP BY txt "
    "HAVING COUNT(*) >= 1 ORDER BY 1",
)


def _run_repr(engine, sql):
    try:
        result = engine.execute(sql)
    except SqlError as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", result.columns, repr(result.rows))


@given(vectorized_databases(), st.sampled_from(_VECTOR_QUERIES))
@settings(max_examples=150, deadline=None)
def test_vectorized_matches_naive(db, sql):
    naive = _run_repr(Engine(db, naive=True), sql)
    vectorized = Engine(db, vectorized=True, result_cache=None)
    row_path = Engine(db, vectorized=False, result_cache=None)
    assert _run_repr(vectorized, sql) == naive
    assert _run_repr(row_path, sql) == naive
    # Replay through the (possibly runtime-disabled) memoized plan.
    assert _run_repr(vectorized, sql) == naive


def test_vectorized_path_actually_engages():
    db = Database("engage")
    db.add(Table("t", ["a", "b"], [(1, 2.0), (2, 3.5), (3, None)]))
    engine = Engine(db, vectorized=True, result_cache=None)
    before = STRATEGY_COUNTERS.snapshot()
    engine.execute("SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a")
    after = STRATEGY_COUNTERS.snapshot()
    assert after["vectorized_executions"] == before["vectorized_executions"] + 1


def test_nan_join_key_disables_plan_permanently():
    db = Database("nanjoin")
    db.add(Table("l", ["k"], [(math.nan,), (1.0,)]))
    db.add(Table("r", ["k", "w"], [(1.0, 10)]))
    engine = Engine(db, vectorized=True, result_cache=None)
    naive = _run_repr(Engine(db, naive=True),
                      "SELECT l.k, w FROM l JOIN r ON l.k = r.k")
    before = STRATEGY_COUNTERS.snapshot()
    sql = "SELECT l.k, w FROM l JOIN r ON l.k = r.k"
    assert _run_repr(engine, sql) == naive
    assert _run_repr(engine, sql) == naive
    after = STRATEGY_COUNTERS.snapshot()
    # First call trips the runtime fallback; the second skips the plan
    # without re-running it (the disable is permanent).
    assert (after["vectorized_runtime_fallbacks"]
            == before["vectorized_runtime_fallbacks"] + 2)
    assert after["vectorized_executions"] == before["vectorized_executions"]


def test_subqueries_stay_on_the_row_path():
    db = _correlated_db()
    engine = Engine(db, vectorized=True, result_cache=None)
    before = STRATEGY_COUNTERS.snapshot()
    engine.execute(CORRELATED)
    after = STRATEGY_COUNTERS.snapshot()
    assert after["vectorized_executions"] == before["vectorized_executions"]
    assert after["vectorized_ineligible"] > before["vectorized_ineligible"]


def test_group_by_all_null_keys():
    db = Database("allnull")
    db.add(Table("t", ["g", "x"], [(None, None), (None, None), (None, 3)]))
    sql = "SELECT g, COUNT(*), COUNT(x), SUM(x), AVG(x) FROM t GROUP BY g"
    naive = _run_repr(Engine(db, naive=True), sql)
    assert _run_repr(Engine(db, vectorized=True, result_cache=None), sql) \
        == naive
    assert naive[0] == "ok"


def test_empty_table_vectorized():
    db = Database("emptyv")
    db.add(Table("t", ["a", "b"], []))
    for sql in (
        "SELECT a, b FROM t",
        "SELECT a FROM t WHERE a > 0 ORDER BY b",
        "SELECT a, COUNT(*) FROM t GROUP BY a",
        "SELECT COUNT(*), SUM(a) FROM t",
    ):
        naive = _run_repr(Engine(db, naive=True), sql)
        assert _run_repr(Engine(db, vectorized=True, result_cache=None), sql) \
            == naive
