"""Parser and tokenizer error-recovery tests.

These paths were only hit indirectly before (through differential tests
and agent transcripts). The *messages* matter: the analyzer re-renders
them as SQLA090 diagnostics and the agent observes them verbatim, so
they are part of the simulated-LLM determinism surface.
"""

import pytest

from repro.sqlengine.errors import ParseError, TokenizeError
from repro.sqlengine.parser import parse_select


class TestMalformedTokens:
    def test_unterminated_single_quote(self):
        with pytest.raises(TokenizeError) as excinfo:
            parse_select("SELECT a FROM t WHERE b = 'unterminated")
        assert "unterminated ' quote" in str(excinfo.value)
        assert excinfo.value.position == 26

    def test_unterminated_double_quote(self):
        with pytest.raises(TokenizeError) as excinfo:
            parse_select('SELECT "unclosed FROM t')
        assert "unterminated \" quote" in str(excinfo.value)
        assert excinfo.value.position == 7

    def test_unexpected_character_reports_position(self):
        with pytest.raises(TokenizeError) as excinfo:
            parse_select("SELECT a FROM t ~ junk")
        assert "unexpected character '~'" in str(excinfo.value)
        assert excinfo.value.position == 16


class TestUnbalancedParens:
    def test_unclosed_paren_in_select_list(self):
        with pytest.raises(ParseError, match=r"expected '\)', found 'FROM'"):
            parse_select("SELECT (a FROM t")

    def test_unclosed_paren_at_end_of_input(self):
        with pytest.raises(ParseError, match=r"expected '\)', found ''"):
            parse_select("SELECT a FROM t WHERE (b > 1")

    def test_orphan_close_paren_is_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t )")


class TestTrailingGarbage:
    def test_extra_tokens_after_statement(self):
        # Note: the first trailing word is swallowed as a table alias;
        # the diagnostic points at the first token that cannot be one.
        with pytest.raises(
            ParseError, match="unexpected trailing input starting at"
        ):
            parse_select("SELECT a FROM t extra garbage here")

    def test_trailing_semicolon_is_tolerated(self):
        statement = parse_select("SELECT a FROM t;")
        assert statement.items[0].expression.name == "a"


class TestTruncatedStatements:
    def test_empty_input(self):
        with pytest.raises(ParseError, match="expected SELECT, found ''"):
            parse_select("")

    def test_whitespace_only_input(self):
        with pytest.raises(ParseError, match="expected SELECT, found ''"):
            parse_select("   ")

    def test_missing_select_list(self):
        with pytest.raises(
            ParseError, match="unexpected token 'FROM' in expression"
        ):
            parse_select("SELECT FROM t")

    def test_dangling_comma_in_select_list(self):
        with pytest.raises(
            ParseError, match="unexpected token 'FROM' in expression"
        ):
            parse_select("SELECT a, FROM t")

    def test_missing_table_name(self):
        with pytest.raises(ParseError, match="expected table name, found ''"):
            parse_select("SELECT a FROM")

    def test_join_without_right_table(self):
        with pytest.raises(ParseError, match="expected table name, found ''"):
            parse_select("SELECT a FROM t JOIN")

    def test_dangling_group_by(self):
        with pytest.raises(ParseError, match="unexpected token ''"):
            parse_select("SELECT a FROM t GROUP BY")

    def test_dangling_order_by(self):
        with pytest.raises(ParseError, match="unexpected token ''"):
            parse_select("SELECT a FROM t ORDER BY")

    def test_non_integer_limit(self):
        with pytest.raises(
            ParseError, match="LIMIT requires an integer literal"
        ):
            parse_select("SELECT a FROM t LIMIT xyz")

    def test_truncated_function_call(self):
        with pytest.raises(ParseError):
            parse_select("SELECT COUNT( FROM t")

    def test_non_select_statement(self):
        with pytest.raises(ParseError, match="expected SELECT"):
            parse_select("DROP TABLE t")
