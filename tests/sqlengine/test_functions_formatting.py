"""Tests for scalar/aggregate functions and prompt formatting."""

import pytest

from repro.sqlengine import (
    Database,
    Engine,
    Table,
    create_table_select_3_text,
    create_table_text,
    markdown_table_text,
    prompt_schema_text,
    schema_text,
)
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.formatting import (
    insert_statements_text,
    select_sample_text,
)
from repro.sqlengine.functions import aggregate, call_scalar


class TestAggregateFunction:
    def test_count_counts_non_null(self):
        assert aggregate("COUNT", [1, None, 2], distinct=False) == 2

    def test_count_distinct(self):
        assert aggregate("COUNT", [1, 1, 2, None], distinct=True) == 2

    def test_sum_empty_is_null(self):
        assert aggregate("SUM", [], distinct=False) is None

    def test_avg(self):
        assert aggregate("AVG", [1, 2, 3], distinct=False) == 2

    def test_sum_distinct(self):
        assert aggregate("SUM", [2, 2, 3], distinct=True) == 5

    def test_min_max_strings(self):
        assert aggregate("MIN", ["b", "a"], distinct=False) == "a"
        assert aggregate("MAX", ["b", "a"], distinct=False) == "b"

    def test_sum_text_raises(self):
        with pytest.raises(ExecutionError):
            aggregate("SUM", ["x"], distinct=False)

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            aggregate("MEDIAN", [1], distinct=False)


class TestScalarFunctions:
    @pytest.mark.parametrize("name,args,expected", [
        ("ABS", [-3], 3),
        ("ROUND", [3.456], 3),
        ("ROUND", [3.456, 2], 3.46),
        ("LOWER", ["ABC"], "abc"),
        ("UPPER", ["abc"], "ABC"),
        ("LENGTH", ["abcd"], 4),
        ("LEN", ["ab"], 2),
        ("COALESCE", [None, None, 5], 5),
        ("COALESCE", [None, None], None),
        ("IFNULL", [None, 7], 7),
        ("NULLIF", [3, 3], None),
        ("NULLIF", [3, 4], 3),
        ("SUBSTR", ["abcdef", 2, 3], "bcd"),
        ("SUBSTR", ["abcdef", 4], "def"),
        ("SUBSTRING", ["abc", 1, 1], "a"),
        ("TRIM", ["  x  "], "x"),
    ])
    def test_values(self, name, args, expected):
        assert call_scalar(name, args) == expected

    @pytest.mark.parametrize("name", ["ABS", "ROUND", "LOWER", "UPPER",
                                      "LENGTH", "TRIM"])
    def test_null_propagates(self, name):
        assert call_scalar(name, [None]) is None

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            call_scalar("SOUNDEX", ["x"])

    def test_arity_checked(self):
        with pytest.raises(ExecutionError):
            call_scalar("ABS", [1, 2])
        with pytest.raises(ExecutionError):
            call_scalar("COALESCE", [])

    def test_abs_text_raises(self):
        with pytest.raises(ExecutionError):
            call_scalar("ABS", ["word"])

    def test_round_negative_digits(self):
        assert call_scalar("ROUND", [1234, -2]) == 1200


@pytest.fixture()
def db():
    database = Database("fmt")
    database.add(Table("drinks", ["country", "wine"],
                       [("France", 370), ("USA", 84), ("Italy", 340),
                        ("Spain", 250)]))
    return database


class TestFormatting:
    def test_create_table(self, db):
        text = create_table_text(db.table("drinks"))
        assert text.startswith('CREATE TABLE "drinks"')
        assert '"country" TEXT' in text
        assert '"wine" INTEGER' in text

    def test_schema_text_all_tables(self, db):
        db.add(Table("extra", ["x"], []))
        text = schema_text(db)
        assert "drinks" in text and "extra" in text

    def test_select_sample_limited(self, db):
        text = select_sample_text(db.table("drinks"), limit=2)
        assert "LIMIT 2" in text
        assert "France" in text
        assert "Spain" not in text

    def test_create_table_select_3(self, db):
        text = create_table_select_3_text(db)
        assert "CREATE TABLE" in text
        assert "SELECT * FROM" in text

    def test_prompt_schema_has_rows(self, db):
        text = prompt_schema_text(db, sample_rows=1)
        assert "CREATE TABLE" in text
        assert "France" in text
        assert "USA" not in text  # only one sample row

    def test_markdown(self, db):
        text = markdown_table_text(db.table("drinks"), limit=2)
        assert text.splitlines()[0] == "| country | wine |"
        assert "| France | 370 |" in text
        assert len(text.splitlines()) == 4  # header + sep + 2 rows

    def test_insert_statements(self, db):
        text = insert_statements_text(db.table("drinks"), limit=1)
        assert text.startswith('INSERT INTO "drinks"')
        assert "'France'" in text
