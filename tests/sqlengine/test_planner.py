"""Plan/result caches, normalization, counters, and table memoization."""

import copy
import math

import pytest

from repro.sqlengine import (
    Database,
    Engine,
    PlanCache,
    QueryResultCache,
    Table,
    engine_for,
    engine_stats,
    normalize_sql,
    reset_engine_stats,
    shared_plan_cache,
)
from repro.sqlengine.planner import STRATEGY_COUNTERS


def _database():
    db = Database("planner")
    db.add(Table(
        "t",
        ["name", "score"],
        [("a", 1), ("b", 2), ("c", None), ("b", 4)],
    ))
    return db


# -- normalize_sql ------------------------------------------------------------

def test_normalize_collapses_whitespace():
    assert normalize_sql("SELECT   a\n  FROM\tt") == "SELECT a FROM t"


def test_normalize_strips_leading_and_trailing_space():
    assert normalize_sql("  SELECT a  ") == "SELECT a"


def test_normalize_preserves_quoted_whitespace():
    sql = "SELECT a FROM t WHERE name = 'two  spaces'"
    assert normalize_sql("SELECT  a FROM t WHERE name = 'two  spaces'") == sql


def test_normalize_preserves_quoted_identifier_whitespace():
    sql = 'SELECT "weird  col" FROM t'
    assert normalize_sql('SELECT   "weird  col"  FROM  t') == sql


def test_normalize_handles_doubled_quotes():
    # 'it''s  fine' closes and reopens; the doubled spacing must survive.
    sql = "SELECT a FROM t WHERE name = 'it''s  fine'"
    assert normalize_sql(
        "SELECT  a FROM t WHERE name = 'it''s  fine'"
    ) == sql


def test_normalize_keeps_keyword_case():
    assert normalize_sql("select a from t") == "select a from t"


# -- LRU cache skeleton (now repro.cache.TieredCache behind the facades) ------

def test_lru_eviction_order():
    cache = PlanCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a; b is now least-recent
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats()["evictions"] == 1


def test_lru_stats_track_hits_and_misses():
    cache = PlanCache(4)
    cache.put("k", "v")
    cache.get("k")
    cache.get("absent")
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["size"] == 1
    assert stats["hit_rate"] == 0.5


def test_lru_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        PlanCache(0)


# -- plan cache ---------------------------------------------------------------

def test_plan_cache_shared_across_engines():
    db = _database()
    plan_cache = PlanCache(16)
    first = Engine(db, plan_cache=plan_cache, result_cache=None)
    second = Engine(db, plan_cache=plan_cache, result_cache=None)
    first.execute("SELECT COUNT(*) FROM t")
    before = plan_cache.stats()["hits"]
    second.execute("SELECT  COUNT(*)  FROM t")   # normalizes to same key
    assert plan_cache.stats()["hits"] == before + 1


def test_plan_cache_skips_failed_parses():
    db = _database()
    plan_cache = PlanCache(16)
    engine = Engine(db, plan_cache=plan_cache, result_cache=None)
    with pytest.raises(Exception):
        engine.execute("SELECT FROM WHERE")
    assert len(plan_cache) == 0


def test_naive_engine_bypasses_shared_plan_cache():
    reset_engine_stats()
    db = _database()
    engine = Engine(db, naive=True)
    engine.execute("SELECT COUNT(*) FROM t")
    stats = engine_stats()
    assert stats["plan_cache"]["hits"] == 0
    assert stats["plan_cache"]["misses"] == 0
    assert stats["strategies"]["naive_executions"] == 1


# -- result cache -------------------------------------------------------------

def test_result_cache_hit_returns_equal_rows():
    db = _database()
    engine = Engine(db, result_cache=QueryResultCache(8))
    first = engine.execute("SELECT score FROM t ORDER BY name")
    second = engine.execute("SELECT score FROM t ORDER BY name")
    assert first.rows == second.rows
    assert engine.result_cache.stats()["hits"] == 1


def test_result_cache_copies_are_isolated():
    db = _database()
    engine = Engine(db, result_cache=QueryResultCache(8))
    first = engine.execute("SELECT score FROM t ORDER BY name")
    first.rows.append(("tampered",))
    second = engine.execute("SELECT score FROM t ORDER BY name")
    assert ("tampered",) not in second.rows


def test_result_cache_invalidated_by_database_mutation():
    db = _database()
    engine = Engine(db, result_cache=QueryResultCache(8))
    before = engine.execute("SELECT COUNT(*) FROM t").first_cell()
    db.add(Table("t", ["name", "score"], [("only", 9)]))
    after = engine.execute("SELECT COUNT(*) FROM t").first_cell()
    assert (before, after) == (4, 1)


def test_deepcopied_database_gets_a_fresh_fingerprint():
    db = _database()
    clone = copy.deepcopy(db)
    assert clone.fingerprint() != db.fingerprint()
    cache = QueryResultCache(8)
    Engine(db, result_cache=cache).execute("SELECT COUNT(*) FROM t")
    # The clone's first execution must miss: its entries are its own.
    misses = cache.stats()["misses"]
    Engine(clone, result_cache=cache).execute("SELECT COUNT(*) FROM t")
    assert cache.stats()["misses"] == misses + 1


def test_fingerprint_version_bumps_on_add():
    db = _database()
    token, version = db.fingerprint()
    db.add(Table("u", ["x"], [(1,)]))
    assert db.fingerprint() == (token, version + 1)


# -- engine_for ---------------------------------------------------------------

def test_engine_for_returns_one_engine_per_database():
    db = _database()
    assert engine_for(db) is engine_for(db)


def test_engine_for_distinct_databases_distinct_engines():
    assert engine_for(_database()) is not engine_for(_database())


def test_engine_for_rebinds_result_cache():
    db = _database()
    engine = engine_for(db)
    replacement = QueryResultCache(4)
    assert engine_for(db, replacement) is engine
    assert engine.result_cache is replacement
    assert engine_for(db, None) is engine
    assert engine.result_cache is None
    # UNSET leaves the previous binding alone.
    assert engine_for(db).result_cache is None


def test_engine_for_default_has_caches():
    engine = engine_for(_database())
    assert engine.result_cache is not None
    assert engine.plan_cache is shared_plan_cache()


# -- strategy counters --------------------------------------------------------

def test_strategy_counters_record_hash_join():
    reset_engine_stats()
    db = Database("joins")
    db.add(Table("a", ["k", "v"], [(1, "x"), (2, "y")]))
    db.add(Table("b", ["k", "w"], [(1, 10), (3, 30)]))
    Engine(db, result_cache=None).execute(
        "SELECT v, w FROM a JOIN b ON a.k = b.k"
    )
    snapshot = STRATEGY_COUNTERS.snapshot()
    assert snapshot["hash_joins"] == 1
    assert snapshot["nested_loop_joins"] == 0


def test_engine_stats_shape():
    stats = engine_stats()
    assert set(stats) == {
        "plan_cache", "strategies", "analyzer", "analyzer_memo",
        "optimizer", "stats",
    }
    assert "hit_rate" in stats["plan_cache"]
    assert "pushed_predicates" in stats["strategies"]
    assert "vectorized_executions" in stats["strategies"]
    assert "queries_analyzed" in stats["analyzer"]
    assert "hit_rate" in stats["analyzer_memo"]
    assert "plans_vectorized" in stats["optimizer"]
    assert "columns_profiled" in stats["stats"]


# -- table memoization --------------------------------------------------------

def test_columns_memoized():
    table = Table("t", ["a", "b"], [(1, 2)])
    assert table.columns() is not None
    assert table._columns_cache is not None
    again = table.columns()
    assert [c.name for c in again] == ["a", "b"]


def test_unique_column_values_memoized_and_isolated():
    table = Table("t", ["a"], [(3,), (1,), (3,), (None,)])
    first = table.unique_column_values("a")
    second = table.unique_column_values("a")
    assert first == second
    assert first is not second          # callers get their own list
    first.append("tampered")
    assert table.unique_column_values("a") == second


def test_equality_rows_matches_compare_semantics():
    table = Table("t", ["a"], [(1,), ("1",), (2.0,), (None,), ("x",)])
    # compare_values treats 1 and '1' as equal numbers; the index must too.
    assert table.equality_rows("a", 1) == [0, 1]
    assert table.equality_rows("a", "2") == [2]
    assert table.equality_rows("a", "x") == [4]
    assert table.equality_rows("a", "absent") == []
    # NULL probes and NULL cells never match.
    assert table.equality_rows("a", None) is None


def test_equality_rows_bails_on_nan():
    table = Table("t", ["a"], [(1.0,), (math.nan,)])
    assert table.equality_rows("a", 1.0) is None
    clean = Table("t", ["a"], [(1.0,)])
    assert clean.equality_rows("a", math.nan) is None
