"""Direct tests for scope resolution and correlated evaluation."""

import pytest

from repro.sqlengine import Database, Engine, Table
from repro.sqlengine.errors import PlanError
from repro.sqlengine.expressions import ColumnInfo, Scope


class TestScopeResolution:
    def make_scope(self):
        columns = [
            ColumnInfo("t", "a", "A"),
            ColumnInfo("t", "b", "B"),
            ColumnInfo("u", "a", "A"),
        ]
        return Scope(columns, (1, 2, 3))

    def test_qualified_lookup(self):
        scope = self.make_scope()
        assert scope.resolve("a", "t") == (True, 1)
        assert scope.resolve("a", "u") == (True, 3)

    def test_unqualified_unique(self):
        assert self.make_scope().resolve("b", None) == (True, 2)

    def test_unqualified_ambiguous_raises(self):
        with pytest.raises(PlanError):
            self.make_scope().resolve("a", None)

    def test_miss_returns_not_found(self):
        found, value = self.make_scope().resolve("zzz", None)
        assert not found and value is None

    def test_case_insensitive(self):
        scope = self.make_scope()
        assert scope.resolve("B", "T") == (True, 2)


class TestCorrelatedScopes:
    @pytest.fixture()
    def engine(self):
        database = Database("corr")
        database.add(Table("orders", ["customer", "amount"], [
            ("ann", 10), ("ann", 30), ("bob", 5), ("bob", 50),
        ]))
        database.add(Table("customers", ["name", "tier"], [
            ("ann", "gold"), ("bob", "silver"),
        ]))
        return Engine(database)

    def test_outer_column_visible_in_subquery(self, engine):
        result = engine.execute(
            "SELECT name FROM customers c WHERE 40 < "
            "(SELECT SUM(amount) FROM orders o WHERE o.customer = c.name)"
        )
        assert sorted(r[0] for r in result.rows) == ["bob"]

    def test_inner_scope_shadows_outer(self, engine):
        # 'customer' resolves to the inner table even though the outer
        # relation is also in scope.
        result = engine.execute(
            "SELECT name FROM customers WHERE name IN "
            "(SELECT customer FROM orders WHERE amount > 20)"
        )
        assert sorted(r[0] for r in result.rows) == ["ann", "bob"]

    def test_doubly_nested_correlation(self, engine):
        result = engine.execute(
            "SELECT name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.customer = c.name AND "
            " o.amount = (SELECT MAX(amount) FROM orders i "
            "             WHERE i.customer = c.name))"
        )
        assert len(result.rows) == 2
