"""Tests for AST traversal helpers and SQL rendering."""

from repro.sqlengine import parse_select
from repro.sqlengine import ast_nodes as ast


class TestWalkExpressions:
    def test_yields_all_shallow_nodes(self):
        statement = parse_select(
            "SELECT a + 1 FROM t WHERE b = 'x' AND c IS NOT NULL"
        )
        nodes = list(ast.walk_expressions(statement))
        kinds = {type(n).__name__ for n in nodes}
        assert {"BinaryOp", "ColumnRef", "Literal", "IsNullExpr"} <= kinds

    def test_does_not_enter_subqueries(self):
        statement = parse_select(
            "SELECT a FROM t WHERE b = (SELECT MAX(b) FROM t WHERE c = 9)"
        )
        nodes = list(ast.walk_expressions(statement))
        literals = [n for n in nodes if isinstance(n, ast.Literal)]
        # The literal 9 lives inside the sub-query: not yielded here.
        assert literals == []
        assert any(isinstance(n, ast.ScalarSubquery) for n in nodes)

    def test_covers_joins_group_having_order(self):
        statement = parse_select(
            "SELECT a FROM t JOIN u ON t.id = u.id GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC"
        )
        nodes = list(ast.walk_expressions(statement))
        assert any(isinstance(n, ast.AggregateCall) for n in nodes)
        column_names = {
            n.name for n in nodes if isinstance(n, ast.ColumnRef)
        }
        assert "id" in column_names  # from the join condition

    def test_case_branches_walked(self):
        statement = parse_select(
            "SELECT CASE WHEN a > 1 THEN b ELSE c END FROM t"
        )
        names = {
            n.name for n in ast.walk_expressions(statement)
            if isinstance(n, ast.ColumnRef)
        }
        assert names == {"a", "b", "c"}


class TestWalkSubqueries:
    def test_nested_counted_once_each(self):
        statement = parse_select(
            "SELECT (SELECT COUNT(a) FROM t WHERE b = "
            "(SELECT MAX(b) FROM t)) * 100.0 / (SELECT COUNT(a) FROM t)"
        )
        subqueries = list(ast.walk_subqueries(statement))
        assert len(subqueries) == 3

    def test_in_and_exists_subqueries(self):
        statement = parse_select(
            "SELECT a FROM t WHERE a IN (SELECT x FROM u) AND "
            "EXISTS (SELECT 1 FROM v)"
        )
        assert len(list(ast.walk_subqueries(statement))) == 2

    def test_no_subqueries(self):
        statement = parse_select("SELECT a FROM t")
        assert list(ast.walk_subqueries(statement)) == []


class TestRendering:
    def test_quote_identifier_escapes(self):
        assert ast.quote_identifier('we"ird') == '"we""ird"'

    def test_quote_string_escapes(self):
        assert ast.quote_string("it's") == "'it''s'"

    def test_case_render(self):
        statement = parse_select(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t"
        )
        rendered = statement.to_sql()
        assert "CASE WHEN" in rendered and "ELSE" in rendered

    def test_join_render_round_trip(self):
        sql = ("SELECT t.a FROM t LEFT JOIN u ON t.id = u.id "
               "CROSS JOIN v WHERE t.a IS NOT NULL")
        rendered = parse_select(sql).to_sql()
        assert "LEFT JOIN" in rendered
        assert "CROSS JOIN" in rendered
        assert parse_select(rendered) == parse_select(sql)

    def test_between_and_like_render(self):
        sql = "SELECT a FROM t WHERE a BETWEEN 1 AND 5 OR a NOT LIKE 'x%'"
        rendered = parse_select(sql).to_sql()
        assert "BETWEEN" in rendered and "NOT LIKE" in rendered
        assert parse_select(rendered) == parse_select(sql)
