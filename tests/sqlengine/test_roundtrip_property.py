"""Property-based tests for the SQL engine (hypothesis).

Two core invariants:

* **Round-trip**: ``parse(sql).to_sql()`` parses again to an identical AST
  (rendering is a fixed point after one normalisation).
* **Execution equivalence**: the canonical rendering executes to the same
  result as the original text.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, Engine, Table, parse_select
from repro.sqlengine.ast_nodes import quote_identifier, quote_string

_COLUMNS = ("name", "region", "score", "points")
_NAMES = ("Alpha", "Beta North", "Gamma", "Delta's", 'Quo"te')
_REGIONS = ("east", "west")
_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@st.composite
def fixture_database(draw):
    rows = draw(st.lists(
        st.tuples(
            st.sampled_from(_NAMES),
            st.sampled_from(_REGIONS),
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=50, allow_nan=False,
                      allow_infinity=False),
        ),
        min_size=1,
        max_size=12,
    ))
    database = Database("prop")
    database.add(Table("t", list(_COLUMNS), rows))
    return database


@st.composite
def random_query(draw):
    """Generate SQL text from the supported subset."""
    rng = random.Random(draw(st.integers(0, 2**32)))
    aggregate = rng.choice(_AGGREGATES + (None, None))
    column = rng.choice(("score", "points"))
    if aggregate == "COUNT" and rng.random() < 0.5:
        select = "COUNT(*)"
    elif aggregate:
        select = f"{aggregate}({quote_identifier(column)})"
    else:
        select = quote_identifier(column)
    sql = f"SELECT {select} FROM t"
    predicates = []
    if rng.random() < 0.7:
        predicates.append(
            f"{quote_identifier('region')} = "
            f"{quote_string(rng.choice(_REGIONS))}"
        )
    if rng.random() < 0.4:
        predicates.append(
            f"{quote_identifier('score')} {rng.choice(('<', '>', '<=', '>='))} "
            f"{rng.randint(0, 100)}"
        )
    if rng.random() < 0.2:
        predicates.append(
            f"{quote_identifier('points')} BETWEEN 1 AND {rng.randint(2, 50)}"
        )
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    if aggregate is None and rng.random() < 0.5:
        sql += f" ORDER BY {quote_identifier(column)}"
        if rng.random() < 0.5:
            sql += " DESC"
        sql += f" LIMIT {rng.randint(1, 5)}"
    return sql


@given(random_query())
@settings(max_examples=200, deadline=None)
def test_parse_render_parse_is_fixed_point(sql):
    statement = parse_select(sql)
    rendered = statement.to_sql()
    reparsed = parse_select(rendered)
    assert reparsed == statement
    assert reparsed.to_sql() == rendered


@given(fixture_database(), random_query())
@settings(max_examples=150, deadline=None)
def test_canonical_rendering_executes_identically(database, sql):
    engine = Engine(database)
    original = engine.execute(sql)
    canonical = engine.execute(parse_select(sql).to_sql())
    assert original.rows == canonical.rows


@given(fixture_database(),
       st.sampled_from(_REGIONS))
@settings(max_examples=60, deadline=None)
def test_count_partition_invariant(database, region):
    """COUNT(*) over a partition plus its complement equals the total."""
    engine = Engine(database)
    total = engine.execute_scalar("SELECT COUNT(*) FROM t")
    part = engine.execute_scalar(
        f"SELECT COUNT(*) FROM t WHERE region = {quote_string(region)}"
    )
    rest = engine.execute_scalar(
        f"SELECT COUNT(*) FROM t WHERE NOT (region = {quote_string(region)})"
    )
    assert part + rest == total


@given(fixture_database())
@settings(max_examples=60, deadline=None)
def test_sum_equals_avg_times_count(database):
    engine = Engine(database)
    count = engine.execute_scalar("SELECT COUNT(score) FROM t")
    total = engine.execute_scalar("SELECT SUM(score) FROM t")
    average = engine.execute_scalar("SELECT AVG(score) FROM t")
    assert abs(total - average * count) < 1e-6


@given(fixture_database())
@settings(max_examples=60, deadline=None)
def test_min_max_bound_all_values(database):
    engine = Engine(database)
    low = engine.execute_scalar("SELECT MIN(score) FROM t")
    high = engine.execute_scalar("SELECT MAX(score) FROM t")
    values = [row[0] for row in engine.execute("SELECT score FROM t").rows]
    assert all(low <= v <= high for v in values)


@given(fixture_database())
@settings(max_examples=60, deadline=None)
def test_group_by_partitions_rows(database):
    engine = Engine(database)
    grouped = engine.execute(
        "SELECT region, COUNT(*) FROM t GROUP BY region"
    )
    assert sum(row[1] for row in grouped.rows) == len(database.table("t"))


@given(fixture_database())
@settings(max_examples=60, deadline=None)
def test_distinct_is_idempotent(database):
    engine = Engine(database)
    once = engine.execute("SELECT DISTINCT region FROM t").rows
    assert len(set(once)) == len(once)
