"""Direct unit tests for the engine's exception hierarchy.

Until now these classes were only exercised indirectly (through parser
and executor failures); the hierarchy and the two messages callers key
on are load-bearing enough to pin down explicitly.
"""

import pytest

from repro.sqlengine.errors import (
    EmptyResultError,
    ExecutionError,
    ParseError,
    PlanError,
    SqlError,
    TokenizeError,
)


class TestHierarchy:
    def test_every_engine_error_is_a_sql_error(self):
        # The agent's querying tool catches exactly SqlError; a class
        # escaping the hierarchy would crash the ReAct loop instead of
        # becoming an observation.
        for error_type in (
            TokenizeError, ParseError, PlanError, ExecutionError,
            EmptyResultError,
        ):
            assert issubclass(error_type, SqlError)

    def test_empty_result_is_an_execution_error(self):
        assert issubclass(EmptyResultError, ExecutionError)

    def test_sql_error_is_not_a_value_error(self):
        # Callers must not need except-clauses for builtin categories.
        assert not issubclass(SqlError, (ValueError, RuntimeError))

    def test_catching_sql_error_catches_subclasses(self):
        with pytest.raises(SqlError):
            raise EmptyResultError()
        with pytest.raises(SqlError):
            raise TokenizeError("bad character '~'", 7)


class TestTokenizeError:
    def test_message_embeds_position(self):
        error = TokenizeError("unterminated string literal", 12)
        assert str(error) == "unterminated string literal (at position 12)"

    def test_position_attribute_preserved(self):
        assert TokenizeError("bad", 3).position == 3


class TestEmptyResultError:
    def test_message_matches_figure_4_verbatim(self):
        # The paper's agent (Figure 4) keys on this exact numpy-style
        # text to detect wrong constants in predicates; both the
        # simulated policy and the tool formatter pass it through
        # verbatim. Changing it breaks transcript determinism.
        assert str(EmptyResultError()) == (
            "index 0 is out of bounds for axis 0 with size 0"
        )

    def test_takes_no_arguments(self):
        with pytest.raises(TypeError):
            EmptyResultError("custom message")


class TestPlainErrors:
    def test_messages_pass_through(self):
        assert str(ParseError("expected SELECT")) == "expected SELECT"
        assert str(PlanError("no table 'x'")) == "no table 'x'"
        assert str(ExecutionError("division by zero")) == "division by zero"
