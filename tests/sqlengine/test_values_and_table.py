"""Tests for the value model and table/database containers."""

import pytest

from repro.sqlengine import Database, Table
from repro.sqlengine.errors import ExecutionError, PlanError
from repro.sqlengine.values import (
    cast_value,
    coerce_numeric,
    compare_values,
    infer_column_type,
    to_text,
    values_equal,
)


class TestCoercion:
    def test_int_passthrough(self):
        assert coerce_numeric(5) == 5

    def test_float_passthrough(self):
        assert coerce_numeric(2.5) == 2.5

    def test_numeric_string(self):
        assert coerce_numeric("42") == 42
        assert coerce_numeric("3.5") == 3.5

    def test_thousands_separator(self):
        assert coerce_numeric("1,234") == 1234

    def test_bool_is_not_numeric(self):
        assert coerce_numeric(True) is None

    def test_null(self):
        assert coerce_numeric(None) is None

    def test_text(self):
        assert coerce_numeric("hello") is None

    def test_empty_string(self):
        assert coerce_numeric("") is None


class TestComparison:
    def test_numbers(self):
        assert compare_values(1, 2) < 0
        assert compare_values(2, 2) == 0
        assert compare_values(3, 2) > 0

    def test_number_vs_numeric_string(self):
        assert compare_values(10, "9") > 0

    def test_strings(self):
        assert compare_values("apple", "banana") < 0

    def test_null_raises(self):
        with pytest.raises(ExecutionError):
            compare_values(None, 1)

    def test_values_equal_null_never_equal(self):
        assert not values_equal(None, None)
        assert not values_equal(None, 1)

    def test_values_equal_coerces(self):
        assert values_equal("5", 5)


class TestDisplay:
    def test_null(self):
        assert to_text(None) == "NULL"

    def test_bool(self):
        assert to_text(True) == "true"

    def test_whole_float(self):
        assert to_text(84.0) == "84"

    def test_fractional_float(self):
        assert to_text(2.5) == "2.5"


class TestCast:
    def test_to_integer(self):
        assert cast_value("12", "INTEGER") == 12
        assert cast_value(12.7, "INT") == 12

    def test_to_real(self):
        assert cast_value("2.5", "REAL") == 2.5

    def test_to_text(self):
        assert cast_value(42, "TEXT") == "42"

    def test_to_boolean(self):
        assert cast_value("true", "BOOLEAN") is True
        assert cast_value(0, "BOOL") is False

    def test_null_casts_to_null(self):
        assert cast_value(None, "INTEGER") is None

    def test_bad_numeric_cast_raises(self):
        with pytest.raises(ExecutionError):
            cast_value("hello", "INTEGER")

    def test_unknown_type_raises(self):
        with pytest.raises(ExecutionError):
            cast_value(1, "BLOB")


class TestTypeInference:
    def test_all_ints(self):
        assert infer_column_type([1, 2, None]) == "INTEGER"

    def test_mixed_numeric(self):
        assert infer_column_type([1, 2.5]) == "REAL"

    def test_text_dominates(self):
        assert infer_column_type([1, "x"]) == "TEXT"

    def test_empty_defaults_to_text(self):
        assert infer_column_type([None]) == "TEXT"


class TestTable:
    def test_row_width_checked(self):
        with pytest.raises(PlanError):
            Table("t", ["a", "b"], [(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(PlanError):
            Table("t", ["a", "A"], [])

    def test_column_values(self):
        table = Table("t", ["a"], [(1,), (2,), (1,)])
        assert table.column_values("a") == [1, 2, 1]

    def test_unique_column_values_preserve_order(self):
        table = Table("t", ["a"], [(2,), (1,), (2,), (3,)])
        assert table.unique_column_values("a") == [2, 1, 3]

    def test_column_lookup_case_insensitive(self):
        table = Table("t", ["Wins"], [(1,)])
        assert table.has_column("wins")
        assert table.column_position("WINS") == 0

    def test_missing_column_raises(self):
        table = Table("t", ["a"], [])
        with pytest.raises(PlanError):
            table.column_position("b")

    def test_head(self):
        table = Table("t", ["a"], [(i,) for i in range(10)])
        assert len(table.head(3)) == 3

    def test_columns_carry_types(self):
        table = Table("t", ["name", "n"], [("x", 1)])
        types = {c.name: c.type_name for c in table.columns()}
        assert types == {"name": "TEXT", "n": "INTEGER"}


class TestDatabase:
    def test_lookup_case_insensitive(self):
        database = Database()
        database.add(Table("Drinks", ["a"], []))
        assert database.has_table("drinks")
        assert database.table("DRINKS").name == "Drinks"

    def test_missing_table_raises(self):
        with pytest.raises(PlanError):
            Database().table("nope")

    def test_contains(self):
        database = Database()
        database.add(Table("t", ["a"], []))
        assert "t" in database
        assert "u" not in database
        assert 42 not in database

    def test_table_names_sorted(self):
        database = Database()
        database.add(Table("zeta", ["a"], []))
        database.add(Table("alpha", ["a"], []))
        assert database.table_names() == ["alpha", "zeta"]

    def test_replacing_table(self):
        database = Database()
        database.add(Table("t", ["a"], [(1,)]))
        database.add(Table("t", ["a"], [(1,), (2,)]))
        assert len(database.table("t")) == 2
