"""Executor unit tests over a small fixture database."""

import pytest

from repro.sqlengine import Database, Engine, Table
from repro.sqlengine.errors import (
    EmptyResultError,
    ExecutionError,
    PlanError,
)


@pytest.fixture()
def db():
    database = Database("fixture")
    database.add(Table(
        "airlines",
        ["airline", "region", "fatal", "seats"],
        [
            ("Malaysia Airlines", "Asia", 2, 1500),
            ("KLM", "Europe", 0, 1200),
            ("Aeroflot", "Europe", 6, 900),
            ("Delta", "NA", 1, 3000),
            ("Qantas", "Oceania", 0, 800),
        ],
    ))
    database.add(Table(
        "regions",
        ["region", "continent_population"],
        [
            ("Asia", 4600), ("Europe", 750), ("NA", 580),
        ],
    ))
    return database


@pytest.fixture()
def engine(db):
    return Engine(db)


class TestProjectionAndFilter:
    def test_lookup(self, engine):
        assert engine.execute_scalar(
            "SELECT fatal FROM airlines WHERE airline = 'KLM'"
        ) == 0

    def test_star_expansion(self, engine):
        result = engine.execute("SELECT * FROM airlines")
        assert result.columns == ["airline", "region", "fatal", "seats"]
        assert len(result.rows) == 5

    def test_qualified_star(self, engine):
        result = engine.execute("SELECT a.* FROM airlines a")
        assert len(result.columns) == 4

    def test_expression_projection(self, engine):
        result = engine.execute(
            "SELECT seats / 100 AS hundreds FROM airlines WHERE airline = 'KLM'"
        )
        assert result.columns == ["hundreds"]
        assert result.rows[0][0] == 12

    def test_where_and(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines WHERE region = 'Europe' AND fatal = 0"
        )
        assert result.rows == [("KLM",)]

    def test_where_or(self, engine):
        result = engine.execute(
            "SELECT COUNT(*) FROM airlines WHERE region = 'Asia' OR region = 'NA'"
        )
        assert result.rows[0][0] == 2

    def test_in_list(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines WHERE region IN ('Asia', 'Europe')"
        ) == 3

    def test_between(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines WHERE fatal BETWEEN 1 AND 5"
        ) == 2

    def test_like(self, engine):
        # Lowercase 'a': Malaysia Airlines, Delta, Qantas (not Aeroflot).
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines WHERE airline LIKE '%a%'"
        ) == 3

    def test_like_case_sensitive(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines WHERE airline LIKE 'k%'"
        ) == 0

    def test_unknown_column_raises(self, engine):
        with pytest.raises(PlanError):
            engine.execute("SELECT nope FROM airlines")

    def test_unknown_table_raises(self, engine):
        with pytest.raises(PlanError):
            engine.execute("SELECT a FROM nope")

    def test_case_insensitive_names(self, engine):
        assert engine.execute_scalar(
            "SELECT FATAL FROM AIRLINES WHERE AIRLINE = 'KLM'"
        ) == 0


class TestAggregates:
    def test_count_star(self, engine):
        assert engine.execute_scalar("SELECT COUNT(*) FROM airlines") == 5

    def test_sum(self, engine):
        assert engine.execute_scalar("SELECT SUM(fatal) FROM airlines") == 9

    def test_avg(self, engine):
        assert engine.execute_scalar(
            "SELECT AVG(fatal) FROM airlines"
        ) == pytest.approx(1.8)

    def test_min_max(self, engine):
        assert engine.execute_scalar("SELECT MIN(seats) FROM airlines") == 800
        assert engine.execute_scalar("SELECT MAX(seats) FROM airlines") == 3000

    def test_count_distinct(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(DISTINCT region) FROM airlines"
        ) == 4

    def test_aggregate_over_empty_filter(self, engine):
        assert engine.execute_scalar(
            "SELECT SUM(fatal) FROM airlines WHERE region = 'Mars'"
        ) is None

    def test_count_over_empty_filter_is_zero(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines WHERE region = 'Mars'"
        ) == 0

    def test_group_by(self, engine):
        result = engine.execute(
            "SELECT region, SUM(fatal) FROM airlines GROUP BY region "
            "ORDER BY region"
        )
        assert ("Europe", 6) in result.rows
        assert len(result.rows) == 4

    def test_having(self, engine):
        result = engine.execute(
            "SELECT region FROM airlines GROUP BY region "
            "HAVING COUNT(*) > 1"
        )
        assert result.rows == [("Europe",)]

    def test_order_by_aggregate(self, engine):
        result = engine.execute(
            "SELECT region FROM airlines GROUP BY region "
            "ORDER BY SUM(fatal) DESC LIMIT 1"
        )
        assert result.rows == [("Europe",)]

    def test_percentage_pattern(self, engine):
        value = engine.execute_scalar(
            "SELECT (SELECT COUNT(airline) FROM airlines "
            "WHERE region = 'Europe') * 100.0 / "
            "(SELECT COUNT(airline) FROM airlines)"
        )
        assert value == pytest.approx(40.0)

    def test_aggregate_in_expression(self, engine):
        assert engine.execute_scalar(
            "SELECT MAX(fatal) - MIN(fatal) FROM airlines"
        ) == 6


class TestSubqueries:
    def test_scalar_subquery_in_where(self, engine):
        assert engine.execute_scalar(
            "SELECT airline FROM airlines WHERE seats = "
            "(SELECT MAX(seats) FROM airlines)"
        ) == "Delta"

    def test_in_subquery(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines WHERE region IN "
            "(SELECT region FROM regions)"
        ) == 4

    def test_correlated_subquery(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines a WHERE fatal = "
            "(SELECT MAX(fatal) FROM airlines b WHERE b.region = a.region) "
            "AND region = 'Europe'"
        )
        assert result.rows == [("Aeroflot",)]

    def test_exists(self, engine):
        assert engine.execute_scalar(
            "SELECT COUNT(*) FROM airlines a WHERE EXISTS "
            "(SELECT 1 FROM regions r WHERE r.region = a.region)"
        ) == 4

    def test_scalar_subquery_multiple_rows_raises(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute(
                "SELECT airline FROM airlines WHERE fatal = "
                "(SELECT fatal FROM airlines)"
            )

    def test_empty_scalar_subquery_is_null(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines WHERE fatal = "
            "(SELECT fatal FROM airlines WHERE airline = 'none')"
        )
        assert result.rows == []


class TestJoins:
    def test_inner_join(self, engine):
        result = engine.execute(
            "SELECT a.airline, r.continent_population FROM airlines a "
            "JOIN regions r ON a.region = r.region ORDER BY a.airline"
        )
        assert len(result.rows) == 4

    def test_left_join_keeps_unmatched(self, engine):
        result = engine.execute(
            "SELECT a.airline, r.continent_population FROM airlines a "
            "LEFT JOIN regions r ON a.region = r.region "
            "WHERE r.continent_population IS NULL"
        )
        assert result.rows == [("Qantas", None)]

    def test_cross_join_row_count(self, engine):
        result = engine.execute(
            "SELECT COUNT(*) FROM airlines CROSS JOIN regions"
        )
        assert result.rows[0][0] == 15

    def test_join_with_aggregate(self, engine):
        value = engine.execute_scalar(
            "SELECT SUM(a.fatal) FROM airlines a JOIN regions r "
            "ON a.region = r.region WHERE r.continent_population > 700"
        )
        assert value == 8  # Asia (2) + Europe (0 + 6)

    def test_ambiguous_column_raises(self, engine):
        with pytest.raises(PlanError):
            engine.execute(
                "SELECT region FROM airlines a JOIN regions r "
                "ON a.region = r.region"
            )


class TestOrderLimitDistinct:
    def test_order_by_column(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines ORDER BY seats DESC LIMIT 2"
        )
        assert result.rows == [("Delta",), ("Malaysia Airlines",)]

    def test_order_by_unselected_column(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines ORDER BY fatal DESC LIMIT 1"
        )
        assert result.rows == [("Aeroflot",)]

    def test_order_by_ordinal(self, engine):
        result = engine.execute(
            "SELECT airline, fatal FROM airlines ORDER BY 2 DESC LIMIT 1"
        )
        assert result.rows[0][0] == "Aeroflot"

    def test_order_by_alias(self, engine):
        result = engine.execute(
            "SELECT airline, seats * 2 AS double_seats FROM airlines "
            "ORDER BY double_seats LIMIT 1"
        )
        assert result.rows[0][0] == "Qantas"

    def test_order_by_text_descending(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines ORDER BY airline DESC LIMIT 1"
        )
        assert result.rows == [("Qantas",)]

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT region FROM airlines")
        assert len(result.rows) == 4

    def test_limit_offset(self, engine):
        result = engine.execute(
            "SELECT airline FROM airlines ORDER BY airline LIMIT 2 OFFSET 1"
        )
        assert result.rows == [("Delta",), ("KLM",)]


class TestResultHelpers:
    def test_scalar_on_empty_raises_figure4_error(self, engine):
        with pytest.raises(EmptyResultError) as excinfo:
            engine.execute(
                "SELECT fatal FROM airlines WHERE airline = 'United States'"
            ).scalar()
        assert "index 0 is out of bounds" in str(excinfo.value)

    def test_scalar_on_multi_row_raises(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT airline FROM airlines").scalar()

    def test_first_cell_on_multi_row(self, engine):
        value = engine.execute(
            "SELECT airline FROM airlines ORDER BY airline"
        ).first_cell()
        assert value == "Aeroflot"

    def test_text_table_rendering(self, engine):
        text = engine.execute("SELECT airline FROM airlines").to_text_table()
        assert "airline" in text
        assert "KLM" in text

    def test_text_table_truncation(self, engine):
        text = engine.execute(
            "SELECT airline FROM airlines"
        ).to_text_table(limit=2)
        assert "more rows" in text


class TestNullSemantics:
    @pytest.fixture()
    def nullable(self):
        database = Database("nullable")
        database.add(Table("t", ["a", "b"], [(1, None), (2, 5), (None, 7)]))
        return Engine(database)

    def test_null_comparison_filters_out(self, nullable):
        assert nullable.execute_scalar(
            "SELECT COUNT(*) FROM t WHERE b > 1"
        ) == 2

    def test_aggregate_skips_null(self, nullable):
        assert nullable.execute_scalar("SELECT SUM(b) FROM t") == 12
        assert nullable.execute_scalar("SELECT COUNT(a) FROM t") == 2

    def test_is_null(self, nullable):
        assert nullable.execute_scalar(
            "SELECT COUNT(*) FROM t WHERE a IS NULL"
        ) == 1

    def test_coalesce(self, nullable):
        assert nullable.execute_scalar(
            "SELECT SUM(COALESCE(b, 0)) FROM t"
        ) == 12

    def test_nulls_sort_last_ascending(self, nullable):
        result = nullable.execute("SELECT a FROM t ORDER BY a")
        assert result.rows == [(1,), (2,), (None,)]


class TestArithmetic:
    def test_division_is_float(self, engine):
        assert engine.execute_scalar("SELECT 3 / 2") == 1.5

    def test_division_by_zero_raises(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT 1 / 0")

    def test_modulo(self, engine):
        assert engine.execute_scalar("SELECT 7 % 3") == 1

    def test_case_expression(self, engine):
        assert engine.execute_scalar(
            "SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END"
        ) == "b"

    def test_cast(self, engine):
        assert engine.execute_scalar("SELECT CAST('42' AS INTEGER)") == 42

    def test_concat(self, engine):
        assert engine.execute_scalar("SELECT 'a' || 'b'") == "ab"
