"""Oracle tests: the engine vs a naive pure-Python reference.

For a constrained query family (single table, equality/range filters, one
aggregate), results are recomputed with plain Python over the same rows
and compared. This catches whole-class bugs (wrong NULL handling, wrong
grouping, off-by-one filters) that example-based tests can miss.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, Engine, Table
from repro.sqlengine.ast_nodes import quote_identifier, quote_string

_REGIONS = ("east", "west", "north")


@st.composite
def table_rows(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(_REGIONS),
            st.one_of(st.none(), st.integers(0, 100)),
            st.floats(min_value=-50, max_value=50, allow_nan=False,
                      allow_infinity=False),
        ),
        min_size=0,
        max_size=25,
    ))


@st.composite
def query_spec(draw):
    """(aggregate, filter_region or None, threshold or None, operator)."""
    aggregate = draw(st.sampled_from(
        ("COUNT", "SUM", "AVG", "MIN", "MAX")
    ))
    filter_region = draw(st.one_of(st.none(), st.sampled_from(_REGIONS)))
    threshold = draw(st.one_of(st.none(), st.integers(0, 100)))
    operator = draw(st.sampled_from((">", "<", ">=", "<=")))
    return aggregate, filter_region, threshold, operator


def build_sql(spec):
    aggregate, filter_region, threshold, operator = spec
    sql = f'SELECT {aggregate}("score") FROM "t"'
    predicates = []
    if filter_region is not None:
        predicates.append(
            f'{quote_identifier("region")} = {quote_string(filter_region)}'
        )
    if threshold is not None:
        predicates.append(f'"score" {operator} {threshold}')
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql


def reference_answer(rows, spec):
    aggregate, filter_region, threshold, operator = spec
    comparators = {
        ">": lambda a, b: a > b,
        "<": lambda a, b: a < b,
        ">=": lambda a, b: a >= b,
        "<=": lambda a, b: a <= b,
    }
    selected = []
    for region, score, _ in rows:
        if filter_region is not None and region != filter_region:
            continue
        if threshold is not None:
            if score is None or not comparators[operator](score, threshold):
                continue  # NULL comparisons are not true
        selected.append(score)
    non_null = [s for s in selected if s is not None]
    if aggregate == "COUNT":
        return len(non_null)
    if not non_null:
        return None
    if aggregate == "SUM":
        return sum(non_null)
    if aggregate == "AVG":
        return sum(non_null) / len(non_null)
    if aggregate == "MIN":
        return min(non_null)
    return max(non_null)


@given(table_rows(), query_spec())
@settings(max_examples=300, deadline=None)
def test_engine_matches_reference(rows, spec):
    database = Database("oracle")
    database.add(Table("t", ["region", "score", "noise"], rows))
    engine = Engine(database)
    expected = reference_answer(rows, spec)
    actual = engine.execute(build_sql(spec)).first_cell()
    if expected is None:
        assert actual is None
    elif isinstance(expected, float):
        assert actual is not None
        assert math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-9)
    else:
        assert actual == expected


@given(table_rows())
@settings(max_examples=100, deadline=None)
def test_group_by_matches_reference(rows):
    database = Database("oracle")
    database.add(Table("t", ["region", "score", "noise"], rows))
    result = Engine(database).execute(
        'SELECT "region", COUNT("score"), SUM("score") FROM "t" '
        'GROUP BY "region"'
    )
    expected = {}
    for region, score, _ in rows:
        bucket = expected.setdefault(region, [0, None])
        if score is not None:
            bucket[0] += 1
            bucket[1] = (bucket[1] or 0) + score
    assert len(result.rows) == len(expected)
    for region, count, total in result.rows:
        assert [count, total] == expected[region]


@given(table_rows(), st.integers(0, 24))
@settings(max_examples=100, deadline=None)
def test_order_limit_matches_reference(rows, limit):
    database = Database("oracle")
    database.add(Table("t", ["region", "score", "noise"], rows))
    result = Engine(database).execute(
        f'SELECT "noise" FROM "t" ORDER BY "noise" LIMIT {limit}'
    )
    expected = sorted(noise for _, _, noise in rows)[:limit]
    assert [row[0] for row in result.rows] == expected
