"""Unit tests for the cost-based optimizer (repro.sqlengine.optimizer).

The decisions below are pinned against *seeded* statistics so a change in
the cost model that flips a plan shows up as a test diff, not a silent
performance regression.
"""

from repro.sqlengine import Database, Engine, Table
from repro.sqlengine.optimizer import (
    DEFAULT_SELECTIVITY,
    OPTIMIZER_COUNTERS,
    Estimator,
    choose_build_side,
    order_conjuncts,
    plan_scan,
)
from repro.sqlengine.parser import parse_select
from repro.sqlengine.stats import ColumnStats


def _stats(name="c", rows=100, nulls=0, distinct=10, klass="num",
           minimum=0, maximum=100):
    return ColumnStats(
        name=name, row_count=rows, null_count=nulls,
        distinct_count=distinct, value_class=klass,
        minimum=minimum if klass == "num" else None,
        maximum=maximum if klass == "num" else None,
    )


def _estimator(by_name):
    return Estimator(lambda ref: by_name.get(ref.name.lower()))


def _where(sql):
    return parse_select(f"SELECT 1 FROM t WHERE {sql}").where


# -- selectivity --------------------------------------------------------------

def test_equality_is_one_over_distinct():
    est = _estimator({"c": _stats(distinct=20)})
    assert est.selectivity(_where("c = 5")) == 1 / 20


def test_equality_against_null_literal_is_zero():
    est = _estimator({"c": _stats()})
    assert est.selectivity(_where("c = NULL")) == 0.0


def test_range_uses_covered_fraction():
    est = _estimator({"c": _stats(minimum=0, maximum=100)})
    assert est.selectivity(_where("c < 25")) == 0.25
    assert est.selectivity(_where("c > 25")) == 0.75
    # Column on the right flips the comparison.
    assert est.selectivity(_where("25 > c")) == 0.25


def test_is_null_uses_exact_null_fraction():
    est = _estimator({"c": _stats(rows=100, nulls=30)})
    assert est.selectivity(_where("c IS NULL")) == 0.3
    assert est.selectivity(_where("c IS NOT NULL")) == 0.7


def test_in_list_scales_with_items():
    est = _estimator({"c": _stats(distinct=10)})
    assert est.selectivity(_where("c IN (1, 2, 3)")) == 0.3


def test_and_or_combinators():
    est = _estimator({"c": _stats(distinct=10), "d": _stats(distinct=4)})
    assert est.selectivity(_where("c = 1 AND d = 2")) == 0.1 * 0.25
    expected = 0.1 + 0.25 - 0.1 * 0.25
    assert abs(est.selectivity(_where("c = 1 OR d = 2")) - expected) < 1e-12


def test_unresolved_column_falls_back_to_default():
    est = _estimator({})
    assert est.selectivity(_where("c = 1")) == DEFAULT_SELECTIVITY


def test_between_uses_span_fraction():
    est = _estimator({"c": _stats(minimum=0, maximum=100)})
    assert est.selectivity(_where("c BETWEEN 10 AND 30")) == 0.2


# -- conjunct ordering and access paths --------------------------------------

def test_conjuncts_ordered_most_selective_first():
    est = _estimator({
        "a": _stats(name="a", distinct=2),     # sel 0.5
        "b": _stats(name="b", distinct=100),   # sel 0.01
    })
    conjuncts = [_where("a = 1"), _where("b = 2")]
    ordered = order_conjuncts(conjuncts, est)
    assert [index for index, _ in ordered] == [1, 0]
    assert ordered[0][1] == 0.01


def test_ties_keep_input_order():
    est = _estimator({"a": _stats(name="a"), "b": _stats(name="b")})
    ordered = order_conjuncts([_where("a = 1"), _where("b = 2")], est)
    assert [index for index, _ in ordered] == [0, 1]


def test_probe_taken_when_equality_most_selective():
    est = _estimator({
        "a": _stats(name="a", distinct=1000),
        "b": _stats(name="b", rows=100, nulls=50),
    })
    conjuncts = [_where("b IS NULL"), _where("a = 7")]
    choice = plan_scan(1000, conjuncts, est, probe_candidates=[1])
    assert choice.access == "index_probe"
    assert choice.ordered[0] == 1
    assert choice.estimated_rows == 1000 * (1 / 1000) * 0.5


def test_probe_declined_when_mask_is_more_selective():
    est = _estimator({
        "a": _stats(name="a", distinct=2),          # equality sel 0.5
        "b": _stats(name="b", rows=100, nulls=1),   # IS NULL sel 0.01
    })
    conjuncts = [_where("a = 1"), _where("b IS NULL")]
    choice = plan_scan(1000, conjuncts, est, probe_candidates=[0])
    assert choice.access == "scan"
    assert choice.ordered[0] == 1


# -- join planning ------------------------------------------------------------

def test_build_side_prefers_smaller_input():
    assert choose_build_side("INNER", 1000.0, 10.0) == "right"
    assert choose_build_side("INNER", 10.0, 1000.0) == "left"
    # Ties keep the status-quo right build.
    assert choose_build_side("INNER", 50.0, 50.0) == "right"


def test_left_joins_always_build_right():
    assert choose_build_side("LEFT", 10.0, 1000.0) == "right"


def test_join_rows_divides_by_larger_distinct():
    est = _estimator({})
    key = (_stats(distinct=10), _stats(distinct=40))
    assert est.join_rows(100.0, 200.0, [key]) == 100.0 * 200.0 / 40


def test_seeded_build_side_decision_end_to_end():
    """A small-left/large-right INNER join plans a left-side build."""
    db = Database("sides")
    db.add(Table("small", ["k"], [(i,) for i in range(3)]))
    db.add(Table("large", ["k", "w"], [(i % 50, i) for i in range(400)]))
    engine = Engine(db, vectorized=True, result_cache=None)
    before = OPTIMIZER_COUNTERS.snapshot()
    naive_rows = Engine(db, naive=True).execute(
        "SELECT small.k, w FROM small JOIN large ON small.k = large.k"
    ).rows
    rows = engine.execute(
        "SELECT small.k, w FROM small JOIN large ON small.k = large.k"
    ).rows
    after = OPTIMIZER_COUNTERS.snapshot()
    assert after["build_side_left"] == before["build_side_left"] + 1
    assert after["hash_joins_planned"] == before["hash_joins_planned"] + 1
    assert rows == naive_rows  # the build-side swap must not reorder output


def test_plan_summary_records_decisions():
    db = Database("summary")
    db.add(Table("t", ["a", "b"], [(i, i * 2) for i in range(20)]))
    engine = Engine(db, vectorized=True, result_cache=None)
    sql = "SELECT b FROM t WHERE a = 3 AND b > 10"
    engine.execute(sql)
    label = engine.plan_label(sql)
    assert label.startswith("vectorized/plain")
    assert "t:index_probe" in label


def test_row_path_plans_counted():
    db = Database("rowpath")
    db.add(Table("t", ["a"], [(1,)]))
    engine = Engine(db, vectorized=True, result_cache=None)
    before = OPTIMIZER_COUNTERS.snapshot()
    engine.execute("SELECT (SELECT MAX(a) FROM t) FROM t")
    after = OPTIMIZER_COUNTERS.snapshot()
    assert after["plans_row_path"] > before["plans_row_path"]
    assert engine.plan_label("SELECT (SELECT MAX(a) FROM t) FROM t") == "row"
