"""Tokenizer unit tests."""

import pytest

from repro.sqlengine.errors import TokenizeError
from repro.sqlengine.tokens import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_upcased(self):
        assert values("select from where")[0] == "SELECT"
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        assert values("SELECT Driver") == ["SELECT", "Driver"]

    def test_stream_ends_with_eof(self):
        assert tokenize("SELECT")[-1].type is TokenType.EOF

    def test_empty_input_has_only_eof(self):
        assert kinds("") == [TokenType.EOF]

    def test_whitespace_only(self):
        assert kinds("   \n\t ") == [TokenType.EOF]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "42"

    def test_float_literal(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == ".5"

    def test_scientific_notation(self):
        assert tokenize("1e6")[0].value == "1e6"
        assert tokenize("2.5E-3")[0].value == "2.5E-3"

    def test_exponent_requires_digits(self):
        # "1e" alone: the 'e' is not an exponent, it is an identifier.
        tokens = tokenize("1e")
        assert tokens[0].value == "1"
        assert tokens[1].value == "e"


class TestStringsAndIdentifiers:
    def test_single_quoted_string(self):
        token = tokenize("'Malaysia Airlines'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "Malaysia Airlines"

    def test_doubled_quote_escapes(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_double_quoted_identifier(self):
        token = tokenize('"fatal_accidents_00_14"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "fatal_accidents_00_14"

    def test_backtick_identifier(self):
        assert tokenize("`wins`")[0].value == "wins"

    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_unterminated_identifier_raises(self):
        with pytest.raises(TokenizeError):
            tokenize('"oops')

    def test_quoted_keyword_is_identifier(self):
        token = tokenize('"select"')[0]
        assert token.type is TokenType.IDENTIFIER


class TestOperatorsAndPunctuation:
    @pytest.mark.parametrize("op", ["<>", "!=", ">=", "<=", "=", "<", ">",
                                    "+", "-", "*", "/", "%", "||"])
    def test_operator(self, op):
        token = tokenize(op)[0]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_two_char_operators_not_split(self):
        assert values("a <= b") == ["a", "<=", "b"]

    def test_punctuation(self):
        assert values("( ) , .") == ["(", ")", ",", "."]

    def test_comment_skipped(self):
        assert values("SELECT -- a comment\n 1") == ["SELECT", "1"]

    def test_semicolon_terminates(self):
        assert values("SELECT 1; DROP TABLE x") == ["SELECT", "1"]

    def test_unexpected_character_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT #")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert token.is_keyword("FROM", "SELECT")
        assert not token.is_keyword("FROM")

    def test_identifier_is_not_keyword(self):
        token = Token(TokenType.IDENTIFIER, "SELECT", 0)
        assert not token.is_keyword("SELECT")
