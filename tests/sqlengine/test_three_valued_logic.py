"""Three-valued-logic semantics of the expression evaluator."""

import pytest

from repro.sqlengine import Database, Engine, Table


@pytest.fixture()
def engine():
    database = Database("tvl")
    database.add(Table("t", ["a", "b"], [
        (1, 10), (2, None), (None, 30), (None, None),
    ]))
    return Engine(database)


def rows(engine, where):
    return engine.execute(f"SELECT a, b FROM t WHERE {where}").rows


class TestComparisons:
    def test_null_equals_nothing(self, engine):
        assert rows(engine, "a = a") == [(1, 10), (2, None)]

    def test_null_not_equal_filters_out_too(self, engine):
        # NULL <> NULL is unknown, not true.
        assert rows(engine, "a <> 1") == [(2, None)]


class TestAndOr:
    def test_false_and_null_is_false(self, engine):
        # No row where a=99, so the AND never passes even with NULL side.
        assert rows(engine, "a = 99 AND b = b") == []

    def test_true_or_null_is_true(self, engine):
        # a=1 OR b>0: row (1,10) passes via left; row (None,30) passes via
        # right; row (2,None) fails (false OR unknown = unknown).
        assert rows(engine, "a = 1 OR b > 0") == [(1, 10), (None, 30)]

    def test_not_unknown_is_unknown(self, engine):
        # NOT (b = 10): for b NULL the result stays unknown -> filtered.
        assert rows(engine, "NOT (b = 10)") == [(None, 30)]


class TestInWithNulls:
    def test_in_list_with_null_member(self, engine):
        # a IN (1, NULL): true for 1, unknown otherwise.
        assert rows(engine, "a IN (1, NULL)") == [(1, 10)]

    def test_not_in_list_with_null_member_is_never_true(self, engine):
        assert rows(engine, "a NOT IN (1, NULL)") == []

    def test_not_in_plain_list(self, engine):
        assert rows(engine, "a NOT IN (1)") == [(2, None)]


class TestBetweenAndNullChecks:
    def test_between_with_null_operand(self, engine):
        assert rows(engine, "b BETWEEN 5 AND 40") == [(1, 10), (None, 30)]

    def test_is_null_vs_is_not_null_partition(self, engine):
        null_rows = rows(engine, "a IS NULL")
        not_null_rows = rows(engine, "a IS NOT NULL")
        assert len(null_rows) + len(not_null_rows) == 4


class TestCaseWithNull:
    def test_unknown_when_falls_through(self, engine):
        result = engine.execute(
            "SELECT CASE WHEN b > 0 THEN 'pos' ELSE 'other' END FROM t"
        )
        assert [r[0] for r in result.rows] == [
            "pos", "other", "pos", "other"
        ]
