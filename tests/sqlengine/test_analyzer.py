"""Static analyzer tests: the differential guard and the invalid corpus.

Two contracts anchor the analyzer:

* One-directional soundness — any query the naive interpreter executes
  successfully must produce zero analyzer *errors* (warnings are fine).
  The hypothesis suite drives the same databases and query families as
  ``test_differential`` plus analyzer-specific shapes (subqueries,
  functions, CASE, ordinals) through both the naive engine and
  ``analyze_sql`` and cross-checks.
* Pre-execution rejection — a seeded corpus of invalid queries must be
  rejected with the expected stable diagnostic codes, and (for engine
  errors, as opposed to claim-shape verdicts) the naive engine must
  agree that each one actually fails at runtime.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import (
    ANALYZER_COUNTERS,
    Database,
    Engine,
    QueryResultCache,
    Table,
    analyze_sql,
    render_diagnostics,
    reset_engine_stats,
    shape_diagnostics,
)
from repro.sqlengine.analyzer import subquery_is_cacheable
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import STRATEGY_COUNTERS

from tests.sqlengine.test_differential import (
    CORRELATED,
    _JOIN_QUERIES,
    _correlated_db,
    _run,
    databases,
)

# Analyzer-specific query shapes over the same l(k, cat, v) / r(k, w)
# schema the differential suite generates databases for.
_ANALYZER_QUERIES = _JOIN_QUERIES + (
    "SELECT COUNT(*) FROM l WHERE v IN (1, 2, 3)",
    "SELECT cat, v FROM l WHERE v BETWEEN -2 AND 7 ORDER BY 2 DESC, 1",
    "SELECT CASE WHEN v > 0 THEN 'pos' WHEN v < 0 THEN 'neg' "
    "ELSE 'zero' END FROM l",
    "SELECT SUBSTR(cat, 1, 2) || '-' || UPPER(cat) FROM l "
    "ORDER BY v LIMIT 3",
    "SELECT (SELECT MAX(w) FROM r) FROM l",
    "SELECT k FROM l WHERE EXISTS (SELECT 1 FROM r WHERE r.k = l.k)",
    "SELECT v FROM l WHERE k IN (SELECT k FROM r WHERE w > 10)",
    "SELECT AVG(v) FROM l GROUP BY cat HAVING COUNT(*) >= 1",
    "SELECT COALESCE(k, -1), IFNULL(v, 0) FROM l ORDER BY 1, 2",
    "SELECT CAST(v AS TEXT) FROM l WHERE cat LIKE 'r%'",
    "SELECT DISTINCT cat FROM l ORDER BY cat LIMIT 2 OFFSET 1",
    "SELECT l.cat, r.w FROM l LEFT JOIN r ON l.k = r.k "
    "WHERE r.w IS NULL OR l.v = 0",
    "SELECT -v, v % 3 FROM l WHERE NOT (v = 0)",
    "SELECT MIN(cat), MAX(cat) FROM l",
    "SELECT k / v FROM l",
)


@given(databases(), st.sampled_from(_ANALYZER_QUERIES))
@settings(max_examples=150, deadline=None)
def test_naive_success_implies_zero_analyzer_errors(db, sql):
    """The hard contract: naive-executable queries have no errors."""
    outcome = _run(Engine(db, naive=True), sql)
    analysis = analyze_sql(sql, db)
    if outcome[0] == "ok":
        assert not analysis.errors, (
            sql, [d.render() for d in analysis.errors]
        )


# -- lazy-semantics edge cases ------------------------------------------------


def test_unknown_column_on_empty_table_downgrades_to_warning():
    # The naive engine resolves names per evaluated row, so an empty
    # relation succeeds vacuously; an eager "unknown column" error here
    # would be a false positive.
    db = Database("empty")
    db.add(Table("t", ["a"], []))
    sql = "SELECT missing FROM t"
    assert _run(Engine(db, naive=True), sql)[0] == "ok"
    analysis = analyze_sql(sql, db)
    assert not analysis.errors
    assert any(d.code == "SQLA001" for d in analysis.warnings)


def test_filtered_unknown_column_downgrades_to_warning():
    # A WHERE clause makes row evaluation conditional: the analyzer
    # cannot prove any row survives, so the select-list miss is a
    # warning even though this particular filter passes rows through.
    db = Database("w")
    db.add(Table("t", ["a"], [(1,)]))
    analysis = analyze_sql("SELECT missing FROM t WHERE a > 5", db)
    assert not analysis.errors
    assert any(d.code == "SQLA001" for d in analysis.warnings)


def test_nullable_operand_downgrades_type_error():
    # pop + 'abc' raises only when pop is non-NULL; with NULLs present
    # the analyzer cannot prove the row raising, so: warning territory.
    db = Database("n")
    db.add(Table("t", ["a"], [(None,)]))
    analysis = analyze_sql("SELECT a + 'abc' FROM t", db)
    assert not analysis.errors
    assert _run(Engine(db, naive=True), "SELECT a + 'abc' FROM t")[0] == "ok"


# -- the invalid corpus -------------------------------------------------------


def _corpus_db() -> Database:
    db = Database("corpus")
    db.add(Table("city", ["name", "pop", "country"], [
        ("Tokyo", 37400000, "Japan"),
        ("Delhi", 29000000, "India"),
        ("Lima", 10700000, "Peru"),
    ]))
    db.add(Table("country", ["name", "gdp"], [
        ("Japan", 4900000), ("India", 2900000), ("Peru", 230000),
    ]))
    return db


#: (sql, expected code, naive engine also fails at runtime).  The third
#: flag is False only for claim-shape verdicts (SQLA030/SQLA031), which
#: execute fine and are rejected for the claim's sake, and SQLA003 under
#: a cross join where ambiguity is certain but kept as an engine error.
_INVALID_CORPUS = [
    # SQLA001 — unknown column, guaranteed-evaluated contexts.
    ("SELECT nope FROM city", "SQLA001", True),
    ("SELECT city.nope FROM city", "SQLA001", True),
    ("SELECT name, wrong FROM city", "SQLA001", True),
    ("SELECT UPPER(missing) FROM city", "SQLA001", True),
    ("SELECT pop FROM city ORDER BY missing", "SQLA001", True),
    # SQLA002 — unknown table (eagerly raised while building FROM).
    ("SELECT 1 FROM nowhere", "SQLA002", True),
    ("SELECT pop FROM city JOIN nowhere ON 1 = 1", "SQLA002", True),
    ("SELECT ghost.* FROM city", "SQLA002", True),
    ("SELECT pop FROM city, missing_table", "SQLA002", True),
    # SQLA003 — ambiguous reference over a provably non-empty product.
    ("SELECT name FROM city, country", "SQLA003", True),
    # SQLA010 — type mismatches the evaluator is guaranteed to hit.
    ("SELECT pop + 'abc' FROM city", "SQLA010", True),
    ("SELECT -'abc' FROM city", "SQLA010", True),
    ("SELECT 1/0 FROM city", "SQLA010", True),
    ("SELECT 'x' - 'y' FROM city", "SQLA010", True),
    ("SELECT SUM('abc') FROM city", "SQLA010", True),
    # SQLA011 — unknown functions, bad arity, bad argument types.
    ("SELECT NOSUCHFN(name) FROM city", "SQLA011", True),
    ("SELECT ABS(pop, 2) FROM city", "SQLA011", True),
    ("SELECT ROUND(pop, 1, 2) FROM city", "SQLA011", True),
    ("SELECT SUBSTR(name) FROM city", "SQLA011", True),
    ("SELECT NULLIF(name) FROM city", "SQLA011", True),
    ("SELECT ABS('xyz') FROM city", "SQLA011", True),
    ("SELECT AVG(*) FROM city", "SQLA011", True),
    # SQLA012 — cast to a type the engine does not know.
    ("SELECT CAST(pop AS BLOB) FROM city", "SQLA012", True),
    # SQLA013 — ORDER BY ordinal out of range.
    ("SELECT name FROM city ORDER BY 3", "SQLA013", True),
    ("SELECT name, pop FROM city ORDER BY 0", "SQLA013", True),
    # SQLA020 — aggregates where they cannot appear.
    ("SELECT name FROM city WHERE SUM(pop) > 1", "SQLA020", True),
    ("SELECT name FROM city WHERE COUNT(*) > 0", "SQLA020", True),
    ("SELECT COUNT(*) FROM city GROUP BY SUM(pop)", "SQLA020", True),
    ("SELECT SUM(COUNT(*)) FROM city", "SQLA020", True),
    # SQLA022 — '*' in an aggregate select list.
    ("SELECT *, COUNT(*) FROM city", "SQLA022", True),
    # SQLA030 — provably not a single cell (claim-shape verdict).
    ("SELECT name, pop FROM city", "SQLA030", False),
    ("SELECT * FROM city", "SQLA030", False),
    ("SELECT city.name, city.pop, country.gdp FROM city JOIN country "
     "ON city.country = country.name", "SQLA030", False),
    # SQLA031 — result type can never match a numeric claim.
    ("SELECT name IS NULL FROM city", "SQLA031", False),
    ("SELECT NULL FROM city", "SQLA031", False),
    ("SELECT pop > 0 FROM city", "SQLA031", False),
    # SQLA090 — does not parse at all.
    ("SELEC name FROM city", "SQLA090", True),
    ("SELECT name FROM city WHERE (pop > 1", "SQLA090", True),
    ("DROP TABLE city", "SQLA090", True),
]


def test_corpus_is_large_enough():
    assert len(_INVALID_CORPUS) >= 30


@pytest.mark.parametrize("sql,code,_naive_fails", _INVALID_CORPUS)
def test_invalid_query_rejected_with_expected_code(sql, code, _naive_fails):
    db = _corpus_db()
    analysis = analyze_sql(sql, db)
    diagnostics = analysis.errors or shape_diagnostics(
        analysis, claim_numeric=True
    )
    assert code in {d.code for d in diagnostics}, (
        sql, render_diagnostics(diagnostics)
    )


@pytest.mark.parametrize(
    "sql,code,naive_fails",
    [entry for entry in _INVALID_CORPUS if entry[2]],
)
def test_engine_errors_in_corpus_agree_with_naive(sql, code, naive_fails):
    # Soundness spot-check on the corpus itself: every analyzer *error*
    # claims a guaranteed runtime failure — so the naive oracle must
    # indeed fail each of these.
    assert _run(Engine(_corpus_db(), naive=True), sql)[0] == "error", sql


# -- cacheability verdicts ----------------------------------------------------


def test_correlated_subquery_classified_uncacheable():
    statement = parse_select(CORRELATED)
    subquery = statement.items[1].expression.query
    assert not subquery_is_cacheable(subquery, _correlated_db())


def test_uncorrelated_subquery_classified_cacheable():
    statement = parse_select("SELECT (SELECT MAX(cap) FROM dept) FROM emp")
    subquery = statement.items[0].expression.query
    assert subquery_is_cacheable(subquery, _correlated_db())


def test_correlated_subquery_bypasses_cache_with_explicit_counter():
    reset_engine_stats()
    db = _correlated_db()
    cache = QueryResultCache(32)
    Engine(db, result_cache=cache).execute(CORRELATED)
    # Only the top-level statement lands in the cache; the analyzer's
    # verdict (not convention) routed the inner query around it.
    assert len(cache) == 1
    snapshot = STRATEGY_COUNTERS.snapshot()
    assert snapshot["subquery_cache_bypasses"] > 0
    assert snapshot["subquery_cache_hits"] == 0
    assert snapshot["subquery_cache_misses"] == 0


def test_uncorrelated_subquery_served_from_result_cache():
    reset_engine_stats()
    db = Database("u")
    db.add(Table("l", ["k", "v"], [(1, 10), (2, 20), (3, 30)]))
    db.add(Table("r", ["k", "w"], [(1, 5)]))
    cache = QueryResultCache(32)
    engine = Engine(db, result_cache=cache)
    sql = "SELECT v - (SELECT MAX(w) FROM r) FROM l"
    result = engine.execute(sql)
    assert result.rows == [(5,), (15,), (25,)]
    snapshot = STRATEGY_COUNTERS.snapshot()
    # Three outer rows: the first evaluation misses, the other two hit.
    assert snapshot["subquery_cache_misses"] == 1
    assert snapshot["subquery_cache_hits"] == 2
    # Identical results to the naive oracle, as always.
    assert _run(Engine(db, naive=True), sql) == _run(engine, sql)


def test_naive_engine_never_touches_subquery_cache():
    reset_engine_stats()
    db = _correlated_db()
    Engine(db, naive=True).execute(CORRELATED)
    snapshot = STRATEGY_COUNTERS.snapshot()
    assert snapshot["subquery_cache_bypasses"] == 0
    assert snapshot["subquery_cache_misses"] == 0


# -- memoization and counters -------------------------------------------------


def test_analysis_memoized_and_invalidated_by_schema_change():
    reset_engine_stats()
    db = Database("memo")
    db.add(Table("t", ["a"], [(1,)]))
    first = analyze_sql("SELECT b FROM t", db)
    assert first.errors
    again = analyze_sql("SELECT   b \n FROM t", db)
    assert again is first               # normalized-SQL memo hit
    assert ANALYZER_COUNTERS.snapshot()["memo_hits"] >= 1
    db.add(Table("t", ["a", "b"], [(1, 2)]))
    healed = analyze_sql("SELECT b FROM t", db)
    assert not healed.errors            # fingerprint change invalidated


def test_counters_track_errors_and_warnings():
    reset_engine_stats()
    db = _corpus_db()
    analyze_sql("SELECT nope FROM city", db)
    analyze_sql("SELECT pop FROM city GROUP BY country", db)
    snapshot = ANALYZER_COUNTERS.snapshot()
    assert snapshot["queries_analyzed"] == 2
    assert snapshot["errors"] >= 1
    assert snapshot["warnings"] >= 1


# -- compiled IN-list regression ---------------------------------------------


def test_in_list_items_evaluate_eagerly_like_naive():
    # The compiled IN used to early-exit on the first match, skipping a
    # later raising item the naive engine always evaluates.
    db = Database("in")
    db.add(Table("t", ["k"], [(1,)]))
    sql = "SELECT k IN (1, 1/0) FROM t"
    naive = _run(Engine(db, naive=True), sql)
    assert naive[0] == "error"
    assert _run(Engine(db, result_cache=None), sql) == naive
