"""Tests for CSV import/export."""

import pytest

from repro.sqlengine import (
    Database,
    Engine,
    Table,
    dump_csv,
    dump_database,
    load_csv,
    load_csv_directory,
)
from repro.sqlengine.errors import PlanError


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "airlines.csv"
    path.write_text(
        "airline,fatal,rate\n"
        "Malaysia Airlines,2,0.5\n"
        "KLM,0,0.1\n"
        "Aeroflot,6,\n"
    )
    return path


class TestLoadCsv:
    def test_basic(self, csv_file):
        table = load_csv(csv_file)
        assert table.name == "airlines"
        assert table.column_names == ["airline", "fatal", "rate"]
        assert len(table) == 3

    def test_type_sniffing(self, csv_file):
        table = load_csv(csv_file)
        assert table.rows[0][1] == 2           # int column
        assert table.rows[0][2] == 0.5         # float column
        assert table.rows[0][0] == "Malaysia Airlines"

    def test_empty_cell_becomes_null(self, csv_file):
        table = load_csv(csv_file)
        assert table.rows[2][2] is None

    def test_custom_name(self, csv_file):
        assert load_csv(csv_file, table_name="t").name == "t"

    def test_queryable_after_load(self, csv_file):
        database = Database("d")
        database.add(load_csv(csv_file))
        assert Engine(database).execute_scalar(
            "SELECT SUM(fatal) FROM airlines"
        ) == 8

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(PlanError):
            load_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(PlanError):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        table = load_csv(path)
        assert len(table) == 0
        assert table.column_names == ["a", "b"]

    def test_mixed_column_stays_text(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("v\n1\ntwo\n")
        table = load_csv(path)
        assert table.rows[0][0] == "1"  # stays text; one cell is not numeric

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;b\n1;2\n")
        table = load_csv(path, delimiter=";")
        assert table.rows == [(1, 2)]


class TestRoundTrip:
    def test_dump_and_reload(self, tmp_path):
        table = Table("t", ["name", "n", "x"],
                      [("a", 1, 2.5), ("b", None, None)])
        target = tmp_path / "t.csv"
        dump_csv(table, target)
        reloaded = load_csv(target)
        assert reloaded.rows == table.rows

    def test_directory_round_trip(self, tmp_path):
        database = Database("d")
        database.add(Table("one", ["a"], [(1,)]))
        database.add(Table("two", ["b"], [("x",)]))
        written = dump_database(database, tmp_path / "out")
        assert len(written) == 2
        reloaded = load_csv_directory(tmp_path / "out")
        assert set(reloaded.table_names()) == {"one", "two"}

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(PlanError):
            load_csv_directory(tmp_path)
