"""Parser unit tests."""

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import ParseError
from repro.sqlengine.parser import parse_select


class TestSelectList:
    def test_single_column(self):
        statement = parse_select("SELECT a FROM t")
        assert statement.items[0].expression == ast.ColumnRef("a")

    def test_multiple_columns(self):
        statement = parse_select("SELECT a, b, c FROM t")
        assert len(statement.items) == 3

    def test_star(self):
        statement = parse_select("SELECT * FROM t")
        assert isinstance(statement.items[0].expression, ast.Star)

    def test_qualified_star(self):
        statement = parse_select("SELECT t.* FROM t")
        assert statement.items[0].expression == ast.Star(table="t")

    def test_alias_with_as(self):
        statement = parse_select("SELECT a AS total FROM t")
        assert statement.items[0].alias == "total"

    def test_alias_without_as(self):
        statement = parse_select("SELECT a total FROM t")
        assert statement.items[0].alias == "total"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_select_without_from(self):
        statement = parse_select("SELECT 1 + 1")
        assert statement.from_table is None

    def test_quoted_identifiers(self):
        statement = parse_select('SELECT "Fatal Accidents" FROM "my table"')
        assert statement.items[0].expression == ast.ColumnRef("Fatal Accidents")
        assert statement.from_table.name == "my table"


class TestClauses:
    def test_where(self):
        statement = parse_select("SELECT a FROM t WHERE b = 1")
        assert isinstance(statement.where, ast.BinaryOp)
        assert statement.where.op == "="

    def test_group_by(self):
        statement = parse_select("SELECT a FROM t GROUP BY a, b")
        assert len(statement.group_by) == 2

    def test_having(self):
        statement = parse_select(
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert statement.having is not None

    def test_order_by_directions(self):
        statement = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in statement.order_by] == [True, False,
                                                              False]

    def test_limit_offset(self):
        statement = parse_select("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert statement.limit == 10
        assert statement.offset == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t LIMIT x")


class TestJoins:
    def test_inner_join(self):
        statement = parse_select(
            "SELECT a FROM t JOIN u ON t.id = u.id"
        )
        assert statement.joins[0].kind == "INNER"

    def test_explicit_inner(self):
        statement = parse_select(
            "SELECT a FROM t INNER JOIN u ON t.id = u.id"
        )
        assert statement.joins[0].kind == "INNER"

    def test_left_join(self):
        statement = parse_select(
            "SELECT a FROM t LEFT JOIN u ON t.id = u.id"
        )
        assert statement.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        statement = parse_select(
            "SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.id"
        )
        assert statement.joins[0].kind == "LEFT"

    def test_cross_join(self):
        statement = parse_select("SELECT a FROM t CROSS JOIN u")
        assert statement.joins[0].kind == "CROSS"

    def test_comma_join(self):
        statement = parse_select("SELECT a FROM t, u WHERE t.id = u.id")
        assert statement.joins[0].kind == "CROSS"

    def test_multiple_joins(self):
        statement = parse_select(
            "SELECT a FROM t JOIN u ON t.id = u.id JOIN v ON u.id = v.id"
        )
        assert len(statement.joins) == 2

    def test_table_aliases(self):
        statement = parse_select(
            "SELECT f.a FROM facts AS f JOIN dims d ON f.id = d.id"
        )
        assert statement.from_table.alias == "f"
        assert statement.joins[0].table.alias == "d"


class TestExpressions:
    def test_precedence_arithmetic(self):
        statement = parse_select("SELECT 1 + 2 * 3")
        top = statement.items[0].expression
        assert top.op == "+"
        assert top.right.op == "*"

    def test_precedence_and_or(self):
        statement = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert statement.where.op == "OR"
        assert statement.where.right.op == "AND"

    def test_not(self):
        statement = parse_select("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(statement.where, ast.UnaryOp)

    def test_unary_minus(self):
        statement = parse_select("SELECT -x FROM t")
        assert isinstance(statement.items[0].expression, ast.UnaryOp)

    def test_bang_equals_normalised(self):
        statement = parse_select("SELECT a FROM t WHERE x != 1")
        assert statement.where.op == "<>"

    def test_in_list(self):
        statement = parse_select("SELECT a FROM t WHERE x IN (1, 2, 3)")
        assert isinstance(statement.where, ast.InExpr)
        assert len(statement.where.items) == 3

    def test_not_in(self):
        statement = parse_select("SELECT a FROM t WHERE x NOT IN (1)")
        assert statement.where.negated

    def test_in_subquery(self):
        statement = parse_select(
            "SELECT a FROM t WHERE x IN (SELECT y FROM u)"
        )
        assert statement.where.subquery is not None

    def test_between(self):
        statement = parse_select("SELECT a FROM t WHERE x BETWEEN 1 AND 5")
        assert isinstance(statement.where, ast.BetweenExpr)

    def test_like(self):
        statement = parse_select("SELECT a FROM t WHERE x LIKE 'M%'")
        assert isinstance(statement.where, ast.LikeExpr)

    def test_is_null(self):
        statement = parse_select("SELECT a FROM t WHERE x IS NULL")
        assert isinstance(statement.where, ast.IsNullExpr)
        assert not statement.where.negated

    def test_is_not_null(self):
        statement = parse_select("SELECT a FROM t WHERE x IS NOT NULL")
        assert statement.where.negated

    def test_case_expression(self):
        statement = parse_select(
            "SELECT CASE WHEN x > 1 THEN 'big' ELSE 'small' END FROM t"
        )
        expression = statement.items[0].expression
        assert isinstance(expression, ast.CaseExpr)
        assert expression.default is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_select("SELECT CASE END FROM t")

    def test_cast(self):
        statement = parse_select("SELECT CAST(x AS INTEGER) FROM t")
        assert isinstance(statement.items[0].expression, ast.CastExpr)

    def test_exists(self):
        statement = parse_select(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)"
        )
        assert isinstance(statement.where, ast.ExistsExpr)

    def test_scalar_subquery(self):
        statement = parse_select(
            "SELECT a FROM t WHERE x = (SELECT MAX(x) FROM t)"
        )
        assert isinstance(statement.where.right, ast.ScalarSubquery)

    def test_boolean_literals(self):
        statement = parse_select("SELECT TRUE, FALSE, NULL")
        assert [i.expression.value for i in statement.items] == [True, False,
                                                                 None]

    def test_string_concat(self):
        statement = parse_select("SELECT 'a' || 'b'")
        assert statement.items[0].expression.op == "||"


class TestAggregatesAndFunctions:
    def test_count_star(self):
        statement = parse_select("SELECT COUNT(*) FROM t")
        expression = statement.items[0].expression
        assert isinstance(expression, ast.AggregateCall)
        assert isinstance(expression.argument, ast.Star)

    def test_count_distinct(self):
        statement = parse_select("SELECT COUNT(DISTINCT a) FROM t")
        assert statement.items[0].expression.distinct

    @pytest.mark.parametrize("agg", ["SUM", "AVG", "MIN", "MAX"])
    def test_aggregates(self, agg):
        statement = parse_select(f"SELECT {agg}(a) FROM t")
        assert statement.items[0].expression.name == agg

    def test_aggregate_lowercase(self):
        statement = parse_select("SELECT sum(a) FROM t")
        assert statement.items[0].expression.name == "SUM"

    def test_scalar_function(self):
        statement = parse_select("SELECT ROUND(a, 2) FROM t")
        expression = statement.items[0].expression
        assert isinstance(expression, ast.FunctionCall)
        assert len(expression.args) == 2

    def test_zero_arg_function(self):
        statement = parse_select("SELECT FOO()")
        assert statement.items[0].expression.args == ()


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",                    # nothing selected
        "FROM t",                    # no SELECT
        "SELECT a FROM",             # missing table
        "SELECT a FROM t WHERE",     # missing predicate
        "SELECT a FROM t GROUP",     # incomplete GROUP BY
        "SELECT (a FROM t",          # unbalanced paren
        "SELECT a b c FROM t",       # garbage after alias
        "SELECT a FROM t extra junk here",
    ])
    def test_invalid_sql(self, bad):
        with pytest.raises(ParseError):
            parse_select(bad)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t) AND x = 1")
