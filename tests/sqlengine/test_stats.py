"""Unit tests for the statistics layer (repro.sqlengine.stats)."""

import math

from repro.sqlengine import Table, table_stats
from repro.sqlengine.stats import STATS_COUNTERS, TableStats


def _column(values, name="c"):
    return table_stats(Table("t", [name], [(v,) for v in values])).column(name)


# -- value classes ------------------------------------------------------------

def test_num_class_with_min_max():
    stats = _column([3, 1.5, None, 2, 3])
    assert stats.value_class == "num"
    assert stats.minimum == 1.5
    assert stats.maximum == 3
    assert stats.row_count == 5
    assert stats.null_count == 1


def test_text_class():
    stats = _column(["ab", None, "c", "ab"])
    assert stats.value_class == "text"
    assert stats.minimum is None and stats.maximum is None


def test_empty_class_for_all_null_and_zero_rows():
    assert _column([None, None]).value_class == "empty"
    assert _column([]).value_class == "empty"


def test_nan_demotes_to_other():
    assert _column([1, 2, math.nan]).value_class == "other"


def test_inf_demotes_to_other():
    # inf passes a naive NaN check but produces NaN downstream (inf - inf),
    # so it must also break the "num" contract.
    assert _column([1.0, math.inf]).value_class == "other"


def test_bool_demotes_to_other():
    assert _column([1, 2, True]).value_class == "other"


def test_numeric_string_demotes_to_other():
    # "42" compares equal to 42 under compare_values, which direct string
    # or numeric comparison cannot honour.
    assert _column(["42", "x"]).value_class == "other"


def test_num_text_mix_is_other():
    assert _column([1, "x"]).value_class == "other"


# -- counts -------------------------------------------------------------------

def test_distinct_excludes_null():
    stats = _column([1, 1, 2, None, None])
    assert stats.distinct_count == 2
    assert stats.null_count == 2
    assert stats.non_null_count == 3
    assert stats.null_fraction == 0.4


def test_numeric_equality_classes_unify_int_and_float():
    # 1 and 1.0 are one equality class (unique_column_values semantics).
    assert _column([1, 1.0, 2]).distinct_count == 2


def test_null_fraction_of_empty_table_is_zero():
    assert _column([]).null_fraction == 0.0


# -- memoization and counters -------------------------------------------------

def test_table_stats_memoized_per_table():
    table = Table("t", ["a"], [(1,)])
    first = table_stats(table)
    assert table_stats(table) is first
    assert isinstance(first, TableStats)


def test_column_profile_memoized_and_counted():
    table = Table("t", ["a", "b"], [(1, "x"), (2, "y")])
    stats = table_stats(table)
    before = STATS_COUNTERS.snapshot()
    profile = stats.column("a")
    again = stats.column("A")  # case-insensitive, same memo entry
    after = STATS_COUNTERS.snapshot()
    assert again is profile
    assert after["columns_profiled"] == before["columns_profiled"] + 1
    assert after["build_seconds"] >= before["build_seconds"]
