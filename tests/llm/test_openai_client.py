"""Tests for the OpenAI adapter using the recording transport double."""

import pytest

from repro.llm import (
    CostLedger,
    OpenAIChatClient,
    RecordingTransport,
    TransportError,
)


def make_client(responses, **kwargs):
    transport = RecordingTransport(responses)
    client = OpenAIChatClient("gpt-4o", transport, api_key="sk-test",
                              **kwargs)
    return client, transport


class TestOpenAIChatClient:
    def test_round_trip(self):
        client, transport = make_client(["SELECT 1"])
        response = client.complete("translate this claim", 0.0)
        assert response.text == "SELECT 1"
        payload = transport.payloads[0]
        assert payload["model"] == "gpt-4o"
        assert payload["temperature"] == 0.0
        assert payload["messages"][-1]["content"] == "translate this claim"

    def test_system_prompt_prepended(self):
        client, transport = make_client(
            ["ok"], system_prompt="You are a SQL assistant."
        )
        client.complete("hi")
        messages = transport.payloads[0]["messages"]
        assert messages[0] == {
            "role": "system", "content": "You are a SQL assistant."
        }

    def test_usage_billed_via_price_table(self):
        ledger = CostLedger()
        transport = RecordingTransport(["a short response"])
        client = OpenAIChatClient("gpt-4o", transport, ledger=ledger)
        client.complete("a prompt of several words")
        assert ledger.total_cost > 0
        assert ledger.entries[0].model == "gpt-4o"

    def test_transient_failures_retried(self):
        client, transport = make_client(
            [ConnectionError("boom"), "recovered"], max_retries=2
        )
        assert client.complete("p").text == "recovered"
        assert len(transport.payloads) == 2

    def test_retries_exhausted(self):
        client, _ = make_client(
            [ConnectionError("a"), ConnectionError("b")], max_retries=1
        )
        with pytest.raises(RuntimeError):
            client.complete("p")

    def test_malformed_response_not_retried(self):
        transport = RecordingTransport([])

        def bad_transport(payload, api_key):
            transport.payloads.append(payload)
            return {"unexpected": "shape"}

        client = OpenAIChatClient("gpt-4o", bad_transport, max_retries=3)
        with pytest.raises(TransportError):
            client.complete("p")
        assert len(transport.payloads) == 1  # structural errors fail fast

    def test_non_text_content_rejected(self):
        def weird_transport(payload, api_key):
            return {"choices": [{"message": {"content": ["not", "text"]}}]}

        client = OpenAIChatClient("gpt-4o", weird_transport)
        with pytest.raises(TransportError):
            client.complete("p")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            make_client(["x"], max_retries=-1)

    def test_usable_as_verification_client(self):
        """The adapter slots into a CEDAR method unchanged."""
        from repro.core import OneShotMethod, mask_claim
        from repro.core.claims import Claim, Span
        from repro.sqlengine import Database, Table

        database = Database("d")
        database.add(Table("t", ["a", "b"], [("x", 1)]))
        claim = Claim("The x row scores 1 point.", Span(4, 4),
                      "ctx", "c0")
        client, transport = make_client(
            ["```sql\nSELECT b FROM t WHERE a = 'x'\n```"]
        )
        method = OneShotMethod(client)
        result = method.translate(
            mask_claim(claim), "numeric", claim.value, claim.value_text,
            database, None, 0.0,
        )
        assert result.query == "SELECT b FROM t WHERE a = 'x'"
        # The masked claim, not the raw value, reached the API.
        assert "1 point" not in transport.payloads[0]["messages"][-1]["content"]
