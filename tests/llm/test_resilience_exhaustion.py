"""Exhaustion and permanent-failure paths of the resilience layer.

The happy retry path is covered elsewhere; these tests pin down what
happens when retrying *doesn't* save the call: the full RetryEvent trail
(one event per failed attempt, the last flagged ``gave_up``), tag
attribution on those events, deterministic backoff delays, and the
immediate propagation of permanent failures.
"""

import hashlib

import pytest

from repro.llm import (
    CostLedger,
    ResilientLLMClient,
    RetriesExhaustedError,
    RetryPolicy,
    TransportError,
)
from repro.llm.base import LLMClient
from repro.llm.resilience import PermanentLLMError, classify_failure


class FailingLLM(LLMClient):
    """Raises the scripted errors in order; succeeds once they run out."""

    def __init__(self, errors, ledger=None):
        super().__init__("gpt-3.5-turbo", ledger)
        self._errors = list(errors)
        self.calls = 0

    def _generate(self, prompt: str, temperature: float) -> str:
        self.calls += 1
        if self._errors:
            raise self._errors.pop(0)
        return "recovered"


def make_policy(max_attempts, sleeps):
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.05,
        seed=7,
        sleep=sleeps.append,
    )


class TestExhaustion:
    def test_exhausted_raises_with_attempt_count_and_cause(self):
        ledger = CostLedger()
        errors = [TransportError(f"boom {i}") for i in range(5)]
        client = ResilientLLMClient(
            FailingLLM(errors, ledger), make_policy(3, [])
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.complete("prompt")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransportError)
        assert str(excinfo.value.last_error) == "boom 2"
        assert excinfo.value.__cause__ is excinfo.value.last_error
        assert client.unwrap().calls == 3

    def test_full_retry_event_trail(self):
        ledger = CostLedger()
        sleeps: list[float] = []
        policy = make_policy(4, sleeps)
        client = ResilientLLMClient(
            FailingLLM([TransportError("down")] * 9, ledger), policy
        )
        with ledger.tagged("doc:d1"), ledger.tagged("claim:d1/c0"):
            with pytest.raises(RetriesExhaustedError):
                client.complete("prompt")

        # One event per failed attempt, in order, all tagged like the
        # call they shadow; only the final one gave up.
        assert [e.attempt for e in ledger.events] == [1, 2, 3, 4]
        assert [e.gave_up for e in ledger.events] == [
            False, False, False, True
        ]
        assert all(e.model == "gpt-3.5-turbo" for e in ledger.events)
        assert all(
            e.tags == ("doc:d1", "claim:d1/c0") for e in ledger.events
        )
        assert all("down" in e.error for e in ledger.events)

        # Backoff was actually applied for every non-final failure (and
        # never for the surrender), with the policy's deterministic
        # seeded delays.
        token = hashlib.blake2s(b"prompt", digest_size=8).hexdigest()
        expected = [policy.delay_for(a, token) for a in (1, 2, 3)]
        assert sleeps == expected
        assert [e.delay_seconds for e in ledger.events] == expected + [0.0]

        # Nothing completed, so nothing was billed.
        assert ledger.entries == []
        assert ledger.retry_count == 4

    def test_exhaustion_event_trail_is_reproducible(self):
        def trail():
            ledger = CostLedger()
            client = ResilientLLMClient(
                FailingLLM([TransportError("x")] * 5, ledger),
                make_policy(3, []),
            )
            with pytest.raises(RetriesExhaustedError):
                client.complete("same prompt")
            return [(e.attempt, e.delay_seconds, e.gave_up)
                    for e in ledger.events]

        assert trail() == trail()

    def test_recovery_before_exhaustion_leaves_no_gave_up(self):
        ledger = CostLedger()
        client = ResilientLLMClient(
            FailingLLM([TransportError("a"), TransportError("b")], ledger),
            make_policy(4, []),
        )
        response = client.complete("prompt")
        assert response.text == "recovered"
        assert [e.attempt for e in ledger.events] == [1, 2]
        assert not any(e.gave_up for e in ledger.events)
        # The successful third attempt is the only billed call.
        assert len(ledger.entries) == 1


class TestPermanentFailures:
    def test_permanent_error_propagates_without_retry(self):
        ledger = CostLedger()
        client = ResilientLLMClient(
            FailingLLM([PermanentLLMError("bad request")] * 3, ledger),
            make_policy(5, []),
        )
        with pytest.raises(PermanentLLMError):
            client.complete("prompt")
        assert client.unwrap().calls == 1
        assert ledger.events == []

    def test_value_error_is_permanent(self):
        client = ResilientLLMClient(
            FailingLLM([ValueError("schema mismatch")]), make_policy(3, [])
        )
        with pytest.raises(ValueError):
            client.complete("prompt")
        assert client.unwrap().calls == 1

    def test_exhaustion_error_itself_is_permanent(self):
        # A stacked resilience layer must not retry an inner layer's
        # surrender: that would multiply attempt budgets.
        error = RetriesExhaustedError(3, TransportError("inner"))
        assert classify_failure(error) is False
