"""Focused tests for the corruption failure modes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import ClaimKnowledge, corrupt_query
from repro.llm.corruption import (
    _mangle_string,
    _weighted_choice,
)
from repro.sqlengine import parse_select
from repro.sqlengine.errors import SqlError


def knowledge_for(sql, difficulty=0.8, **overrides):
    defaults = dict(
        claim_id="k/c0",
        masked_sentence="masked x.",
        unmasked_sentence="masked 5.",
        reference_sql=sql,
        claim_value_text="5",
        claim_type="numeric",
        difficulty=difficulty,
        table_name="t",
        columns=("a", "b", "c"),
    )
    defaults.update(overrides)
    return ClaimKnowledge(**defaults)


REFERENCE_QUERIES = [
    'SELECT "a" FROM "t" WHERE "b" = \'x\'',
    'SELECT COUNT("a") FROM "t"',
    'SELECT SUM("a") FROM "t" WHERE "b" = \'x\' AND "c" > 3',
    'SELECT (SELECT COUNT("a") FROM "t" WHERE "b" = \'x\') * 100.0 / '
    '(SELECT COUNT("a") FROM "t")',
    'SELECT "a" FROM "t" WHERE "c" = (SELECT MAX("c") FROM "t")',
]


class TestCorruptQuery:
    @pytest.mark.parametrize("sql", REFERENCE_QUERIES)
    def test_corruptions_mostly_parse_or_truncate(self, sql):
        rng = random.Random(1)
        knowledge = knowledge_for(sql)
        parseable = 0
        for _ in range(30):
            corrupted = corrupt_query(knowledge, rng)
            try:
                parse_select(corrupted)
                parseable += 1
            except SqlError:
                pass  # truncations are intentionally malformed
        # Truncation is a legitimate (and common) failure mode at this
        # difficulty; just require that a healthy share stays parseable.
        assert parseable >= 8

    def test_unparseable_reference_truncated(self):
        knowledge = knowledge_for("NOT SQL AT ALL ((((")
        corrupted = corrupt_query(knowledge, random.Random(0))
        # Unparseable references can only be truncated (half the length).
        assert corrupted == knowledge.reference_sql[:len(
            knowledge.reference_sql) // 2]

    def test_easy_claims_fail_at_the_surface(self):
        """Low-difficulty claims mostly yield malformed or constant-level
        corruptions, not semantic column/aggregate swaps."""
        easy = knowledge_for('SELECT SUM("a") FROM "t"', difficulty=0.05)
        rng = random.Random(3)
        semantic = 0
        for _ in range(60):
            corrupted = corrupt_query(easy, rng)
            if '"b"' in corrupted or '"c"' in corrupted:
                semantic += 1
            elif "COUNT(" in corrupted or "AVG(" in corrupted:
                semantic += 1
        assert semantic < 20

    def test_hard_claims_fail_semantically(self):
        hard = knowledge_for('SELECT SUM("a") FROM "t"', difficulty=0.9,
                             ambiguous=True)
        rng = random.Random(3)
        semantic = 0
        for _ in range(60):
            corrupted = corrupt_query(hard, rng)
            if ('"b"' in corrupted or '"c"' in corrupted
                    or "COUNT(" in corrupted):
                semantic += 1
        assert semantic > 25

    def test_join_failures_biased_to_structure(self):
        joined = knowledge_for(
            'SELECT "a" FROM "t" WHERE "b" = \'x\'',
            difficulty=0.6, join_required=True,
        )
        flat = knowledge_for(
            'SELECT "a" FROM "t" WHERE "b" = \'x\'', difficulty=0.6
        )
        rng_a, rng_b = random.Random(5), random.Random(5)
        join_semantic = sum(
            '"c"' in corrupt_query(joined, rng_a) for _ in range(80)
        )
        flat_semantic = sum(
            '"c"' in corrupt_query(flat, rng_b) for _ in range(80)
        )
        assert join_semantic <= flat_semantic


class TestHelpers:
    def test_mangle_string_changes_value(self):
        rng = random.Random(0)
        for _ in range(20):
            assert _mangle_string("United States", rng) != "United States"

    def test_weighted_choice_respects_weights(self):
        rng = random.Random(0)
        outcomes = [
            _weighted_choice([(0.0, "never"), (1.0, "always")], rng)
            for _ in range(50)
        ]
        assert set(outcomes) == {"always"}


@given(st.sampled_from(REFERENCE_QUERIES), st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_corruption_never_returns_empty(sql, seed):
    knowledge = knowledge_for(sql)
    corrupted = corrupt_query(knowledge, random.Random(seed))
    assert corrupted.strip()
    assert corrupted.upper().startswith("SELECT")


@given(st.sampled_from(REFERENCE_QUERIES), st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_parseable_corruptions_differ_semantically_or_not_at_all(sql, seed):
    """A corruption that parses either changes the AST or is the rare
    no-op replacement (e.g. trap constant absent) — never a silent
    whitespace-only variant."""
    knowledge = knowledge_for(sql)
    corrupted = corrupt_query(knowledge, random.Random(seed))
    try:
        corrupted_ast = parse_select(corrupted)
    except SqlError:
        return
    reference_ast = parse_select(sql)
    rendered = corrupted_ast.to_sql()
    assert rendered != reference_ast.to_sql() or corrupted == rendered
