"""Additional world/marker coverage: question prompts, marker hygiene."""

from repro.core import ONE_SHOT_TEMPLATE
from repro.llm import ClaimKnowledge, ClaimWorld, CostLedger, SimulatedLLM
from repro.llm.simulated import (
    AGENT_PROMPT_MARKER,
    QUESTION_MARKER,
    SAMPLE_MARKER,
    TEXT2SQL_MARKER,
)


def knowledge():
    return ClaimKnowledge(
        claim_id="w/c0",
        masked_sentence="The value x appears here.",
        unmasked_sentence="The value 7 appears here.",
        reference_sql='SELECT "v" FROM "t"',
        claim_value_text="7",
        claim_type="numeric",
        difficulty=0.2,
        table_name="t",
        columns=("v",),
    )


class TestQuestionFlow:
    def test_question_prompt_gets_question(self):
        world = ClaimWorld()
        item = knowledge()
        world.register(item)
        client = SimulatedLLM("gpt-3.5-turbo", world, CostLedger())
        prompt = (f"{QUESTION_MARKER}: given the claim "
                  f'"{item.masked_sentence}" produce the question.')
        text = client.complete(prompt, 0.0).text
        assert item.masked_sentence in text
        assert text.endswith("?")


class TestMarkerHygiene:
    """The routing markers must be mutually distinguishable and must not
    collide with the one-shot template (else prompts would be
    mis-routed)."""

    def test_markers_distinct(self):
        markers = {AGENT_PROMPT_MARKER, QUESTION_MARKER, SAMPLE_MARKER,
                   TEXT2SQL_MARKER}
        assert len(markers) == 4

    def test_one_shot_template_free_of_routing_markers(self):
        for marker in (AGENT_PROMPT_MARKER, QUESTION_MARKER,
                       TEXT2SQL_MARKER):
            assert marker not in ONE_SHOT_TEMPLATE

    def test_sample_marker_matches_render(self):
        from repro.core import Sample
        from repro.core.methods import render_sample

        rendered = render_sample(Sample("claim x.", "SELECT 1"))
        assert rendered.startswith(SAMPLE_MARKER)


class TestWorldHelpers:
    def test_has_sentence_covers_both_forms(self):
        world = ClaimWorld()
        item = knowledge()
        world.register(item)
        assert world.has_sentence(item.masked_sentence)
        assert world.has_sentence(item.unmasked_sentence)
        assert not world.has_sentence("never registered")

    def test_recognise_prefers_quoted_extraction(self):
        world = ClaimWorld()
        item = knowledge()
        world.register(item)
        # Quoted form plus a misleading mention of another string.
        prompt = (f'Given the claim "{item.masked_sentence}" please '
                  "translate; ignore this other quoted thing.")
        found, visible = world.recognise(prompt)
        assert found is item
        assert not visible
