"""Tests for the simulated LLM: recognition, determinism, failure modes."""

import random

import pytest

from repro.core import one_shot_prompt
from repro.llm import (
    ClaimKnowledge,
    ClaimWorld,
    CostLedger,
    LookupTrap,
    SimulatedLLM,
    cheat_query,
    corrupt_query,
    extract_sql_block,
    trap_query,
)
from repro.llm.simulated import BEHAVIOURS, hard_claim_factor


def make_knowledge(**overrides):
    defaults = dict(
        claim_id="d/c0",
        masked_sentence="France consumes x glasses of wine per person.",
        unmasked_sentence="France consumes 370 glasses of wine per person.",
        reference_sql='SELECT "wine" FROM "drinks" WHERE "country" = \'France\'',
        claim_value_text="370",
        claim_type="numeric",
        difficulty=0.2,
        table_name="drinks",
        columns=("country", "wine", "beer"),
    )
    defaults.update(overrides)
    return ClaimKnowledge(**defaults)


def make_world(knowledge=None):
    world = ClaimWorld()
    world.register(knowledge or make_knowledge())
    return world


def prompt_for(knowledge, masked=True, sample=None):
    claim = (knowledge.masked_sentence if masked
             else knowledge.unmasked_sentence)
    return one_shot_prompt(claim, "numeric", "CREATE TABLE ...", sample,
                           claim)


class TestWorld:
    def test_register_and_lookup(self):
        knowledge = make_knowledge()
        world = make_world(knowledge)
        assert world.by_id("d/c0") is knowledge
        assert len(world) == 1

    def test_duplicate_id_rejected(self):
        world = make_world()
        with pytest.raises(ValueError):
            world.register(make_knowledge())

    def test_recognise_masked(self):
        knowledge = make_knowledge()
        world = make_world(knowledge)
        found, visible = world.recognise(prompt_for(knowledge))
        assert found is knowledge
        assert not visible

    def test_recognise_unmasked_flags_visibility(self):
        knowledge = make_knowledge()
        world = make_world(knowledge)
        found, visible = world.recognise(prompt_for(knowledge, masked=False))
        assert found is knowledge
        assert visible

    def test_unknown_prompt(self):
        assert make_world().recognise("Tell me a joke.") is None

    def test_substring_fallback(self):
        knowledge = make_knowledge()
        world = make_world(knowledge)
        prompt = f"Random preamble. {knowledge.masked_sentence} Random coda."
        found, _ = world.recognise(prompt)
        assert found is knowledge

    def test_validation(self):
        with pytest.raises(ValueError):
            make_knowledge(difficulty=1.5)
        with pytest.raises(ValueError):
            make_knowledge(claim_type="verse")


class TestDeterminism:
    def test_temperature_zero_is_deterministic(self):
        knowledge = make_knowledge(difficulty=0.5)
        world = make_world(knowledge)
        client = SimulatedLLM("gpt-3.5-turbo", world, CostLedger(), seed=3)
        prompt = prompt_for(knowledge)
        first = client.complete(prompt, 0.0).text
        assert all(
            client.complete(prompt, 0.0).text == first for _ in range(5)
        )

    def test_positive_temperature_varies(self):
        knowledge = make_knowledge(difficulty=0.55)
        world = make_world(knowledge)
        client = SimulatedLLM("gpt-3.5-turbo", world, CostLedger(), seed=3)
        prompt = prompt_for(knowledge)
        outputs = {client.complete(prompt, 0.5).text for _ in range(12)}
        assert len(outputs) > 1

    def test_seed_changes_behaviour(self):
        knowledge = make_knowledge(difficulty=0.5)
        world = make_world(knowledge)
        prompt = prompt_for(knowledge)
        outputs = {
            SimulatedLLM("gpt-3.5-turbo", world, CostLedger(),
                         seed=s).complete(prompt, 0.0).text
            for s in range(12)
        }
        assert len(outputs) > 1


class TestBehaviourModel:
    def test_success_probability_ordering(self):
        easy = make_knowledge(difficulty=0.1)
        hard = make_knowledge(claim_id="d/c1",
                              masked_sentence="other x.",
                              unmasked_sentence="other 5.",
                              difficulty=0.6)
        world = ClaimWorld()
        world.register(easy)
        world.register(hard)
        client = SimulatedLLM("gpt-4o", world, CostLedger())
        assert client.success_probability(easy, False) > \
            client.success_probability(hard, False)

    def test_sample_bonus(self):
        knowledge = make_knowledge(difficulty=0.4)
        client = SimulatedLLM("gpt-4o", make_world(knowledge), CostLedger())
        assert client.success_probability(knowledge, True) > \
            client.success_probability(knowledge, False)

    def test_model_tier_ordering(self):
        knowledge = make_knowledge(difficulty=0.4)
        world = make_world(knowledge)
        weak = SimulatedLLM("gpt-3.5-turbo", world, CostLedger())
        strong = SimulatedLLM("gpt-4-turbo", world, CostLedger())
        assert strong.success_probability(knowledge, False) > \
            weak.success_probability(knowledge, False)

    def test_hard_claim_factor(self):
        benign = make_knowledge(difficulty=0.9)
        assert hard_claim_factor(benign) == 1.0
        ambiguous = make_knowledge(difficulty=0.9, ambiguous=True)
        assert hard_claim_factor(ambiguous) < 0.3

    def test_unknown_model_rejected(self):
        # Unknown names fail at the pricing table (KeyError); known-priced
        # models without a behaviour profile fail with ValueError.
        with pytest.raises((ValueError, KeyError)):
            SimulatedLLM("gpt-99", make_world(), CostLedger())

    def test_explicit_behaviour_accepted(self):
        behaviour = BEHAVIOURS["gpt-4o"]
        client = SimulatedLLM("gpt-4o-mini", make_world(), CostLedger(),
                              behaviour=behaviour)
        assert client.behaviour is behaviour


class TestOutputs:
    def test_success_emits_reference_sql(self):
        knowledge = make_knowledge(difficulty=0.05)
        world = make_world(knowledge)
        client = SimulatedLLM("gpt-4-turbo", world, CostLedger(), seed=0)
        hits = 0
        for temperature in (0.7,) * 20:
            text = client.complete(prompt_for(knowledge), temperature).text
            sql = extract_sql_block(text)
            if sql == knowledge.reference_sql:
                hits += 1
        assert hits >= 14  # easy claim, strong model

    def test_unmasked_prompt_triggers_cheat(self):
        knowledge = make_knowledge()
        world = make_world(knowledge)
        client = SimulatedLLM("gpt-4o", world, CostLedger(), seed=1)
        cheats = 0
        for _ in range(20):
            text = client.complete(
                prompt_for(knowledge, masked=False), 0.9
            ).text
            if extract_sql_block(text) == cheat_query(knowledge):
                cheats += 1
        assert cheats >= 12  # cheat_prob is 0.85

    def test_unrecognised_prompt_has_no_sql(self):
        client = SimulatedLLM("gpt-4o", make_world(), CostLedger())
        text = client.complete("What is the capital of France?", 0.0).text
        assert extract_sql_block(text) is None

    def test_misread_dominates_when_present(self):
        knowledge = make_knowledge(
            misread_sql='SELECT "beer" FROM "drinks" WHERE "country" = \'France\''
        )
        world = make_world(knowledge)
        client = SimulatedLLM("gpt-3.5-turbo", world, CostLedger(), seed=2)
        misreads = 0
        for _ in range(30):
            sql = extract_sql_block(
                client.complete(prompt_for(knowledge), 0.8).text
            )
            if sql == knowledge.misread_sql:
                misreads += 1
        assert misreads >= 12  # misread_prob 0.75 for gpt-3.5


class TestCorruptions:
    def test_corrupt_query_differs_from_reference(self):
        knowledge = make_knowledge(difficulty=0.9)
        rng = random.Random(0)
        seen_different = 0
        for _ in range(20):
            corrupted = corrupt_query(knowledge, rng)
            if " ".join(corrupted.split()) != " ".join(
                knowledge.reference_sql.split()
            ):
                seen_different += 1
        assert seen_different >= 18

    def test_trap_query_swaps_constant(self):
        knowledge = make_knowledge(
            lookup_trap=LookupTrap("country", "The French Republic", "France")
        )
        trapped = trap_query(knowledge)
        assert "The French Republic" in trapped
        assert "'France'" not in trapped

    def test_trap_requires_trap(self):
        with pytest.raises(ValueError):
            trap_query(make_knowledge())

    def test_cheat_query_numeric(self):
        assert cheat_query(make_knowledge()) == "SELECT 370"

    def test_cheat_query_text(self):
        knowledge = make_knowledge(claim_type="text",
                                   claim_value_text="France")
        assert cheat_query(knowledge) == "SELECT 'France'"


class TestExtractSqlBlock:
    def test_fenced_sql(self):
        assert extract_sql_block("x\n```sql\nSELECT 1\n```\ny") == "SELECT 1"

    def test_plain_fence(self):
        assert extract_sql_block("```\nSELECT 2\n```") == "SELECT 2"

    def test_unfenced_select(self):
        assert extract_sql_block(
            "The query is SELECT a FROM t"
        ) == "SELECT a FROM t"

    def test_no_sql(self):
        assert extract_sql_block("no query here") is None

    def test_empty_fence_ignored(self):
        assert extract_sql_block("``````") is None
