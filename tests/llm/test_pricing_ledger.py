"""Tests for pricing, token counting, and the cost ledger."""

import pytest

from repro.llm import (
    CostLedger,
    GPT_35_TURBO,
    GPT_4_TURBO,
    GPT_4O,
    ScriptedLLM,
    count_tokens,
    model_spec,
    truncate_to_tokens,
)


class TestTokenizer:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_monotone_in_length(self):
        assert count_tokens("word " * 100) > count_tokens("word " * 10)

    def test_prose_scale(self):
        text = "The quick brown fox jumps over the lazy dog. " * 10
        tokens = count_tokens(text)
        # ~4 chars/token heuristic: within a loose factor-2 band.
        assert len(text) / 8 < tokens < len(text) / 2

    def test_truncate_noop_when_fits(self):
        assert truncate_to_tokens("short", 100) == "short"

    def test_truncate_respects_budget(self):
        text = "word " * 500
        truncated = truncate_to_tokens(text, 50)
        assert count_tokens(truncated) <= 50
        assert text.startswith(truncated)

    def test_truncate_zero(self):
        assert truncate_to_tokens("anything", 0) == ""


class TestPricing:
    def test_price_ordering(self):
        # GPT-4-turbo > GPT-4o > GPT-3.5 per token, both directions.
        assert (GPT_4_TURBO.input_price_per_million
                > GPT_4O.input_price_per_million
                > GPT_35_TURBO.input_price_per_million)
        assert (GPT_4_TURBO.output_price_per_million
                > GPT_4O.output_price_per_million
                > GPT_35_TURBO.output_price_per_million)

    def test_cost_formula(self):
        cost = GPT_35_TURBO.cost(1_000_000, 0)
        assert cost == pytest.approx(0.50)
        cost = GPT_35_TURBO.cost(0, 1_000_000)
        assert cost == pytest.approx(1.50)

    def test_latency_increases_with_tokens(self):
        assert GPT_4O.latency(100, 100) < GPT_4O.latency(100, 1000)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            model_spec("gpt-99")

    def test_lookup(self):
        assert model_spec("gpt-4o") is GPT_4O


class TestLedger:
    def test_records_through_client(self):
        ledger = CostLedger()
        client = ScriptedLLM(["hello"], ledger=ledger)
        client.complete("a prompt")
        assert len(ledger) == 1
        assert ledger.total_cost > 0

    def test_nested_tags(self):
        ledger = CostLedger()
        with ledger.tagged("outer"):
            with ledger.tagged("inner"):
                ledger.record("m", 10, 5, 0.1, 1.0)
            ledger.record("m", 10, 5, 0.2, 1.0)
        assert ledger.totals("outer").calls == 2
        assert ledger.totals("inner").calls == 1
        assert ledger.totals("inner").cost == pytest.approx(0.1)

    def test_tag_stack_restored_on_error(self):
        ledger = CostLedger()
        with pytest.raises(RuntimeError):
            with ledger.tagged("x"):
                raise RuntimeError("boom")
        ledger.record("m", 1, 1, 0.0, 0.0)
        assert ledger.entries[0].tags == ()

    def test_checkpoint(self):
        ledger = CostLedger()
        ledger.record("m", 1, 1, 0.5, 1.0)
        mark = ledger.checkpoint()
        ledger.record("m", 1, 1, 0.25, 1.0)
        assert ledger.totals_since(mark).cost == pytest.approx(0.25)

    def test_totals_by_prefix(self):
        ledger = CostLedger()
        for name in ("method:a", "method:b", "method:a"):
            with ledger.tagged(name):
                ledger.record("m", 1, 1, 1.0, 0.0)
        grouped = ledger.totals_by_tag_prefix("method:")
        assert grouped["method:a"].calls == 2
        assert grouped["method:b"].calls == 1

    def test_total_tokens(self):
        ledger = CostLedger()
        ledger.record("m", 10, 5, 0.0, 0.0)
        assert ledger.totals().total_tokens == 15


class TestScriptedLLM:
    def test_replays_in_order(self):
        client = ScriptedLLM(["one", "two"])
        assert client.complete("p").text == "one"
        assert client.complete("p").text == "two"

    def test_last_response_repeats(self):
        client = ScriptedLLM(["only"])
        client.complete("p")
        assert client.complete("p").text == "only"

    def test_requires_responses(self):
        with pytest.raises(ValueError):
            ScriptedLLM([])

    def test_temperature_validated(self):
        client = ScriptedLLM(["x"])
        with pytest.raises(ValueError):
            client.complete("p", temperature=3.0)

    def test_usage_reported(self):
        client = ScriptedLLM(["response text here"])
        response = client.complete("a reasonably long prompt for counting")
        assert response.usage.prompt_tokens > 0
        assert response.usage.completion_tokens > 0
        assert response.cost > 0
        assert response.latency_seconds > 0
