"""Determinism guard: the static analyzer never changes verification output.

The analyzer front-ends every LLM-generated query, but its hard contract
is one-directional soundness: an analyzer *error* is a guaranteed runtime
error, so rejecting such a query pre-execution replaces one failure with
an equivalent one. This suite runs ``repro.verify()`` end to end with the
analyzer on and off under a fixed seed and compares the rendered reports
byte for byte.
"""

import repro
from repro.core import ScheduleEntry, VerifierConfig, to_json, to_markdown
from repro.datasets import build_tabfact
from repro.experiments import build_cedar
from repro.sqlengine import engine_stats, reset_engine_stats


def _verify(analyze_sql: bool):
    """One full verification arm: fresh bundle, fixed seed."""
    reset_engine_stats()
    bundle = build_tabfact(table_count=5, total_claims=15)
    system = build_cedar(bundle, seed=9)
    entries = [
        ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
        ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
    ]
    run = repro.verify(
        bundle.documents,
        schedule=entries,
        config=VerifierConfig(
            ledger=system.ledger,
            analyze_sql=analyze_sql,
        ),
    )
    reports = [to_json(doc, run) for doc in bundle.documents]
    rendered = [to_markdown(doc, run) for doc in bundle.documents]
    verdicts = [claim.correct for claim in bundle.claims]
    ledger = system.ledger
    counters = engine_stats()["analyzer"]
    return reports, rendered, verdicts, (ledger.totals().calls,
                                         ledger.totals().cost), counters


class TestAnalyzerDeterminism:
    def test_reports_byte_identical_with_and_without_analyzer(self):
        analyzed = _verify(analyze_sql=True)
        raw = _verify(analyze_sql=False)
        assert analyzed[0] == raw[0]    # JSON reports
        assert analyzed[1] == raw[1]    # markdown renderings
        assert analyzed[2] == raw[2]    # verdicts
        assert analyzed[3] == raw[3]    # LLM calls and cost

    def test_analyzer_actually_ran_in_the_on_arm(self):
        analyzed = _verify(analyze_sql=True)
        counters = analyzed[4]
        assert counters["queries_analyzed"] > 0

    def test_analyzer_fully_disabled_in_the_off_arm(self):
        raw = _verify(analyze_sql=False)
        counters = raw[4]
        assert counters["queries_analyzed"] == 0
        assert counters["rejected_pre_execution"] == 0
