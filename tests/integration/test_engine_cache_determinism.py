"""Determinism guard: the SQL engine's caches never change output.

The compile-and-cache engine (plan cache, compiled evaluators, hash
joins, shared result cache) promises byte-identical behaviour. This
suite runs ``repro.verify()`` end to end with the caches on and off
under a fixed seed and compares the rendered reports byte for byte —
if any optimization leaks into verdicts, queries, or spend, the diff
shows up here.
"""

import repro
from repro.core import ScheduleEntry, VerifierConfig, to_json, to_markdown
from repro.datasets import build_tabfact
from repro.experiments import build_cedar


def _verify(sql_cache_size: int, workers: int = 1):
    """One full verification arm: fresh bundle, fixed seed."""
    bundle = build_tabfact(table_count=5, total_claims=15)
    system = build_cedar(bundle, seed=9)
    entries = [
        ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
        ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
    ]
    run = repro.verify(
        bundle.documents,
        schedule=entries,
        config=VerifierConfig(
            ledger=system.ledger,
            workers=workers,
            sql_cache_size=sql_cache_size,
        ),
    )
    # The ledger's sql_seconds is wall-clock (and legitimately differs
    # between arms — that is the point of the caches), so reports are
    # rendered without the spend section for the byte comparison.
    reports = [to_json(doc, run) for doc in bundle.documents]
    rendered = [to_markdown(doc, run) for doc in bundle.documents]
    verdicts = [claim.correct for claim in bundle.claims]
    ledger = system.ledger
    return reports, rendered, verdicts, (ledger.totals().calls,
                                         ledger.totals().cost)


class TestCacheDeterminism:
    def test_reports_byte_identical_with_and_without_sql_cache(self):
        cached = _verify(sql_cache_size=256)
        uncached = _verify(sql_cache_size=0)
        assert cached[0] == uncached[0]     # JSON reports
        assert cached[1] == uncached[1]     # markdown renderings
        assert cached[2] == uncached[2]     # verdicts
        assert cached[3] == uncached[3]     # LLM calls and cost

    def test_repeat_cached_run_is_stable(self):
        first = _verify(sql_cache_size=256)
        second = _verify(sql_cache_size=256)
        assert first[0] == second[0]
        assert first[2] == second[2]

    def test_parallel_cached_matches_sequential_uncached(self):
        parallel = _verify(sql_cache_size=256, workers=4)
        sequential = _verify(sql_cache_size=0, workers=1)
        assert parallel[0] == sequential[0]
        assert parallel[2] == sequential[2]
        assert parallel[3] == sequential[3]
