"""Determinism guard: caching never changes output, at any tier.

The compile-and-cache engine (plan cache, compiled evaluators, hash
joins, shared result cache) promises byte-identical behaviour, and the
persistent L2 tier extends that promise across process restarts. This
suite runs ``repro.verify()`` end to end with the caches on and off
under a fixed seed and compares the rendered reports byte for byte —
if any optimization leaks into verdicts, queries, or spend, the diff
shows up here. The L2 scenarios simulate kill-and-restart by reopening
a fresh ``CacheConfig`` on the same sqlite path, and prove the
corruption policy (garbage file → quarantine, never a crash).
"""

import repro
from repro.cache import CacheConfig
from repro.core import ScheduleEntry, VerifierConfig, to_json, to_markdown
from repro.datasets import build_tabfact
from repro.experiments import build_cedar


def _verify(sql_cache_size: int, workers: int = 1,
            cache_path=None, cache_size: int = 0):
    """One full verification arm: fresh bundle, fixed seed."""
    bundle = build_tabfact(table_count=5, total_claims=15)
    system = build_cedar(bundle, seed=9)
    entries = [
        ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
        ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
    ]
    # A fresh CacheConfig per arm means a fresh sqlite connection to the
    # same file — exactly what a process restart looks like to L2.
    cache_config = (
        CacheConfig(path=cache_path) if cache_path is not None else None
    )
    config = VerifierConfig(
        ledger=system.ledger,
        workers=workers,
        sql_cache_size=sql_cache_size,
        cache_size=cache_size,
        cache_config=cache_config,
    )
    run = repro.verify(bundle.documents, schedule=entries, config=config)
    store = config.open_cache_store()
    # The ledger's sql_seconds is wall-clock (and legitimately differs
    # between arms — that is the point of the caches), so reports are
    # rendered without the spend section for the byte comparison.
    reports = [to_json(doc, run) for doc in bundle.documents]
    rendered = [to_markdown(doc, run) for doc in bundle.documents]
    verdicts = [claim.correct for claim in bundle.claims]
    ledger = system.ledger
    l2_stats = store.backend.stats() if store is not None else None
    if store is not None:
        store.close()
    return (reports, rendered, verdicts,
            (ledger.totals().calls, ledger.totals().cost), l2_stats)


class TestCacheDeterminism:
    def test_reports_byte_identical_with_and_without_sql_cache(self):
        cached = _verify(sql_cache_size=256)
        uncached = _verify(sql_cache_size=0)
        assert cached[0] == uncached[0]     # JSON reports
        assert cached[1] == uncached[1]     # markdown renderings
        assert cached[2] == uncached[2]     # verdicts
        assert cached[3] == uncached[3]     # LLM calls and cost

    def test_repeat_cached_run_is_stable(self):
        first = _verify(sql_cache_size=256)
        second = _verify(sql_cache_size=256)
        assert first[0] == second[0]
        assert first[2] == second[2]

    def test_parallel_cached_matches_sequential_uncached(self):
        parallel = _verify(sql_cache_size=256, workers=4)
        sequential = _verify(sql_cache_size=0, workers=1)
        assert parallel[0] == sequential[0]
        assert parallel[2] == sequential[2]
        assert parallel[3] == sequential[3]


class TestPersistentTierDeterminism:
    def test_kill_and_restart_warm_run_is_byte_identical(self, tmp_path):
        """Cold run writes L2; a fresh process reads it back verbatim."""
        path = tmp_path / "l2.sqlite"
        baseline = _verify(sql_cache_size=256)          # no L2 at all
        cold = _verify(sql_cache_size=256, cache_size=64, cache_path=path)
        assert path.exists()
        assert cold[4].size > 0                         # L2 was populated
        # "Restart": everything rebuilt from scratch — new bundle, new
        # engines, new VerifierConfig — only the sqlite file survives.
        warm = _verify(sql_cache_size=256, cache_size=64, cache_path=path)
        assert warm[4].hits > 0                         # L2 actually served
        for arm in (cold, warm):
            assert arm[0] == baseline[0]                # JSON reports
            assert arm[1] == baseline[1]                # markdown
            assert arm[2] == baseline[2]                # verdicts
        # Warm L2 hits skip the simulated LLM, so calls/cost drop —
        # report bytes must not.
        assert warm[0] == cold[0]
        assert warm[1] == cold[1]

    def test_corrupt_l2_file_recovers_without_crashing(self, tmp_path):
        """Garbage where the database should be → quarantine, not error."""
        path = tmp_path / "l2.sqlite"
        path.write_bytes(b"this is not a sqlite file\x00\xff" * 64)
        baseline = _verify(sql_cache_size=256)
        run = _verify(sql_cache_size=256, cache_size=64, cache_path=path)
        assert run[0] == baseline[0]
        assert run[2] == baseline[2]
        # The poisoned file was moved aside and a fresh store written.
        assert (tmp_path / "l2.sqlite.corrupt").exists()
        assert run[4].size > 0

    def test_profile_store_opt_in_keeps_reports_identical(self, tmp_path):
        """Recording method profiles must never perturb the run itself."""
        bundle = build_tabfact(table_count=5, total_claims=15)
        system = build_cedar(bundle, seed=9)
        entries = [
            ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"),
                          2),
            ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
        ]
        config = VerifierConfig(
            ledger=system.ledger,
            sql_cache_size=256,
            cache_config=CacheConfig(path=tmp_path / "l2.sqlite",
                                     profiles=True),
        )
        run = repro.verify(bundle.documents, schedule=entries, config=config)
        reports = [to_json(doc, run) for doc in bundle.documents]
        baseline = _verify(sql_cache_size=256)
        assert reports == baseline[0]
        store = config.open_cache_store()
        observed = store.profile_store().observations()
        assert observed                                  # something recorded
        for obs in observed.values():
            assert obs.trials > 0
            assert 0.0 <= obs.accuracy <= 1.0
            assert obs.cost >= 0.0
        store.close()
