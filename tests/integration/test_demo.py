"""Tests for the demonstration front-end."""

import pytest

from repro import demo


class TestDemoCli:
    def test_list(self, capsys):
        assert demo.main(["--list", "--dataset", "tabfact"]) == 0
        out = capsys.readouterr().out
        assert "tabfact" in out
        assert "claims" in out

    def test_run_document(self, capsys):
        assert demo.main(["--dataset", "tabfact", "--document", "1",
                          "--threshold", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "cost-optimal schedule" in out
        assert "verified" in out
        assert "spend: $" in out

    def test_out_of_range_document(self, capsys):
        assert demo.main(["--dataset", "tabfact", "--document", "99"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_bad_threshold(self, capsys):
        assert demo.main(["--threshold", "1.5"]) == 2

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            demo.main(["--dataset", "nope"])
