"""The observability layer's house invariants, end to end.

1. **Tracing is invisible to results.** Reports (JSON and markdown) are
   byte-identical with tracing on and off — spans observe the run, they
   never steer it.
2. **Span trees are deterministic.** A parallel run and a sequential run
   of the same documents produce byte-identical trees once wall times
   are stripped: span identity is structural (parent-scoped sequence
   numbers, absorbed in submission order), never scheduling luck.
"""

import json

from repro.core import ScheduleEntry, VerifierConfig
from repro.core.reports import document_spans, span_waterfall, to_json, \
    to_markdown
from repro.datasets import build_aggchecker
from repro.experiments import build_cedar
from repro.obs.tracer import Tracer

SEED = 3


def run_verification(workers, tracer=None):
    """One full verification of a fresh bundle; returns bundle and run.

    The SQL result cache is disabled: spans deliberately carry no
    cache-status attributes, and running cache-less keeps even the
    execution *counts* identical between arms (a warm shared cache
    would elide executions in whichever arm ran second).
    """
    bundle = build_aggchecker(document_count=4, total_claims=24)
    system = build_cedar(
        bundle, seed=SEED,
        config=VerifierConfig(workers=workers, sql_cache_size=0),
    )
    schedule = [ScheduleEntry(method, 2) for method in system.methods]
    run = system.verifier.verify_documents(
        bundle.documents, schedule, tracer=tracer
    )
    return bundle, system, run


def timeless_tree(tracer):
    return json.dumps(tracer.tree(include_times=False), sort_keys=True)


class TestParallelEqualsSequential:
    def test_span_trees_identical_modulo_wall_times(self):
        sequential = Tracer(trace_id="seq")
        _, _, seq_run = run_verification(workers=1, tracer=sequential)

        parallel = Tracer(trace_id="par")
        bundle, _, par_run = run_verification(workers=4, tracer=parallel)

        assert sequential.span_count() > 100  # real coverage, not a stub
        assert sequential.span_count() == parallel.span_count()
        assert timeless_tree(sequential) == timeless_tree(parallel)
        # And the runs themselves agreed, so the trees describe the
        # same verification.
        assert [c.correct for c in bundle.claims] == [
            c.correct for c in bundle.claims
        ]
        assert len(seq_run.reports) == len(par_run.reports)

    def test_tree_covers_the_span_taxonomy(self):
        tracer = Tracer(trace_id="kinds")
        run_verification(workers=1, tracer=tracer)
        kinds = {span.kind for root in tracer.roots
                 for span in root.walk()}
        assert {"document", "stage", "method", "llm_call",
                "plausibility", "sql_execute"} <= kinds
        # Roots are documents only; everything else nests below them.
        assert {root.kind for root in tracer.roots} == {"document"}


class TestTracingIsInvisible:
    def test_reports_byte_identical_with_tracing_on_and_off(self):
        bundle_off, system_off, run_off = run_verification(workers=1)

        tracer = Tracer(trace_id="on")
        bundle_on, system_on, run_on = run_verification(
            workers=1, tracer=tracer
        )
        assert tracer.span_count() > 0  # tracing actually happened

        for document_off, document_on in zip(
            bundle_off.documents, bundle_on.documents
        ):
            assert to_json(document_off, run_off) \
                == to_json(document_on, run_on)
            assert to_markdown(document_off, run_off) \
                == to_markdown(document_on, run_on)

    def test_waterfall_is_strictly_opt_in(self):
        tracer = Tracer(trace_id="wf")
        bundle, _, run = run_verification(workers=1, tracer=tracer)
        document = bundle.documents[0]
        plain = to_markdown(document, run)
        traced = to_markdown(document, run, tracer=tracer)
        assert "Trace waterfall" not in plain
        assert "Trace waterfall" in traced
        # The traced rendering only ever *appends* to the plain one.
        assert traced.startswith(plain)

    def test_waterfall_renders_one_line_per_span(self):
        tracer = Tracer(trace_id="wf2")
        bundle, _, _ = run_verification(workers=1, tracer=tracer)
        roots = document_spans(tracer, bundle.documents[0].doc_id)
        assert roots
        text = span_waterfall(roots)
        expected = sum(1 for root in roots for _ in root.walk())
        assert len(text.splitlines()) == expected
