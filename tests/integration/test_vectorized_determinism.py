"""Determinism guard: the vectorized path never changes verification output.

The columnar/vectorized executor is a pure performance substrate — its
hard contract is byte-identical results versus the row interpreter for
every statement it accepts (anything else falls back). This suite runs
``repro.verify()`` end to end with vectorized execution on and off under
a fixed seed and compares the rendered reports byte for byte, then
checks the on arm really exercised the vectorized path.
"""

import repro
from repro.core import ScheduleEntry, VerifierConfig, to_json, to_markdown
from repro.datasets import build_tabfact
from repro.experiments import build_cedar
from repro.sqlengine import (
    engine_stats,
    reset_engine_stats,
    set_vectorized_default,
)


def _verify(vectorized: bool):
    """One full verification arm: fresh bundle, fixed seed."""
    previous = set_vectorized_default(vectorized)
    try:
        reset_engine_stats()
        bundle = build_tabfact(table_count=5, total_claims=15)
        system = build_cedar(bundle, seed=9)
        entries = [
            ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
            ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
        ]
        run = repro.verify(
            bundle.documents,
            schedule=entries,
            config=VerifierConfig(ledger=system.ledger),
        )
        reports = [to_json(doc, run) for doc in bundle.documents]
        rendered = [to_markdown(doc, run) for doc in bundle.documents]
        verdicts = [claim.correct for claim in bundle.claims]
        ledger = system.ledger
        strategies = engine_stats()["strategies"]
        return reports, rendered, verdicts, (ledger.totals().calls,
                                             ledger.totals().cost), strategies
    finally:
        set_vectorized_default(previous)


class TestVectorizedDeterminism:
    def test_reports_byte_identical_with_and_without_vectorization(self):
        fast = _verify(vectorized=True)
        row = _verify(vectorized=False)
        assert fast[0] == row[0]    # JSON reports
        assert fast[1] == row[1]    # markdown renderings
        assert fast[2] == row[2]    # verdicts
        assert fast[3] == row[3]    # LLM calls and cost

    def test_vectorized_path_actually_ran_in_the_on_arm(self):
        fast = _verify(vectorized=True)
        assert fast[4]["vectorized_executions"] > 0

    def test_vectorized_path_fully_disabled_in_the_off_arm(self):
        row = _verify(vectorized=False)
        assert row[4]["vectorized_executions"] == 0
