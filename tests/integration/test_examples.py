"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(SCRIPTS) >= 5


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=lambda path: path.stem
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their results"


def test_quickstart_output_shape():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "CORRECT" in completed.stdout
    assert "INCORRECT" in completed.stdout
    assert "cost: $" in completed.stdout


def test_agent_trace_demo_reproduces_figure4():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "agent_trace_demo.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    out = completed.stdout
    assert "index 0 is out of bounds" in out          # the trap error
    assert "unique_column_values" in out              # the recovery tool
    assert "Value is correct" in out                  # the fixed query
