"""Cross-cutting determinism: the whole pipeline is a pure function of
its seeds (a requirement for the reproducibility claims in README)."""

import pytest

from repro.datasets import (
    build_joinbench,
    build_tabfact,
    build_units_benchmark,
)
from repro.experiments import run_cedar


class TestDatasetDeterminism:
    def test_joinbench_stable(self):
        first = build_joinbench(seed=31)
        second = build_joinbench(seed=31)
        assert [c.sentence for c in first["joined"].claims] == [
            c.sentence for c in second["joined"].claims
        ]
        assert [c.metadata["reference_sql"]
                for c in first["joined"].claims] == [
            c.metadata["reference_sql"] for c in second["joined"].claims
        ]

    def test_units_stable(self):
        first = build_units_benchmark(seed=43)
        second = build_units_benchmark(seed=43)
        for variant in ("aligned", "converted"):
            assert [c.sentence for c in first[variant].claims] == [
                c.sentence for c in second[variant].claims
            ]


class TestRunDeterminism:
    def test_full_run_reproducible_to_the_cent(self):
        bundle = build_tabfact(table_count=5, total_claims=15)
        first = run_cedar(bundle, seed=11)
        first_verdicts = [c.correct for c in bundle.claims]
        second = run_cedar(bundle, seed=11)
        second_verdicts = [c.correct for c in bundle.claims]
        assert first_verdicts == second_verdicts
        assert first.economics.cost == pytest.approx(second.economics.cost)
        assert first.economics.llm_calls == second.economics.llm_calls
        assert first.schedule_description == second.schedule_description

    def test_profiles_reproducible(self):
        bundle = build_tabfact(table_count=5, total_claims=15)
        first = run_cedar(bundle, seed=11).profiles
        second = run_cedar(bundle, seed=11).profiles
        for name in first:
            assert first[name].accuracy == second[name].accuracy
            assert first[name].cost == pytest.approx(second[name].cost)
