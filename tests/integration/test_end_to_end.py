"""End-to-end integration tests: full CEDAR runs over small bundles."""

import pytest

from repro.core import ScheduleEntry, optimal_schedule, profile_methods
from repro.datasets import build_tabfact, build_wikitext
from repro.experiments import (
    build_cedar,
    profile_system,
    reset_claims,
    run_cedar,
    run_single_stage,
)
from repro.llm import CostLedger
from repro.metrics import score_claims


@pytest.fixture(scope="module")
def bundle():
    return build_tabfact(table_count=8, total_claims=32)


class TestFullPipeline:
    def test_run_cedar_produces_verdicts(self, bundle):
        result = run_cedar(bundle, seed=1)
        assert all(c.correct is not None for c in bundle.claims)
        assert result.counts.total == bundle.claim_count
        assert result.economics.cost > 0
        assert result.schedule_description

    def test_quality_beats_chance(self, bundle):
        result = run_cedar(bundle, seed=1)
        assert result.counts.f1 > 0.5

    def test_determinism(self, bundle):
        first = run_cedar(bundle, seed=2)
        verdicts_first = [c.correct for c in bundle.claims]
        second = run_cedar(bundle, seed=2)
        verdicts_second = [c.correct for c in bundle.claims]
        assert verdicts_first == verdicts_second
        assert first.economics.cost == pytest.approx(second.economics.cost)

    def test_seed_sensitivity(self, bundle):
        run_cedar(bundle, seed=3)
        first = [c.correct for c in bundle.claims]
        run_cedar(bundle, seed=4)
        second = [c.correct for c in bundle.claims]
        assert first != second

    def test_threshold_monotone_in_cost(self, bundle):
        cheap = run_cedar(bundle, accuracy_threshold=0.5, seed=1)
        strict = run_cedar(bundle, accuracy_threshold=0.99, seed=1)
        assert cheap.economics.cost <= strict.economics.cost

    def test_single_stage(self, bundle):
        result = run_single_stage(bundle, method_index=0, tries=1, seed=1)
        assert result.counts.total == bundle.claim_count

    def test_agent_single_stage_costs_more_than_oneshot(self, bundle):
        oneshot = run_single_stage(bundle, 0, seed=1)
        agent = run_single_stage(bundle, 3, seed=1)
        assert agent.economics.cost > 3 * oneshot.economics.cost

    def test_textual_bundle(self):
        wikitext = build_wikitext(document_count=3, total_claims=9)
        result = run_cedar(wikitext, seed=1)
        assert result.counts.total == 9


class TestProfilingAndScheduling:
    def test_profiles_have_sane_ranges(self, bundle):
        system = build_cedar(bundle, seed=5)
        profiles = profile_system(system, bundle.documents[:3])
        assert set(profiles) == {m.name for m in system.methods}
        for profile in profiles.values():
            assert 0.0 <= profile.accuracy <= 1.0
            assert profile.cost > 0

    def test_agents_cost_more_than_oneshot(self, bundle):
        system = build_cedar(bundle, seed=5)
        profiles = profile_system(system, bundle.documents[:3])
        oneshot_costs = [
            p.cost for name, p in profiles.items() if "one_shot" in name
        ]
        agent_costs = [
            p.cost for name, p in profiles.items() if "agent" in name
        ]
        assert min(agent_costs) > max(oneshot_costs)

    def test_profiling_requires_labels(self, bundle):
        system = build_cedar(bundle, seed=5)
        document = bundle.documents[0]
        stripped = document.claims[0].metadata.pop("label_correct")
        try:
            with pytest.raises(ValueError):
                profile_methods(system.methods, [document], CostLedger())
        finally:
            document.claims[0].metadata["label_correct"] = stripped

    def test_schedule_orders_cheap_first(self, bundle):
        system = build_cedar(bundle, seed=5)
        profiles = profile_system(system, bundle.documents[:3])
        planned = optimal_schedule(profiles, 0.99)
        costs = [profiles[stage.method_name].cost for stage in planned]
        assert costs == sorted(costs)


class TestCostConservation:
    def test_ledger_totals_equal_sum_of_tags(self, bundle):
        system = build_cedar(bundle, seed=6)
        entries = [ScheduleEntry(m, 1) for m in system.methods[:2]]
        reset_claims(bundle.documents)
        system.verifier.verify_documents(bundle.documents[:3], entries)
        ledger = system.ledger
        per_doc = sum(
            totals.cost
            for totals in ledger.totals_by_tag_prefix("doc:").values()
        )
        assert per_doc == pytest.approx(ledger.total_cost)
        per_method = sum(
            totals.cost
            for totals in ledger.totals_by_tag_prefix("method:").values()
        )
        assert per_method == pytest.approx(ledger.total_cost)

    def test_reset_claims(self, bundle):
        run_cedar(bundle, seed=1)
        reset_claims(bundle.documents)
        assert all(c.correct is None and c.query is None
                   for c in bundle.claims)


class TestFailureInjection:
    def test_unrecognised_world_degrades_gracefully(self):
        """A bundle verified against the WRONG world: the model recognises
        nothing, produces no SQL, and every claim falls back to
        correct-by-default — the pipeline must not crash."""
        target = build_tabfact(table_count=3, total_claims=9)
        other = build_wikitext(document_count=2, total_claims=6)
        from repro.core import MultiStageVerifier, OneShotMethod
        from repro.llm import SimulatedLLM

        ledger = CostLedger()
        client = SimulatedLLM("gpt-4o", other.world, ledger)
        method = OneShotMethod(client)
        verifier = MultiStageVerifier(ledger)
        run = verifier.verify_documents(
            target.documents, [ScheduleEntry(method, 1)]
        )
        assert all(c.correct is True for c in target.claims)
        assert all(r.fallback for r in run.reports.values())
        counts = score_claims(target.claims)
        assert counts.recall == 0.0
