"""Distributed tracing, end to end: stitched traces are deterministic.

Three invariants, each driven through real ``python -m
repro.cluster.worker`` processes behind the asyncio router:

1. **Structure** — ``GET /v1/jobs/<id>/trace`` returns one tree: the
   router's admission/route/rpc spans with the worker's queue-wait and
   document waterfall grafted underneath.
2. **Reruns agree** — two fresh clusters fed the identical submission
   sequence produce byte-identical stitched trees once wall times (and
   the wall-time-derived critical-path annotations) are stripped.
3. **Cluster ≡ single process** — the worker subtree inside a stitched
   trace is the same span tree a single-process service files for the
   same document, modulo wall times and the router-added worker id.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.obs.tracer import strip_times

JOB_SEQUENCE = [("aggchecker", 0, "det-a"), ("aggchecker", 1, "det-b")]


class TraceHarness:
    """A 2-worker tiny-profile router on a background event loop."""

    def __init__(self, **config):
        config.setdefault("workers", 2)
        config.setdefault("profile", "tiny")
        config.setdefault("spawn_timeout", 120.0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True,
        )
        self.thread.start()
        self.router = self.run(
            ClusterRouter(ClusterConfig(**config)).start()
        )

    def run(self, coroutine, timeout=180):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop,
        ).result(timeout)

    def run_job(self, dataset, document, client_id):
        """Submit, drain the event stream to terminal, return job_id."""
        status, body = self.run(self.router.submit({
            "dataset": dataset, "document": document,
            "client_id": client_id,
        }))
        assert status == 202, body
        job_id = body["job_id"]

        async def _drain():
            stream = await self.router.job_events(job_id, True, 120)
            return [event async for event in stream]

        events = self.run(_drain())
        assert events[-1]["event"] == "job_done", events
        return job_id

    def stitched_tree(self, job_id):
        """The job's stitched trace with the worker subtree present."""
        for _ in range(100):
            status, body = self.run(
                self.router.job_trace(job_id, fmt="tree")
            )
            assert status == 200, body
            root = body["spans"][0]
            if root.get("attributes", {}).get("worker_trace") \
                    != "unavailable":
                return body
            time.sleep(0.05)
        raise AssertionError(f"worker subtree never arrived: {body}")

    def close(self):
        try:
            self.run(self.router.stop())
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=10)
            self.loop.close()


def _normalized(tree_body):
    """A stitched trace rendered rerun-comparable: no wall times (and
    with them the critical-path annotations), no structural ids."""

    def scrub(node):
        node.pop("span_id", None)
        for child in node.get("children", ()):
            scrub(child)
        return node

    spans = strip_times(tree_body["spans"])
    return json.dumps([scrub(span) for span in spans], sort_keys=True)


@pytest.fixture(scope="module")
def cluster():
    harness = TraceHarness()
    yield harness
    harness.close()


# -- structure ----------------------------------------------------------------


def test_stitched_trace_has_router_and_worker_spans(cluster):
    job_id = cluster.run_job("aggchecker", 0, "structure")
    body = cluster.stitched_tree(job_id)
    assert body["job_id"] == job_id
    assert body["trace_id"].startswith("trace-")
    root = body["spans"][0]
    assert root["name"] == f"job:{job_id}"
    assert root["kind"] == "job"
    assert root["attributes"]["trace_id"] == body["trace_id"]
    assert root["attributes"]["outcome"] == "job_done"
    # Router phases come first, in causal order.
    names = [child["name"] for child in root["children"]]
    assert names[:3] == ["admission", "route", "rpc:submit"]
    route = root["children"][1]
    assert route["attributes"]["worker"] == root["attributes"]["worker"]
    # The worker's forest is grafted after them: the queue-wait bar and
    # the per-document verification waterfall.
    grafted = root["children"][3:]
    assert grafted, "no worker spans were stitched in"
    kinds = {span["kind"] for span in grafted}
    assert "queue_wait" in kinds
    assert "document" in kinds
    deep_kinds = {
        node["kind"]
        for span in grafted
        for node in _walk(span)
    }
    assert {"stage", "method"} <= deep_kinds
    # Grafted spans landed on the router's timeline: every child starts
    # at or after the root (clock rebasing worked).
    assert all(child["start"] >= root["start"]
               for child in root["children"])


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def test_trace_unknown_job_and_chrome_format(cluster):
    status, body = cluster.run(cluster.router.job_trace("nope"))
    assert status == 404
    job_id = cluster.run_job("aggchecker", 0, "chrome")
    cluster.stitched_tree(job_id)            # wait for worker spans
    status, body = cluster.run(cluster.router.job_trace(job_id))
    assert status == 200
    events = body["traceEvents"]
    assert any(event.get("name") == f"job:{job_id}" for event in events)


def test_repeated_fetches_do_not_accumulate_spans(cluster):
    job_id = cluster.run_job("aggchecker", 1, "idempotent")
    first = cluster.stitched_tree(job_id)
    second = cluster.run(cluster.router.job_trace(job_id, fmt="tree"))[1]
    assert _normalized(first) == _normalized(second)
    assert len(first["spans"][0]["children"]) \
        == len(second["spans"][0]["children"])


# -- reruns agree -------------------------------------------------------------


def test_stitched_trace_identical_across_fresh_clusters():
    def collect():
        harness = TraceHarness()
        try:
            return [
                _normalized(harness.stitched_tree(
                    harness.run_job(dataset, document, client)
                ))
                for dataset, document, client in JOB_SEQUENCE
            ]
        finally:
            harness.close()

    first, second = collect(), collect()
    assert first == second


# -- cluster ≡ single process -------------------------------------------------


def test_worker_subtree_matches_single_process_spans():
    from repro.cluster.worker import dataset_builders
    from repro.service import ServiceConfig, VerificationService
    from repro.service.http import ServiceApp

    # A fresh cluster, so the shard's caches are as cold as the fresh
    # single-process service's — execution counts must line up too.
    harness = TraceHarness()
    try:
        job_id = harness.run_job("aggchecker", 0, "vs-single")
        stitched = harness.stitched_tree(job_id)["spans"][0]
    finally:
        harness.close()
    grafted = stitched["children"][3:]
    for span in grafted:
        span["attributes"].pop("worker", None)   # router-added label

    single = VerificationService(ServiceConfig(workers=2)).start()
    try:
        app = ServiceApp(single, datasets=dataset_builders("tiny"),
                         seed=0)
        status, body = app.submit({
            "dataset": "aggchecker", "document": 0,
            "client_id": "vs-single",
        })
        assert status == 202, body
        handle = single.job(body["job_id"])
        list(handle.events(timeout=None))        # drain to terminal
        local = [span.to_dict(str(index), include_times=True)
                 for index, span in enumerate(handle.spans(), start=1)]
    finally:
        single.shutdown(drain=False)

    def scrub(spans):
        def _scrub(node):
            node.pop("span_id", None)
            # Job ids differ only by the shard's sequence position —
            # normalise both sides to compare the *shape* and names.
            for key in ("job_id",):
                node.get("attributes", {}).pop(key, None)
            node["name"] = node["name"].split(":job-")[0]
            for child in node.get("children", ()):
                _scrub(child)
            return node

        return json.dumps(
            [_scrub(span) for span in strip_times(spans)],
            sort_keys=True,
        )

    assert scrub(grafted) == scrub(local)
