"""Smoke tests for the experiment harness (fast mode)."""

import pytest

from repro.experiments import runner
from repro.experiments.figure5 import Figure5Result, TradeoffPoint
from repro.experiments.figure6 import run_figure6
from repro.experiments.joinbench_exp import run_joinbench
from repro.experiments.table2 import dataset_builders, run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.common import format_table


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(fast=True)

    def test_all_cells_present(self, result):
        for dataset in result.datasets:
            for system in result.systems:
                assert (dataset, system) in result.cells

    def test_cedar_wins_every_dataset(self, result):
        for dataset in result.datasets:
            cedar = result.cells[(dataset, "CEDAR")].f1
            # Fast mode shrinks WikiText to 20 claims, where a couple of
            # flipped verdicts move F1 by tens of points; allow slack
            # there. The full-size runs (EXPERIMENTS.md) win strictly.
            slack = 10.0 if dataset == "WikiText" else 0.0
            for system in result.systems[1:]:
                cell = result.cells[(dataset, system)]
                if cell.supported:
                    assert cedar >= cell.f1 - slack, (dataset, system)

    def test_aggchecker_unsupported_on_wikitext(self, result):
        assert not result.cells[("WikiText", "AggC")].supported

    def test_tapex_zero_on_aggchecker(self, result):
        assert result.cells[("AggChecker", "TAPEX")].recall == 0.0

    def test_formatting_runs(self, result):
        from repro.experiments.table2 import format_table2

        text = format_table2(result)
        assert "CEDAR" in text and "Precision" in text

    def test_fast_builders_are_smaller(self):
        fast = dataset_builders(fast=True)["TabFact"]()
        assert fast.claim_count < 100


class TestTable3:
    def test_stats_cover_all_benchmarks(self):
        result = run_table3(fast=True)
        assert set(result.stats) == {
            "AggChecker", "TabFact", "WikiText", "JoinBench"
        }

    def test_joinbench_is_only_benchmark_with_joins(self):
        result = run_table3(fast=True)
        assert result.stats["JoinBench"].avg_joins > 0
        for name in ("AggChecker", "TabFact", "WikiText"):
            assert result.stats[name].avg_joins == 0

    def test_wikitext_has_group_by(self):
        result = run_table3(fast=True)
        assert result.stats["WikiText"].avg_group_by > 0


class TestJoinBenchExperiment:
    def test_cost_rises_with_normalisation(self):
        result = run_joinbench()
        assert result.joined_cost > result.flat_cost
        assert result.table_total == 23
        assert result.flat_f1 >= 85.0


class TestFigure6:
    def test_conversion_does_not_collapse_f1(self):
        result = run_figure6()
        assert result.converted_f1 >= result.aligned_f1 - 30
        assert result.aligned_f1 >= 80
        assert set(result.per_document_delta) == {
            f"units{i:02d}" for i in range(8)
        }


class TestFigure5Helpers:
    def test_pareto_front(self):
        points = [
            TradeoffPoint("cheap-bad", "single", 1.0, 50.0, 10),
            TradeoffPoint("dominated", "single", 2.0, 40.0, 10),
            TradeoffPoint("mid", "multi", 2.0, 70.0, 10),
            TradeoffPoint("expensive-best", "single", 9.0, 90.0, 10),
        ]
        front = Figure5Result(points).pareto_front()
        labels = [p.label for p in front]
        assert labels == ["cheap-bad", "mid", "expensive-best"]


class TestRunnerCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["nonsense"])

    def test_known_experiment_runs(self, capsys):
        assert runner.main(["joinbench", "--fast"]) == 0
        assert "JoinBench" in capsys.readouterr().out


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long header"], [["1", "2"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")
