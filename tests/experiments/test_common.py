"""Tests for the experiment-harness plumbing in experiments.common."""

import pytest

from repro.core import PlannedStage
from repro.datasets import build_tabfact
from repro.experiments.common import (
    build_cedar,
    format_table,
    reset_claims,
    run_cedar,
)


@pytest.fixture(scope="module")
def bundle():
    return build_tabfact(table_count=4, total_claims=12)


class TestCedarSystem:
    def test_four_paper_methods(self, bundle):
        system = build_cedar(bundle)
        names = [m.name for m in system.methods]
        assert names == [
            "one_shot[gpt-3.5-turbo]",
            "one_shot[gpt-4o]",
            "agent[gpt-4o]",
            "agent[gpt-4-turbo]",
        ]

    def test_shared_ledger(self, bundle):
        system = build_cedar(bundle)
        for method in system.methods:
            assert method.client.ledger is system.ledger
        assert system.verifier.ledger is system.ledger

    def test_method_by_name(self, bundle):
        system = build_cedar(bundle)
        assert system.method_by_name("agent[gpt-4o]") is system.methods[2]
        with pytest.raises(KeyError):
            system.method_by_name("nope")

    def test_entries_for_strips_zero_tries(self, bundle):
        system = build_cedar(bundle)
        planned = (
            PlannedStage("one_shot[gpt-3.5-turbo]", 2),
            PlannedStage("agent[gpt-4o]", 0),
            PlannedStage("agent[gpt-4-turbo]", 1),
        )
        entries = system.entries_for(planned)
        assert [(e.method.name, e.tries) for e in entries] == [
            ("one_shot[gpt-3.5-turbo]", 2),
            ("agent[gpt-4-turbo]", 1),
        ]


class TestRunCedarOptions:
    def test_injected_plan_skips_profiling(self, bundle):
        planned = (PlannedStage("one_shot[gpt-4o]", 1),)
        result = run_cedar(bundle, planned=planned, profiles={})
        assert result.schedule_description == "one_shot[gpt-4o]x1"
        # No profiling entries in this run's accounting.
        assert result.profiles == {}

    def test_document_subset(self, bundle):
        subset = bundle.documents[:2]
        result = run_cedar(bundle, documents=subset)
        claims = sum(len(d.claims) for d in subset)
        assert result.counts.total == claims
        assert all(c.correct is not None for d in subset for c in d.claims)
        reset_claims(bundle.documents)


class TestFormatTable:
    def test_separator_under_header(self):
        text = format_table(["col"], [["value"]])
        lines = text.splitlines()
        assert set(lines[1]) <= {"-", " "}

    def test_column_padding(self):
        text = format_table(["a", "b"], [["xxxx", "y"]])
        assert "xxxx  y" in text
