"""Fast-mode tests for the ablation studies (A1-A4)."""

import pytest

from repro.experiments.ablations import (
    AblationOutcome,
    ablate_masking,
    ablate_reconstruction,
    ablate_samples,
    ablate_scheduler,
    format_outcomes,
)


@pytest.fixture(scope="module")
def masking():
    return ablate_masking(fast=True)


@pytest.fixture(scope="module")
def samples():
    return ablate_samples(fast=True)


class TestMaskingAblation:
    def test_two_configurations(self, masking):
        assert [o.label for o in masking] == [
            "masked (Algorithm 4)", "unmasked (Figure 2 cheat)"
        ]

    def test_unmasked_collapses_recall(self, masking):
        masked, unmasked = masking
        assert unmasked.recall < masked.recall - 25

    def test_formatting(self, masking):
        text = format_outcomes("A1", masking)
        assert "A1" in text and "F1" in text


class TestSamplesAblation:
    def test_samples_improve_quality(self, samples):
        with_samples, without = samples
        assert with_samples.f1 >= without.f1

    def test_costs_positive(self, samples):
        assert all(o.cost > 0 for o in samples)


class TestReconstructionAblation:
    def test_note_reports_self_containedness(self):
        outcomes = ablate_reconstruction(fast=True)
        for outcome in outcomes:
            assert "self-contained" in outcome.note


class TestSchedulerAblation:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return ablate_scheduler(fast=True)

    def test_four_configurations(self, outcomes):
        assert len(outcomes) == 4

    def test_dp_much_cheaper_than_expensive_first(self, outcomes):
        by_label = {o.label: o for o in outcomes}
        dp = by_label["DP schedule (Algorithm 10)"]
        expensive = by_label["expensive-first"]
        assert dp.cost < expensive.cost / 2

    def test_outcome_properties(self):
        from repro.metrics import ConfusionCounts

        outcome = AblationOutcome("x", ConfusionCounts(1, 1, 0, 0), 0.5)
        assert outcome.f1 == pytest.approx(100 * 2 / 3)
        assert outcome.recall == 100.0
