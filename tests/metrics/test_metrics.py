"""Tests for classification, economics, and complexity metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.claims import Claim, Span
from repro.llm import CostLedger
from repro.metrics import (
    ConfusionCounts,
    RunEconomics,
    analyse_claims,
    analyse_query,
    economics_since,
    percentage,
    score_claims,
)


def make_claim(label, verdict):
    claim = Claim("The value 1 is here.", Span(2, 2), "ctx",
                  metadata={"label_correct": label})
    claim.correct = verdict
    return claim


class TestConfusion:
    def test_score_claims(self):
        claims = [
            make_claim(False, False),  # tp: incorrect, flagged
            make_claim(True, False),   # fp: correct, flagged
            make_claim(False, True),   # fn: incorrect, missed
            make_claim(True, True),    # tn
        ]
        counts = score_claims(claims)
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (1, 1, 1, 1)
        assert counts.precision == 0.5
        assert counts.recall == 0.5
        assert counts.f1 == 0.5

    def test_perfect(self):
        counts = ConfusionCounts(tp=5, tn=5)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0

    def test_degenerate_cases(self):
        assert ConfusionCounts().precision == 0.0
        assert ConfusionCounts().recall == 0.0
        assert ConfusionCounts().f1 == 0.0

    def test_addition(self):
        total = ConfusionCounts(1, 2, 3, 4) + ConfusionCounts(4, 3, 2, 1)
        assert (total.tp, total.fp, total.fn, total.tn) == (5, 5, 5, 5)

    def test_unverified_claim_rejected(self):
        claim = make_claim(True, None)
        with pytest.raises(ValueError):
            score_claims([claim])

    def test_unlabeled_claim_rejected(self):
        claim = make_claim(True, True)
        del claim.metadata["label_correct"]
        with pytest.raises(ValueError):
            score_claims([claim])

    def test_percentage(self):
        assert percentage(0.7174) == 71.7


@given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50),
       st.integers(0, 50))
@settings(max_examples=100, deadline=None)
def test_f1_is_harmonic_mean(tp, fp, fn, tn):
    counts = ConfusionCounts(tp, fp, fn, tn)
    p, r = counts.precision, counts.recall
    if p + r > 0:
        assert counts.f1 == pytest.approx(2 * p * r / (p + r))
    assert 0.0 <= counts.f1 <= 1.0
    assert min(p, r) - 1e-9 <= counts.f1 <= max(p, r) + 1e-9


class TestEconomics:
    def test_economics_since(self):
        ledger = CostLedger()
        ledger.record("m", 100, 50, 1.0, 10.0)
        mark = ledger.checkpoint()
        ledger.record("m", 100, 50, 2.0, 20.0)
        economics = economics_since(ledger, mark, claims=4)
        assert economics.cost == pytest.approx(2.0)
        assert economics.cost_per_claim == pytest.approx(0.5)
        assert economics.claims_per_hour == pytest.approx(4 * 3600 / 20.0)

    def test_zero_claims(self):
        economics = RunEconomics(0, 1.0, 10.0, 1, 100)
        assert economics.cost_per_claim == 0.0

    def test_zero_latency(self):
        economics = RunEconomics(5, 1.0, 0.0, 1, 100)
        assert economics.claims_per_hour == 0.0


class TestComplexity:
    def test_simple_lookup(self):
        measured = analyse_query(
            "SELECT a FROM t WHERE b = 'x'"
        )
        assert measured.joins == 0
        assert measured.aggregates == 0
        assert measured.subqueries == 0
        assert measured.columns == 2

    def test_percent_query(self):
        measured = analyse_query(
            "SELECT (SELECT COUNT(a) FROM t WHERE b = 'x') * 100.0 / "
            "(SELECT COUNT(a) FROM t)"
        )
        assert measured.subqueries == 2
        assert measured.aggregates == 2

    def test_join_counted(self):
        measured = analyse_query(
            "SELECT f.v FROM f JOIN d ON f.id = d.id JOIN e ON d.x = e.x"
        )
        assert measured.joins == 2

    def test_nested_join_in_subquery(self):
        measured = analyse_query(
            "SELECT v FROM f WHERE x = "
            "(SELECT MAX(x) FROM f JOIN d ON f.id = d.id)"
        )
        assert measured.joins == 1
        assert measured.subqueries == 1

    def test_group_by(self):
        measured = analyse_query(
            "SELECT g FROM t GROUP BY g ORDER BY SUM(v) DESC LIMIT 1"
        )
        assert measured.group_by == 1
        assert measured.aggregates == 1

    def test_columns_deduplicated(self):
        measured = analyse_query("SELECT a FROM t WHERE a > 1 AND a < 5")
        assert measured.columns == 1

    def test_analyse_claims_aggregation(self):
        claims = []
        for sql in ("SELECT a FROM t WHERE b = 'x'",
                    "SELECT COUNT(a) FROM t"):
            claim = Claim("v 1 w.", Span(1, 1), "ctx",
                          metadata={"reference_sql": sql})
            claims.append(claim)
        stats = analyse_claims(claims)
        assert stats.queries == 2
        assert stats.avg_aggregates == 0.5
        assert stats.max_columns == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyse_claims([])
