"""Per-domain scoring used by the Figure 7 study and the demo."""

from repro.datasets import build_aggchecker
from repro.experiments import run_cedar
from repro.metrics import ConfusionCounts, score_claims


class TestPerDomainScoring:
    def test_domain_scores_sum_to_total(self):
        bundle = build_aggchecker(document_count=8, total_claims=40)
        run_cedar(bundle, seed=3)
        total = score_claims(bundle.claims)
        by_domain = ConfusionCounts()
        for documents in bundle.documents_by_domain().values():
            claims = [c for d in documents for c in d.claims]
            by_domain = by_domain + score_claims(claims)
        assert (by_domain.tp, by_domain.fp, by_domain.fn, by_domain.tn) == (
            total.tp, total.fp, total.fn, total.tn
        )

    def test_every_domain_has_verdicts(self):
        bundle = build_aggchecker(document_count=8, total_claims=40)
        run_cedar(bundle, seed=3)
        for domain, documents in bundle.documents_by_domain().items():
            claims = [c for d in documents for c in d.claims]
            assert all(c.correct is not None for c in claims), domain
