"""Tests for the P1/P2 two-step prompt flow with the simulated model."""

import pytest

from repro.baselines import TextToSqlBaseline
from repro.datasets import build_tabfact
from repro.llm import CostLedger, SimulatedLLM
from repro.llm.simulated import QUESTION_MARKER, TEXT2SQL_MARKER


@pytest.fixture(scope="module")
def bundle():
    return build_tabfact(table_count=3, total_claims=9)


class RecordingClient(SimulatedLLM):
    """A simulated client that records prompts for inspection."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.prompts = []

    def _generate(self, prompt, temperature):
        self.prompts.append(prompt)
        return super()._generate(prompt, temperature)


class TestTwoStepFlow:
    def test_question_step_recognised_and_answered(self, bundle):
        client = RecordingClient("gpt-3.5-turbo", bundle.world,
                                 CostLedger(), seed=1)
        baseline = TextToSqlBaseline(client, "P1")
        baseline.verify_documents(bundle.documents[:1])
        question_prompts = [
            p for p in client.prompts if QUESTION_MARKER in p
        ]
        sql_prompts = [p for p in client.prompts if TEXT2SQL_MARKER in p]
        claims = len(bundle.documents[0].claims)
        assert len(question_prompts) == claims
        assert len(sql_prompts) == claims

    def test_question_embeds_masked_sentence(self, bundle):
        client = RecordingClient("gpt-3.5-turbo", bundle.world,
                                 CostLedger(), seed=1)
        TextToSqlBaseline(client, "P2").verify_documents(
            bundle.documents[:1]
        )
        # The generated question carries the masked sentence forward so
        # the second step stays grounded in the claim.
        sql_prompt = next(p for p in client.prompts
                          if TEXT2SQL_MARKER in p)
        from repro.core import mask_claim

        masked = mask_claim(bundle.documents[0].claims[0])
        assert masked.masked_sentence in sql_prompt

    def test_p1_prompt_contains_rows(self, bundle):
        client = RecordingClient("gpt-3.5-turbo", bundle.world,
                                 CostLedger(), seed=1)
        TextToSqlBaseline(client, "P1").verify_documents(
            bundle.documents[:1]
        )
        sql_prompt = next(p for p in client.prompts
                          if TEXT2SQL_MARKER in p)
        assert "CREATE TABLE" in sql_prompt
        assert "SELECT * FROM" in sql_prompt  # the "+ Select 3" part

    def test_p2_prompt_is_comment_style(self, bundle):
        client = RecordingClient("gpt-3.5-turbo", bundle.world,
                                 CostLedger(), seed=1)
        TextToSqlBaseline(client, "P2").verify_documents(
            bundle.documents[:1]
        )
        sql_prompt = next(p for p in client.prompts
                          if TEXT2SQL_MARKER in p)
        assert "### SQLite tables" in sql_prompt
        assert "CREATE TABLE" not in sql_prompt

    def test_penalty_applies_to_text2sql_prompts(self, bundle):
        client = SimulatedLLM("gpt-3.5-turbo", bundle.world, CostLedger())
        claim = bundle.claims[0]
        knowledge = bundle.world.by_id(claim.claim_id)
        base = client.success_probability(knowledge, False)
        from repro.llm.simulated import TEXT2SQL_PENALTY

        penalised = client.success_probability(
            knowledge, False, TEXT2SQL_PENALTY
        )
        assert penalised < base
