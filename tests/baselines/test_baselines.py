"""Tests for the prior-system baselines."""

import pytest

from repro.baselines import AggCheckerSystem, TapexBaseline, TextToSqlBaseline
from repro.datasets import build_tabfact, build_wikitext
from repro.llm import CostLedger, SimulatedLLM
from repro.metrics import score_claims


@pytest.fixture(scope="module")
def tabfact():
    return build_tabfact(table_count=8, total_claims=30)


@pytest.fixture(scope="module")
def wikitext():
    return build_wikitext(document_count=4, total_claims=12)


def reset(bundle):
    for claim in bundle.claims:
        claim.correct = None
        claim.query = None


class TestAggCheckerSystem:
    def test_assigns_verdicts_to_all_claims(self, tabfact):
        reset(tabfact)
        AggCheckerSystem().verify_documents(tabfact.documents)
        assert all(c.correct is not None for c in tabfact.claims)

    def test_textual_claims_passed_through(self, wikitext):
        reset(wikitext)
        AggCheckerSystem().verify_documents(wikitext.documents)
        # No textual support: everything marked correct.
        assert all(c.correct is True for c in wikitext.claims)

    def test_deterministic(self, tabfact):
        reset(tabfact)
        AggCheckerSystem().verify_documents(tabfact.documents)
        first = [c.correct for c in tabfact.claims]
        reset(tabfact)
        AggCheckerSystem().verify_documents(tabfact.documents)
        assert [c.correct for c in tabfact.claims] == first

    def test_uses_no_llm(self, tabfact):
        # The system is purely symbolic; nothing to assert about a ledger —
        # the constructor takes none.
        assert not hasattr(AggCheckerSystem(), "client")


class TestTapex:
    def test_large_tables_default_to_entailed(self):
        from repro.datasets import build_aggchecker

        bundle = build_aggchecker(document_count=6, total_claims=30)
        TapexBaseline(bundle.world).verify_documents(bundle.documents)
        counts = score_claims(bundle.claims)
        # The paper's headline TAPEX result: 0 recall on AggChecker
        # because the flattened tables exceed the context window.
        assert counts.recall == 0.0

    def test_small_tables_classified(self, tabfact):
        reset(tabfact)
        TapexBaseline(tabfact.world).verify_documents(tabfact.documents)
        counts = score_claims(tabfact.claims)
        assert counts.recall > 0.3
        assert counts.precision > 0.5

    def test_deterministic_per_seed(self, tabfact):
        reset(tabfact)
        TapexBaseline(tabfact.world, seed=1).verify_documents(
            tabfact.documents
        )
        first = [c.correct for c in tabfact.claims]
        reset(tabfact)
        TapexBaseline(tabfact.world, seed=1).verify_documents(
            tabfact.documents
        )
        assert [c.correct for c in tabfact.claims] == first

    def test_seed_changes_outcomes(self, tabfact):
        reset(tabfact)
        TapexBaseline(tabfact.world, seed=1).verify_documents(
            tabfact.documents
        )
        first = [c.correct for c in tabfact.claims]
        reset(tabfact)
        TapexBaseline(tabfact.world, seed=2).verify_documents(
            tabfact.documents
        )
        assert [c.correct for c in tabfact.claims] != first


class TestTextToSql:
    def make(self, bundle, template):
        ledger = CostLedger()
        client = SimulatedLLM("gpt-3.5-turbo", bundle.world, ledger, seed=4)
        return TextToSqlBaseline(client, template), ledger

    def test_p1_two_llm_calls_per_claim(self, tabfact):
        reset(tabfact)
        baseline, ledger = self.make(tabfact, "P1")
        baseline.verify_documents(tabfact.documents[:2])
        claims = sum(len(d.claims) for d in tabfact.documents[:2])
        assert ledger.totals().calls == 2 * claims

    def test_p1_p2_differ_in_prompts(self, tabfact):
        reset(tabfact)
        for template, marker in (("P1", "CREATE TABLE"), ("P2", "###")):
            baseline, ledger = self.make(tabfact, template)
            baseline.verify_documents(tabfact.documents[:1])
            assert baseline.template == template

    def test_invalid_template_rejected(self, tabfact):
        with pytest.raises(ValueError):
            self.make(tabfact, "P3")

    def test_worse_than_chance_precision_is_possible(self, tabfact):
        # The baseline flags liberally: precision must be well below the
        # CEDAR values measured on the same data (no plausibility loop).
        reset(tabfact)
        baseline, _ = self.make(tabfact, "P1")
        baseline.verify_documents(tabfact.documents)
        counts = score_claims(tabfact.claims)
        assert counts.precision < 0.8
        assert all(c.correct is not None for c in tabfact.claims)
