"""Tests for the DatasetBundle container and corpus-level invariants."""

import pytest

from repro.datasets import DatasetBundle, build_aggchecker
from repro.llm import ClaimWorld


@pytest.fixture(scope="module")
def bundle():
    return build_aggchecker(document_count=8, total_claims=40)


class TestBundle:
    def test_claims_flattened_in_document_order(self, bundle):
        flattened = bundle.claims
        expected = [
            claim.claim_id
            for document in bundle.documents
            for claim in document.claims
        ]
        assert [c.claim_id for c in flattened] == expected

    def test_counts(self, bundle):
        assert bundle.claim_count == 40
        labelled_incorrect = sum(
            1 for c in bundle.claims if not c.metadata["label_correct"]
        )
        assert bundle.incorrect_count == labelled_incorrect

    def test_documents_by_domain_partition(self, bundle):
        grouped = bundle.documents_by_domain()
        total = sum(len(docs) for docs in grouped.values())
        assert total == len(bundle.documents)
        for domain, documents in grouped.items():
            assert all(d.domain == domain for d in documents)

    def test_repr(self, bundle):
        text = repr(bundle)
        assert "aggchecker" in text
        assert "40 claims" in text

    def test_world_covers_every_claim(self, bundle):
        for claim in bundle.claims:
            knowledge = bundle.world.by_id(claim.claim_id)
            assert knowledge.unmasked_sentence == claim.sentence

    def test_empty_bundle(self):
        empty = DatasetBundle("empty", [], ClaimWorld())
        assert empty.claim_count == 0
        assert empty.incorrect_count == 0
        assert empty.documents_by_domain() == {}


class TestCorpusInvariants:
    def test_every_claim_has_required_metadata(self, bundle):
        for claim in bundle.claims:
            for key in ("label_correct", "kind", "recipe", "reference_sql",
                        "theme", "domain"):
                assert key in claim.metadata, (claim.claim_id, key)

    def test_claim_ids_globally_unique(self, bundle):
        ids = [c.claim_id for c in bundle.claims]
        assert len(ids) == len(set(ids))

    def test_every_document_database_has_the_theme_table(self, bundle):
        for document in bundle.documents:
            table_names = document.data.table_names()
            assert len(table_names) == 1  # flat single-table corpora

    def test_contexts_contain_sentences(self, bundle):
        for claim in bundle.claims:
            assert claim.sentence in claim.context

    def test_difficulties_in_range(self, bundle):
        for claim in bundle.claims:
            knowledge = bundle.world.by_id(claim.claim_id)
            assert 0.05 <= knowledge.difficulty <= 0.95
