"""Tests for dataset generation: integrity, determinism, shapes."""

import random

import pytest

from repro.core import validate_claim
from repro.core.masking import mask_claim
from repro.datasets import (
    ClaimGenerator,
    GenerationSettings,
    build_aggchecker,
    build_joinbench,
    build_sql,
    build_tabfact,
    build_units_benchmark,
    build_wikitext,
    generate_database,
    generate_table,
    theme_by_key,
)
from repro.datasets.themes import AIRLINE_SAFETY, ALL_THEMES
from repro.llm import ClaimWorld
from repro.sqlengine import Engine


class TestTableGeneration:
    def test_rows_within_range(self):
        rng = random.Random(0)
        table = generate_table(AIRLINE_SAFETY, rng)
        assert AIRLINE_SAFETY.row_range[0] <= len(table) or (
            len(table) == len(AIRLINE_SAFETY.entity_column.vocabulary)
        )

    def test_entities_unique(self):
        rng = random.Random(1)
        table = generate_table(AIRLINE_SAFETY, rng)
        entities = table.column_values("airline")
        assert len(set(entities)) == len(entities)

    def test_filler_rows(self):
        import dataclasses
        theme = dataclasses.replace(AIRLINE_SAFETY,
                                    filler_row_range=(30, 30))
        table = generate_table(theme, random.Random(2))
        assert len(table) >= 30

    def test_deterministic_for_seed(self):
        first = generate_table(AIRLINE_SAFETY, random.Random(7))
        second = generate_table(AIRLINE_SAFETY, random.Random(7))
        assert first.rows == second.rows


class TestClaimGenerator:
    def make_generator(self, seed=3):
        rng = random.Random(seed)
        database = generate_database(AIRLINE_SAFETY, rng, name="t")
        world = ClaimWorld()
        return ClaimGenerator(AIRLINE_SAFETY, database, world, rng, "t"), \
            database, world

    def settings(self, **overrides):
        defaults = dict(
            kind_weights={"lookup": 0.5, "count": 0.3, "avg": 0.2},
            incorrect_rate=0.4,
            hard_fraction=0.0,
            misread_fraction=0.0,
        )
        defaults.update(overrides)
        return GenerationSettings(**defaults)

    def test_label_matches_reference_query(self):
        generator, database, _ = self.make_generator()
        for _ in range(25):
            generated = generator.generate(self.settings())
            claim = generated.claim
            verdict = validate_claim(
                claim.metadata["reference_sql"], claim, database
            )
            assert verdict == claim.metadata["label_correct"]

    def test_knowledge_registered(self):
        generator, _, world = self.make_generator()
        generated = generator.generate(self.settings())
        assert world.by_id(generated.claim.claim_id) is generated.knowledge

    def test_masked_sentence_is_world_key(self):
        generator, _, world = self.make_generator()
        generated = generator.generate(self.settings())
        masked = mask_claim(generated.claim)
        assert world.has_sentence(masked.masked_sentence)

    def test_sentences_unique(self):
        generator, _, _ = self.make_generator()
        sentences = {
            generator.generate(self.settings()).claim.sentence
            for _ in range(20)
        }
        assert len(sentences) == 20

    def test_span_covers_value(self):
        generator, _, _ = self.make_generator()
        for _ in range(20):
            claim = generator.generate(self.settings()).claim
            assert claim.value_text  # raises if the span is out of range

    def test_trap_constants_consistent(self):
        generator, database, _ = self.make_generator(seed=5)
        for _ in range(40):
            generated = generator.generate(self.settings())
            trap = generated.knowledge.lookup_trap
            if trap is None:
                continue
            # The stored constant is in the data; the wrong constant is in
            # the sentence, not in the data.
            table = database.table(AIRLINE_SAFETY.table_name)
            stored = table.unique_column_values(trap.column)
            assert trap.right_constant in [str(v) for v in stored]
            assert trap.wrong_constant in generated.claim.sentence

    def test_hard_fraction_produces_ambiguous(self):
        generator, _, _ = self.make_generator(seed=9)
        settings = self.settings(hard_fraction=1.0)
        generated = generator.generate(settings)
        assert generated.knowledge.ambiguous
        assert generated.knowledge.difficulty > 0.7

    def test_misread_sql_executable_and_different(self):
        generator, database, _ = self.make_generator(seed=11)
        settings = self.settings(misread_fraction=1.0)
        engine = Engine(database)
        seen = 0
        for _ in range(20):
            generated = generator.generate(settings)
            misread = generated.knowledge.misread_sql
            if misread is None:
                continue
            seen += 1
            assert misread != generated.knowledge.reference_sql
            engine.execute(misread)  # must be valid SQL
        assert seen > 0

    def test_decomposition_steps_execute(self):
        generator, database, _ = self.make_generator(seed=13)
        settings = self.settings(
            kind_weights={"superlative_numeric": 1.0}
        )
        generated = generator.generate(settings)
        engine = Engine(database)
        assert len(generated.knowledge.decomposition) == 2
        for step in generated.knowledge.decomposition:
            engine.execute(step)

    def test_build_sql_matches_metadata(self):
        generator, _, _ = self.make_generator(seed=17)
        generated = generator.generate(self.settings())
        recipe = generated.claim.metadata["recipe"]
        rebuilt = build_sql(recipe, AIRLINE_SAFETY.table_name)
        assert rebuilt == generated.claim.metadata["reference_sql"]


class TestBundles:
    def test_aggchecker_shape(self):
        bundle = build_aggchecker(document_count=8, total_claims=40)
        assert len(bundle.documents) == 8
        assert bundle.claim_count == 40
        domains = {d.domain for d in bundle.documents}
        assert domains <= {"538", "stackoverflow", "nytimes", "wikipedia"}

    def test_aggchecker_default_shape_matches_paper(self):
        bundle = build_aggchecker()
        assert len(bundle.documents) == 56
        assert bundle.claim_count == 392

    def test_tabfact_shape(self):
        bundle = build_tabfact(table_count=6, total_claims=18)
        assert len(bundle.documents) == 6
        assert bundle.claim_count == 18
        assert all(c.is_numeric for c in bundle.claims)

    def test_wikitext_all_textual(self):
        bundle = build_wikitext(document_count=4, total_claims=12)
        assert all(not c.is_numeric for c in bundle.claims)

    def test_joinbench_tables_and_reuse(self):
        bundles = build_joinbench()
        assert bundles["joined"].extras["table_total"] == 23
        flat_sentences = [c.sentence for c in bundles["flat"].claims]
        joined_sentences = [c.sentence for c in bundles["joined"].claims]
        assert flat_sentences == joined_sentences  # claims reused verbatim

    def test_joinbench_joined_queries_use_joins(self):
        bundles = build_joinbench()
        join_count = sum(
            1 for c in bundles["joined"].claims
            if "JOIN" in c.metadata["reference_sql"].upper()
        )
        assert join_count > len(bundles["joined"].claims) / 3

    def test_units_variants_parallel(self):
        bundles = build_units_benchmark()
        aligned = bundles["aligned"].claims
        converted = bundles["converted"].claims
        assert len(aligned) == len(converted) == 20
        for left, right in zip(aligned, converted):
            assert left.metadata["kind"] == right.metadata["kind"]
            assert (left.metadata["label_correct"]
                    == right.metadata["label_correct"])

    def test_units_converted_queries_scale(self):
        bundles = build_units_benchmark()
        scaled = sum(
            1 for c in bundles["converted"].claims
            if "*" in c.metadata["reference_sql"]
        )
        assert scaled == len(bundles["converted"].claims)

    @pytest.mark.parametrize("builder", [
        lambda: build_tabfact(table_count=4, total_claims=12),
        lambda: build_wikitext(document_count=3, total_claims=9),
    ])
    def test_determinism(self, builder):
        first = builder()
        second = builder()
        assert [c.sentence for c in first.claims] == [
            c.sentence for c in second.claims
        ]

    def test_all_labels_consistent_across_bundles(self):
        for bundle in (
            build_tabfact(table_count=5, total_claims=15),
            build_wikitext(document_count=3, total_claims=9),
        ):
            docmap = {d.doc_id: d for d in bundle.documents}
            for claim in bundle.claims:
                doc = docmap[claim.claim_id.rsplit("/", 1)[0]]
                verdict = validate_claim(
                    claim.metadata["reference_sql"], claim, doc.data
                )
                if claim.metadata.get("surface_variant"):
                    continue  # intentionally unverifiable-correct claims
                assert verdict == claim.metadata["label_correct"], (
                    claim.claim_id
                )


class TestThemes:
    def test_theme_lookup(self):
        assert theme_by_key("airline_safety") is AIRLINE_SAFETY
        with pytest.raises(KeyError):
            theme_by_key("nonexistent")

    def test_all_themes_have_distinct_tables(self):
        names = [t.table_name for t in ALL_THEMES]
        assert len(set(names)) == len(names)

    def test_column_names_unique_per_theme(self):
        for theme in ALL_THEMES:
            names = theme.column_names
            assert len(set(names)) == len(names), theme.key
