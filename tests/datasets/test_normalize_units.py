"""Direct tests for schema normalisation and unit conversions."""

import random

import pytest

from repro.datasets import (
    GenerationSettings,
    conversion_for,
    generate_database,
    joined_sql,
    normalize_database,
)
from repro.datasets.claimgen import ClaimGenerator, QueryRecipe, build_sql
from repro.datasets.themes import AIRLINE_SAFETY
from repro.datasets.units import CONVERSIONS, UnitConversion
from repro.llm import ClaimWorld
from repro.sqlengine import Engine


@pytest.fixture(scope="module")
def flat_and_normalized():
    rng = random.Random(4)
    database = generate_database(AIRLINE_SAFETY, rng, name="flat")
    flat_table = database.table(AIRLINE_SAFETY.table_name)
    normalized, naming = normalize_database(AIRLINE_SAFETY, flat_table)
    return database, flat_table, normalized, naming


class TestNormalize:
    def test_table_inventory(self, flat_and_normalized):
        _, _, normalized, naming = flat_and_normalized
        # 4 numeric columns split into 4 facts + 2 dims + 2 bridges = 8.
        assert len(normalized) == 8
        assert naming.table_count == 8

    def test_row_counts_preserved(self, flat_and_normalized):
        _, flat_table, normalized, naming = flat_and_normalized
        entities = normalized.table(naming.entity_table)
        assert len(entities) == len(flat_table)

    def test_dims_hold_distinct_values(self, flat_and_normalized):
        _, flat_table, normalized, naming = flat_and_normalized
        dim = normalized.table(naming.dim_tables["region"])
        assert set(dim.column_values("region")) == set(
            flat_table.unique_column_values("region")
        )

    def test_fact_split_validation(self, flat_and_normalized):
        database, flat_table, _, _ = flat_and_normalized
        with pytest.raises(ValueError):
            normalize_database(AIRLINE_SAFETY, flat_table, fact_split=0)
        with pytest.raises(ValueError):
            normalize_database(AIRLINE_SAFETY, flat_table,
                               fact_sizes=(1, 1))  # does not cover all

    def test_all_columns_unique(self, flat_and_normalized):
        *_, naming = flat_and_normalized
        columns = naming.all_columns()
        assert len(columns) == len(set(columns))


class TestJoinedSqlEquivalence:
    """The joined rebuild of a recipe must compute the same value as the
    flat query — for every recipe kind JoinBench uses."""

    def recipes(self, flat_table):
        entity_value = str(flat_table.rows[0][0])
        region_value = str(flat_table.rows[0][1])
        return [
            QueryRecipe("lookup", value_column="incidents",
                        filters=(("airline", entity_value),),
                        entity_column="airline"),
            QueryRecipe("count", value_column="airline", aggregate="COUNT",
                        filters=(("region", region_value),),
                        entity_column="airline"),
            QueryRecipe("count", value_column="airline", aggregate="COUNT",
                        numeric_filter=("incidents", ">", 10.0),
                        entity_column="airline"),
            QueryRecipe("sum", value_column="incidents", aggregate="SUM",
                        entity_column="airline"),
            QueryRecipe("avg", value_column="incidents", aggregate="AVG",
                        filters=(("region", region_value),),
                        entity_column="airline"),
            QueryRecipe("percent", value_column="airline",
                        aggregate="COUNT",
                        filters=(("region", region_value),),
                        entity_column="airline"),
            QueryRecipe("superlative_numeric", value_column="incidents",
                        inner_aggregate=("MAX", "fatal_accidents_85_99"),
                        entity_column="airline"),
        ]

    def test_equivalence(self, flat_and_normalized):
        database, flat_table, normalized, naming = flat_and_normalized
        flat_engine = Engine(database)
        joined_engine = Engine(normalized)
        for recipe in self.recipes(flat_table):
            flat_sql = build_sql(recipe, AIRLINE_SAFETY.table_name)
            join_sql = joined_sql(recipe, naming)
            flat_value = flat_engine.execute(flat_sql).first_cell()
            join_value = joined_engine.execute(join_sql).first_cell()
            assert flat_value == pytest.approx(join_value), recipe.kind

    def test_joined_queries_actually_join(self, flat_and_normalized):
        database, flat_table, _, naming = flat_and_normalized
        recipe = QueryRecipe(
            "lookup", value_column="incidents",
            filters=(("airline", str(flat_table.rows[0][0])),),
            entity_column="airline",
        )
        assert "JOIN" in joined_sql(recipe, naming)


class TestUnitConversions:
    def test_linear_conversion(self):
        metres_to_feet = conversion_for("length_m")
        assert metres_to_feet.convert(1.0) == pytest.approx(3.28084)

    def test_affine_conversion(self):
        c_to_f = conversion_for("temperature")
        assert c_to_f.convert(0.0) == pytest.approx(32.0)
        assert c_to_f.convert(100.0) == pytest.approx(212.0)

    def test_wrap_sql_executes(self):
        from repro.sqlengine import Database, Table

        database = Database("u")
        database.add(Table("t", ["v"], [(100.0,)]))
        conversion = conversion_for("temperature")
        wrapped = conversion.wrap_sql('"v"')
        sql = f"SELECT {wrapped} FROM t"
        assert Engine(database).execute_scalar(sql) == pytest.approx(212.0)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            conversion_for("furlongs")

    def test_all_conversions_consistent(self):
        for kind, conversion in CONVERSIONS.items():
            assert isinstance(conversion, UnitConversion)
            assert conversion.kind == kind
            assert conversion.scale != 0

    def test_converted_claims_verified_against_converted_query(self):
        """A converted-units claim generated end to end must round-trip."""
        from repro.core import validate_claim
        from repro.datasets.themes import CLIMATE

        rng = random.Random(9)
        database = generate_database(CLIMATE, rng, name="c")
        world = ClaimWorld()
        generator = ClaimGenerator(CLIMATE, database, world, rng, "c")
        settings = GenerationSettings(
            kind_weights={"lookup": 1.0},
            incorrect_rate=0.0,
            convert_units=True,
            restrict_convertible=True,
            hard_fraction=0.0,
            misread_fraction=0.0,
        )
        generated = generator.generate(settings)
        assert generated.knowledge.needs_unit_conversion
        assert validate_claim(
            generated.knowledge.reference_sql, generated.claim, database
        )
        # The naive query (without conversion) must NOT validate.
        assert not validate_claim(
            generated.knowledge.naive_unit_sql, generated.claim, database
        )
