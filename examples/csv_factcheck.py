"""Fact-check claims against your own CSV file.

The realistic adoption path: a data file on disk, a paragraph of prose
making claims about it. This example writes a small CSV, loads it with
column-wise type sniffing, defines claims over it, and verifies them.

With network access you would pass an
:class:`repro.llm.OpenAIChatClient` to the methods instead of the
simulated client — nothing else changes.

Run with::

    python examples/csv_factcheck.py
"""

import tempfile
from pathlib import Path

from repro.core import (
    Claim,
    Document,
    MultiStageVerifier,
    OneShotMethod,
    ScheduleEntry,
    Span,
    VerifierConfig,
    mask_claim,
)
from repro.llm import ClaimKnowledge, ClaimWorld, CostLedger, SimulatedLLM
from repro.sqlengine import Database, load_csv

CSV_CONTENT = """\
city,region,violent_crimes,population_k
Chicago,Midwest,24000,2746
Houston,South,16500,2304
Phoenix,West,7800,1608
Philadelphia,Northeast,14800,1603
Seattle,West,5200,737
"""

ARTICLE = (
    "Crime statistics for the five largest tracked cities were released "
    "this week. {s0} {s1} Experts cautioned against year-on-year "
    "comparisons."
)

SENTENCES = [
    # Correct: Chicago's number is 24000.
    ("Chicago reported 24,000 violent crimes last year.", Span(2, 2),
     'SELECT "violent_crimes" FROM "crime" WHERE "city" = \'Chicago\''),
    # Incorrect: the true total is 68300.
    ("Across all five cities, 75,000 violent crimes were recorded.",
     Span(4, 4), 'SELECT SUM("violent_crimes") FROM "crime"'),
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "crime.csv"
        csv_path.write_text(CSV_CONTENT)

        table = load_csv(csv_path)  # types sniffed column-wise
        print(f"Loaded {table.name}: {table.column_names}, "
              f"{len(table)} rows")
        database = Database("crime-data")
        database.add(table)

        claims = []
        for sentence, span, _ in SENTENCES:
            context = ARTICLE.format(
                s0=SENTENCES[0][0], s1=SENTENCES[1][0]
            )
            claims.append(Claim(sentence, span, context))
        document = Document("crime-article", claims, database)

        # Offline only: teach the simulated model the reference
        # translations. With OpenAIChatClient this block disappears.
        world = ClaimWorld()
        for claim, (_, _, reference) in zip(document.claims, SENTENCES):
            masked = mask_claim(claim)
            world.register(ClaimKnowledge(
                claim_id=claim.claim_id,
                masked_sentence=masked.masked_sentence,
                unmasked_sentence=claim.sentence,
                reference_sql=reference,
                claim_value_text=claim.value_text,
                claim_type="numeric",
                difficulty=0.15,
                table_name=table.name,
                columns=tuple(table.column_names),
            ))

        ledger = CostLedger()
        method = OneShotMethod(SimulatedLLM("gpt-4o", world, ledger))
        verifier = MultiStageVerifier(config=VerifierConfig(ledger=ledger))
        verifier.verify_documents([document], [ScheduleEntry(method, 2)])

        print()
        for claim in document.claims:
            marker = "✔ consistent" if claim.correct else "✘ contradicted"
            print(f"{marker}: {claim.sentence}")
            print(f"    via {claim.query}")
        print(f"\nspend: ${ledger.total_cost:.5f}")


if __name__ == "__main__":
    main()
