"""Verify claims over a normalised multi-table schema (Section 7.3.2).

JoinBench decomposes flat tables into dimension/bridge/fact tables, so a
correct claim translation requires joins. This example builds both
variants of one schema, verifies the same claims over each, and shows how
normalisation shifts work onto the (expensive) agents.

Run with::

    python examples/join_verification.py
"""

from repro.datasets import build_joinbench
from repro.experiments import run_cedar
from repro.metrics import score_claims


def main() -> None:
    bundles = build_joinbench(seed=31)
    flat, joined = bundles["flat"], bundles["joined"]

    print("Flat schemas:", ", ".join(
        f"{d.data.name} ({len(d.data)} table)" for d in flat.documents
    ))
    print(f"Normalised variant: "
          f"{joined.extras['table_total']} tables in total\n")
    sample = joined.documents[0]
    print(f"Tables of {sample.data.name}:")
    for table in sample.data.tables():
        print(f"  {table.name:35} {len(table.column_names)} cols, "
              f"{len(table)} rows")

    results = {}
    for label, bundle in (("flat", flat), ("joined", joined)):
        results[label] = run_cedar(bundle, seed=0)

    print("\nSame claims, two schemas:")
    for label, run in results.items():
        counts = score_claims(
            [c for d in (flat if label == "flat" else joined).documents
             for c in d.claims]
        )
        print(f"  {label:7} F1={100 * counts.f1:5.1f}  "
              f"cost=${run.economics.cost:.4f}  "
              f"schedule: {run.schedule_description}")
    ratio = (results["joined"].economics.cost
             / max(results["flat"].economics.cost, 1e-9))
    print(f"\nNormalisation multiplies verification cost by "
          f"{ratio:.1f}x (the paper reports ~3x) because join claims "
          "defeat one-shot translation more often and escalate to agents.")

    print("\nA claim and its two ground-truth translations:")
    claim = flat.claims[0]
    joined_claim = joined.claims[0]
    print(f"  claim:  {claim.sentence}")
    print(f"  flat:   {claim.metadata['reference_sql']}")
    print(f"  joined: {joined_claim.metadata['reference_sql']}")


if __name__ == "__main__":
    main()
