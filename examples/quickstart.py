"""Quickstart: verify two claims about a small table, end to end.

This walks the whole public API on hand-written data:

1. build a :class:`~repro.sqlengine.Database`;
2. write claims as sentences with value spans (the paper's claim model);
3. wire the simulated GPT clients and CEDAR's verification methods;
4. run multi-stage verification and inspect verdicts, queries, and costs.

Run with::

    python examples/quickstart.py
"""

from repro.agents import install_agent_policy
from repro.core import (
    AgentMethod,
    Claim,
    Document,
    OneShotMethod,
    ScheduleEntry,
    Span,
    VerifierConfig,
    verify,
)
from repro.llm import ClaimKnowledge, ClaimWorld, CostLedger, SimulatedLLM
from repro.sqlengine import Database, Table


def build_database() -> Database:
    """The airline-safety table from the paper's running example."""
    database = Database("quickstart")
    database.add(Table(
        "airlinesafety",
        ["airline", "fatal_accidents_00_14", "incidents"],
        [
            ("Malaysia Airlines", 2, 24),
            ("KLM", 0, 8),
            ("Lufthansa", 1, 12),
            ("Qantas", 0, 5),
        ],
    ))
    return database


def build_document(database: Database) -> Document:
    """Two claims: one correct (the paper's Example 1.1), one wrong."""
    correct_sentence = (
        "The two fatal accidents involving Malaysia Airlines this year "
        "were the first for the carrier since 1995."
    )
    wrong_sentence = "KLM logged 11 safety incidents over the period."
    claims = [
        Claim(correct_sentence, Span(1, 1),
              f"Aviation safety remains under scrutiny. {correct_sentence}",
              metadata={"label_correct": True}),
        Claim(wrong_sentence, Span(2, 2),
              f"Regulators publish incident counts. {wrong_sentence}",
              metadata={"label_correct": False}),
    ]
    return Document("quickstart-doc", claims, database)


def build_world(document: Document) -> ClaimWorld:
    """Teach the *simulated* LLM what each claim means.

    With a real OpenAI client this registry would not exist — the model's
    language understanding plays this role. The registry holds, per claim,
    the reference SQL and difficulty features (see DESIGN.md).
    """
    world = ClaimWorld()
    reference = {
        "quickstart-doc/c0": (
            'SELECT "fatal_accidents_00_14" FROM "airlinesafety" '
            "WHERE \"airline\" = 'Malaysia Airlines'"
        ),
        "quickstart-doc/c1": (
            'SELECT "incidents" FROM "airlinesafety" '
            "WHERE \"airline\" = 'KLM'"
        ),
    }
    for claim in document.claims:
        from repro.core import mask_claim

        masked = mask_claim(claim)
        world.register(ClaimKnowledge(
            claim_id=claim.claim_id,
            masked_sentence=masked.masked_sentence,
            unmasked_sentence=claim.sentence,
            reference_sql=reference[claim.claim_id],
            claim_value_text=claim.value_text,
            claim_type="numeric",
            difficulty=0.15,
            table_name="airlinesafety",
            columns=("airline", "fatal_accidents_00_14", "incidents"),
        ))
    return world


def main() -> None:
    database = build_database()
    document = build_document(database)
    world = build_world(document)

    # One shared ledger so every model call is billed in one place.
    ledger = CostLedger()
    cheap = OneShotMethod(SimulatedLLM("gpt-3.5-turbo", world, ledger))
    strong = AgentMethod(
        install_agent_policy(SimulatedLLM("gpt-4o", world, ledger, seed=1))
    )

    schedule = [ScheduleEntry(cheap, tries=2), ScheduleEntry(strong, tries=1)]
    run = verify(document, schedule=schedule,
                 config=VerifierConfig(ledger=ledger))

    print("=== Verification results ===")
    for claim in document.claims:
        report = run.report_for(claim)
        verdict = "CORRECT" if claim.correct else "INCORRECT"
        print(f"\nClaim: {claim.sentence}")
        print(f"  verdict:  {verdict}")
        print(f"  query:    {claim.query}")
        print(f"  method:   {report.verified_by} "
              f"(attempts: {report.attempts})")
    totals = ledger.totals()
    print(f"\nLLM calls: {totals.calls}, tokens: {totals.total_tokens}, "
          f"cost: ${totals.cost:.5f}")


if __name__ == "__main__":
    main()
