"""Reproduce the paper's Figure 4: the agent escaping a constant trap.

The claim speaks of "Inter Milan" but the data stores the club as
"Inter". A one-shot translation uses the prose constant, gets an empty
result, and fails. The ReAct agent observes the error, consults the
``unique_column_values`` tool, corrects the constant, and verifies the
claim — exactly the trace shown in the paper.

Run with::

    python examples/agent_trace_demo.py
"""

from repro.agents import install_agent_policy
from repro.core import (
    AgentMethod,
    Claim,
    OneShotMethod,
    Span,
    assess_query,
    mask_claim,
)
from repro.llm import (
    ClaimKnowledge,
    ClaimWorld,
    CostLedger,
    LookupTrap,
    SimulatedLLM,
)
from repro.sqlengine import Database, Table


def main() -> None:
    database = Database("figure4")
    database.add(Table(
        "drinks",
        ["country", "wine_servings", "beer_servings"],
        [
            ("France", 370, 127),
            ("USA", 84, 249),      # stored as 'USA', not 'United States'
            ("Italy", 340, 85),
            ("Portugal", 339, 194),
        ],
    ))
    sentence = (
        "The French consume more wine than people in any other country - "
        "370 glasses of wine per person per year, compared to just 84 "
        "glasses in the U.S."
    )
    # The claimed value "84" is the 24th whitespace token.
    claim = Claim(sentence, Span(23, 23), sentence, "fig4/c0")
    masked = mask_claim(claim)

    world = ClaimWorld()
    world.register(ClaimKnowledge(
        claim_id=claim.claim_id,
        masked_sentence=masked.masked_sentence,
        unmasked_sentence=sentence,
        reference_sql=(
            'SELECT "wine_servings" FROM "drinks" WHERE "country" = \'USA\''
        ),
        claim_value_text=claim.value_text,
        claim_type="numeric",
        difficulty=0.2,
        table_name="drinks",
        columns=("country", "wine_servings", "beer_servings"),
        # The Figure 4 hazard: prose says 'United States', data says 'USA'.
        lookup_trap=LookupTrap("country", "United States", "USA"),
    ))

    ledger = CostLedger()

    print("=== Stage 1: one-shot GPT-3.5 falls into the trap ===")
    oneshot = OneShotMethod(SimulatedLLM("gpt-3.5-turbo", world, ledger,
                                         seed=6))
    attempt = oneshot.translate(masked, "numeric", claim.value,
                                claim.value_text, database, None, 0.0)
    print(f"query:      {attempt.query}")
    assessment = assess_query(attempt.query, claim, database)
    print(f"executable: {assessment.executable}, "
          f"plausible: {assessment.plausible}"
          + (f", error: {assessment.error}" if assessment.error else ""))

    print("\n=== Stage 2: the GPT-4o agent recovers (Figure 4) ===")
    # Seeds vary the agent's draws; pick one where the trap path shows.
    for seed in range(20):
        client = install_agent_policy(
            SimulatedLLM("gpt-4o", world, ledger, seed=seed)
        )
        agent = AgentMethod(client)
        outcome = agent.translate(masked, "numeric", claim.value,
                                  claim.value_text, database, None, 0.0)
        if "unique_column_values" in outcome.trace_text:
            break
    print(outcome.trace_text)
    print(f"\nreconstructed query: {outcome.query}")
    verdict = assess_query(outcome.query, claim, database)
    print(f"result: {verdict.result}, plausible: {verdict.plausible}")
    print(f"\ntotal simulated spend: ${ledger.total_cost:.5f} over "
          f"{ledger.totals().calls} LLM calls")


if __name__ == "__main__":
    main()
