"""Explore the cost-accuracy dial (the paper's Section 6 contribution).

Profiles the four verification methods on a labeled sample, prints the
Pareto frontier the DP scheduler (Algorithm 10) computes, and shows how
the selected schedule — and the realized cost and F1 — move as the user's
accuracy threshold changes.

Run with::

    python examples/schedule_tuning.py
"""

from repro.core import (
    describe_schedule,
    optimal_schedule,
    pareto_schedules,
    schedule_accuracy,
    schedule_cost,
    select_schedule,
)
from repro.datasets import build_aggchecker
from repro.experiments import build_cedar, profile_system, run_cedar


def main() -> None:
    bundle = build_aggchecker(document_count=12, total_claims=72, seed=5)
    system = build_cedar(bundle, seed=0)
    profiles = profile_system(system, bundle.documents[:3])

    print("Method profiles (accuracy, $/claim):")
    for name, profile in profiles.items():
        print(f"  {name:28} A={profile.accuracy:4.2f} "
              f"C=${profile.cost:.5f}")

    frontier = pareto_schedules(profiles, max_tries=3)
    print(f"\nPareto frontier: {len(frontier)} schedules; a sample:")
    for scored in sorted(frontier, key=lambda s: s.cost)[::max(1, len(frontier) // 8)]:
        print(f"  A={scored.accuracy:5.3f}  C=${scored.cost:.5f}  "
              f"{describe_schedule(scored.schedule)}")

    print("\nThreshold sweep (model estimate vs realized):")
    header = (f"{'threshold':>9}  {'est. accuracy':>13}  "
              f"{'est. $/claim':>12}  {'realized F1':>11}  "
              f"{'realized $/claim':>16}  schedule")
    print(header)
    for threshold in (0.5, 0.7, 0.9, 0.95, 0.99):
        planned = select_schedule(frontier, threshold)
        estimate_a = schedule_accuracy(planned, profiles)
        estimate_c = schedule_cost(planned, profiles)
        run = run_cedar(bundle, accuracy_threshold=threshold, seed=0,
                        profiles=profiles, planned=planned)
        print(f"{threshold:9.2f}  {estimate_a:13.3f}  "
              f"{estimate_c:12.5f}  {100 * run.counts.f1:11.1f}  "
              f"{run.economics.cost_per_claim:16.5f}  "
              f"{describe_schedule(planned)}")

    strict = optimal_schedule(profiles, 0.99)
    print(f"\nAt 99% the scheduler escalates through "
          f"{len(strict)} stages: {describe_schedule(strict)}")


if __name__ == "__main__":
    main()
