"""Fact-check a generated newspaper data summary (the paper's motivating
scenario: a spell-checker for numbers).

Generates one AggChecker-style document (a 538-like article over an
airline-safety table), runs the full CEDAR stack — profiling, cost-based
scheduling at a 99 % accuracy target, multi-stage verification — and
prints an annotated article with per-claim verdicts and the money spent.

Run with::

    python examples/newspaper_factcheck.py
"""

from repro.core import describe_schedule, optimal_schedule
from repro.datasets import build_aggchecker
from repro.experiments import build_cedar, profile_system, reset_claims
from repro.metrics import score_claims


def main() -> None:
    # A small AggChecker-style corpus: the first documents profile the
    # methods, the last one plays the article under review.
    bundle = build_aggchecker(document_count=6, total_claims=42, seed=21)
    *profiling_docs, article = bundle.documents

    system = build_cedar(bundle, seed=2)
    print(f"Profiling {len(profiling_docs)} documents "
          f"({sum(len(d.claims) for d in profiling_docs)} labeled claims)…")
    profiles = profile_system(system, profiling_docs)
    for name, profile in profiles.items():
        print(f"  {name:28} accuracy={profile.accuracy:5.2f} "
              f"cost/claim=${profile.cost:.5f}")

    planned = optimal_schedule(profiles, min_accuracy=0.99)
    print(f"\nOptimal schedule @99%: {describe_schedule(planned)}")

    reset_claims([article])
    checkpoint = system.ledger.checkpoint()
    run = system.verifier.verify_documents(
        [article], system.entries_for(planned)
    )

    print(f"\n=== {article.title} ===")
    for claim in article.claims:
        report = run.report_for(claim)
        flag = "OK " if claim.correct else "FLAGGED"
        stage = report.verified_by or "fallback"
        print(f"[{flag}] {claim.sentence}")
        print(f"        via {stage}, {report.attempts} attempt(s)")
        if not claim.correct and claim.query:
            print(f"        evidence query: {claim.query}")

    counts = score_claims(article.claims)
    spent = system.ledger.totals_since(checkpoint)
    print(f"\nDetection quality on this article: precision "
          f"{counts.precision:.0%}, recall {counts.recall:.0%}")
    print(f"Verification spend: ${spent.cost:.4f} across {spent.calls} "
          f"LLM calls ({spent.total_tokens} tokens)")


if __name__ == "__main__":
    main()
