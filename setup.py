"""Setup shim.

The pinned offline environment lacks the ``wheel`` package, so PEP-517
editable installs (``pip install -e .``) cannot build an editable wheel.
``python setup.py develop`` installs the same editable hook without wheel.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
