PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-parallel bench-service bench-sqlengine serve experiments

test:
	$(PYTHON) -m pytest -x -q

# Full reproduction run: every benchmark regenerates a table/figure.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sequential vs 4-worker executor on simulated per-token latency.
bench-parallel:
	$(PYTHON) -m repro.experiments parallel

# Service throughput with vs without cross-request micro-batching.
bench-service:
	$(PYTHON) -m repro.experiments service

# Compile-and-cache SQL engine vs the naive interpreter
# (writes BENCH_sqlengine.json).
bench-sqlengine:
	$(PYTHON) -m repro.experiments sqlengine

# HTTP front end for the verification service (Ctrl-C drains and exits).
serve:
	$(PYTHON) -m repro.service

experiments:
	$(PYTHON) -m repro.experiments all --fast
