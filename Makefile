PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-parallel experiments

test:
	$(PYTHON) -m pytest -x -q

# Full reproduction run: every benchmark regenerates a table/figure.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sequential vs 4-worker executor on simulated per-token latency.
bench-parallel:
	$(PYTHON) -m repro.experiments parallel

experiments:
	$(PYTHON) -m repro.experiments all --fast
