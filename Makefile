PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-baseline bench bench-parallel bench-service \
	bench-sqlengine bench-analyzer bench-obs bench-cache bench-cluster \
	serve serve-cluster experiments

test:
	$(PYTHON) -m pytest -x -q

# cedarlint (docs/static-analysis.md) always runs; ruff and mypy run
# when installed, with their configuration in pyproject.toml.
lint:
	$(PYTHON) tools/lint.py

# Regenerate tools/cedarlint/baseline.json from this tree's warnings.
# Refuses while any error-severity finding remains, so the baseline
# only ever holds grandfathered warnings — and only ever shrinks.
lint-baseline:
	$(PYTHON) -m tools.cedarlint --write-baseline

# Full reproduction run: every benchmark regenerates a table/figure.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sequential vs 4-worker executor on simulated per-token latency.
bench-parallel:
	$(PYTHON) -m repro.experiments parallel

# Service throughput with vs without cross-request micro-batching.
bench-service:
	$(PYTHON) -m repro.experiments service

# Compile-and-cache SQL engine vs the naive interpreter
# (writes BENCH_sqlengine.json).
bench-sqlengine:
	$(PYTHON) -m repro.experiments sqlengine

# Static analyzer overhead and rejection counts on a seeded corpus of
# invalid queries (writes BENCH_analyzer.json).
bench-analyzer:
	$(PYTHON) -m repro.experiments analyzer

# Tracing overhead on the SQL agent-trace workload — the observability
# layer's ≤5% contract (writes BENCH_obs.json).
bench-obs:
	$(PYTHON) -m repro.experiments obs

# Cold vs warm persistent-L2 verification — the ≥3× restart contract
# (writes BENCH_cache.json).
bench-cache:
	$(PYTHON) -m repro.experiments cache

# Saturation throughput and p99, 1 process vs 4 sharded workers behind
# the consistent-hash router (writes BENCH_cluster.json).
bench-cluster:
	$(PYTHON) -m repro.experiments cluster

# HTTP front end for the verification service (Ctrl-C drains and exits).
serve:
	$(PYTHON) -m repro.service

# Sharded multi-worker cluster: asyncio router + N worker processes
# (Ctrl-C drains every shard and exits).
serve-cluster:
	$(PYTHON) -m repro.cluster --workers 4

experiments:
	$(PYTHON) -m repro.experiments all --fast
