"""Cost and throughput accounting for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.ledger import CostLedger, LedgerTotals


@dataclass(frozen=True)
class RunEconomics:
    """Spending summary of one verification run."""

    claims: int
    cost: float
    latency_seconds: float
    llm_calls: int
    total_tokens: int

    @property
    def cost_per_claim(self) -> float:
        return self.cost / self.claims if self.claims else 0.0

    @property
    def claims_per_hour(self) -> float:
        """Simulated throughput (paper Figure 5b's x-axis)."""
        if self.latency_seconds <= 0:
            return 0.0
        return 3600.0 * self.claims / self.latency_seconds


def economics_from_totals(totals: LedgerTotals, claims: int) -> RunEconomics:
    """Build a summary from aggregated ledger totals."""
    return RunEconomics(
        claims=claims,
        cost=totals.cost,
        latency_seconds=totals.latency_seconds,
        llm_calls=totals.calls,
        total_tokens=totals.total_tokens,
    )


def economics_since(
    ledger: CostLedger, checkpoint: int, claims: int
) -> RunEconomics:
    """Summarise ledger spending since a checkpoint."""
    return economics_from_totals(ledger.totals_since(checkpoint), claims)
