"""Verification quality metrics (paper Section 7.1).

Following prior work [14], quality is measured on the *incorrect-claim
detection* task: recall is the share of incorrect claims identified,
precision the share of claims flagged incorrect that really are incorrect,
and F1 their harmonic mean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.claims import Claim
from repro.core.profiling import LABEL_KEY


@dataclass(frozen=True)
class ConfusionCounts:
    """Confusion matrix of incorrect-claim detection.

    "Positive" means *flagged incorrect*: tp counts incorrect claims
    flagged incorrect, fp correct claims flagged incorrect, fn incorrect
    claims missed, tn correct claims passed through.
    """

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        flagged = self.tp + self.fp
        return self.tp / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        incorrect = self.tp + self.fn
        return self.tp / incorrect if incorrect else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            self.tp + other.tp,
            self.fp + other.fp,
            self.fn + other.fn,
            self.tn + other.tn,
        )


def score_claims(claims: list[Claim]) -> ConfusionCounts:
    """Score verified claims against their ground-truth labels.

    Every claim must carry a verdict (``claim.correct``) and a label in
    ``claim.metadata["label_correct"]``.
    """
    tp = fp = fn = tn = 0
    for claim in claims:
        if claim.correct is None:
            raise ValueError(f"claim {claim.claim_id} has no verdict")
        if LABEL_KEY not in claim.metadata:
            raise ValueError(f"claim {claim.claim_id} has no label")
        flagged = not claim.correct
        actually_incorrect = not claim.metadata[LABEL_KEY]
        if flagged and actually_incorrect:
            tp += 1
        elif flagged:
            fp += 1
        elif actually_incorrect:
            fn += 1
        else:
            tn += 1
    return ConfusionCounts(tp, fp, fn, tn)


def percentage(fraction: float, digits: int = 1) -> float:
    """Render a fraction as a rounded percentage (for report tables)."""
    return round(100.0 * fraction, digits)
