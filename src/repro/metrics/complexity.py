"""Query complexity statistics (paper Table 3).

For each dataset the paper reports per-query average/maximum counts of
joins, GROUP BY expressions, sub-queries, aggregate calls, and referenced
columns over the claims' ground-truth queries. The analyser here parses
each query with the engine's parser and walks the AST.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.claims import Claim
from repro.sqlengine import parse_select
from repro.sqlengine import ast_nodes as ast


@dataclass(frozen=True)
class QueryComplexity:
    """Structural counts of one query."""

    joins: int
    group_by: int
    subqueries: int
    aggregates: int
    columns: int


@dataclass(frozen=True)
class ComplexityStats:
    """Average/maximum complexity over a set of queries (one Table 3 row)."""

    queries: int
    avg_joins: float
    max_joins: int
    avg_group_by: float
    max_group_by: int
    avg_subqueries: float
    max_subqueries: int
    avg_aggregates: float
    max_aggregates: int
    avg_columns: float
    max_columns: int


def analyse_query(sql: str) -> QueryComplexity:
    """Measure one query's structural complexity."""
    statement = parse_select(sql)
    statements = [statement] + list(ast.walk_subqueries(statement))
    joins = sum(len(s.joins) for s in statements)
    group_by = sum(len(s.group_by) for s in statements)
    subqueries = len(statements) - 1
    aggregates = 0
    columns: set[str] = set()
    for nested in statements:
        for node in ast.walk_expressions(nested):
            if isinstance(node, ast.AggregateCall):
                aggregates += 1
            elif isinstance(node, ast.ColumnRef):
                columns.add(node.name.lower())
    return QueryComplexity(
        joins=joins,
        group_by=group_by,
        subqueries=subqueries,
        aggregates=aggregates,
        columns=len(columns),
    )


def analyse_claims(claims: list[Claim]) -> ComplexityStats:
    """Aggregate complexity over the claims' ground-truth queries."""
    measurements = [
        analyse_query(claim.metadata["reference_sql"]) for claim in claims
    ]
    if not measurements:
        raise ValueError("no claims to analyse")

    def stats(values: list[int]) -> tuple[float, int]:
        return sum(values) / len(values), max(values)

    avg_joins, max_joins = stats([m.joins for m in measurements])
    avg_group, max_group = stats([m.group_by for m in measurements])
    avg_sub, max_sub = stats([m.subqueries for m in measurements])
    avg_agg, max_agg = stats([m.aggregates for m in measurements])
    avg_cols, max_cols = stats([m.columns for m in measurements])
    return ComplexityStats(
        queries=len(measurements),
        avg_joins=avg_joins,
        max_joins=max_joins,
        avg_group_by=avg_group,
        max_group_by=max_group,
        avg_subqueries=avg_sub,
        max_subqueries=max_sub,
        avg_aggregates=avg_agg,
        max_aggregates=max_agg,
        avg_columns=avg_cols,
        max_columns=max_cols,
    )
