"""Evaluation metrics: detection quality, economics, query complexity."""

from .classification import ConfusionCounts, percentage, score_claims
from .complexity import (
    ComplexityStats,
    QueryComplexity,
    analyse_claims,
    analyse_query,
)
from .economics import RunEconomics, economics_from_totals, economics_since

__all__ = [
    "ComplexityStats",
    "ConfusionCounts",
    "QueryComplexity",
    "RunEconomics",
    "analyse_claims",
    "analyse_query",
    "economics_from_totals",
    "economics_since",
    "percentage",
    "score_claims",
]
