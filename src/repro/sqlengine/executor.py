"""Query executor: binds a parsed SELECT to a database and runs it.

Two execution modes share one code base:

* ``naive=True`` — the original reference strategy: parse per call,
  nested-loop joins, per-row :class:`Evaluator` tree walks. Kept verbatim
  as the semantic oracle for differential tests and benchmarks.
* default (optimized) — the compile-and-cache strategy: statements come
  from a shared :class:`~repro.sqlengine.planner.PlanCache`, expressions
  are compiled to closures once per (statement, schema), conjunctive
  single-table predicates are pushed below joins, equi-joins run as hash
  joins, and ``col = literal`` scans use lazy per-table indexes. Finished
  results can be cached per (database fingerprint, normalized SQL) in a
  :class:`~repro.sqlengine.planner.QueryResultCache`.

The optimized mode is required to be *byte-identical* to naive: same
rows, same row order, same errors. Everything that cannot be proven
equivalent statically (subqueries, unresolved names, predicates that can
raise) falls back to the interpreted path — see
:mod:`repro.sqlengine.compiler` for the rules.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.tracer import MAX_ATTRIBUTE_LENGTH, current_tracer

from . import ast_nodes as ast
from .analyzer import subquery_is_cacheable
from .compiler import (
    CompileError,
    compile_grouped,
    compile_scalar,
    is_total,
    resolve_column,
    split_conjuncts,
)
from .errors import EmptyResultError, ExecutionError, PlanError
from .expressions import ColumnInfo, Evaluator, GroupContext, Scope, _truthy
from .parser import parse_select
from .planner import (
    DEFAULT_RESULT_CACHE_SIZE,
    STRATEGY_COUNTERS,
    PlanCache,
    QueryResultCache,
    normalize_sql,
    shared_plan_cache,
)
from .table import Database, Table
from .values import SqlValue, equality_key, to_text


@dataclass
class QueryResult:
    """Rows produced by a query, with display column names."""

    columns: list[str]
    rows: list[tuple[SqlValue, ...]]

    def scalar(self) -> SqlValue:
        """Return the single cell of a single-cell result.

        Raises :class:`EmptyResultError` when the result has no rows (this
        is the error the paper's agent observes for wrong constants, see
        Figure 4) and :class:`ExecutionError` when the result is not a
        single cell.
        """
        if not self.rows:
            raise EmptyResultError()
        if len(self.rows) > 1 or len(self.columns) > 1:
            raise ExecutionError(
                f"expected a single cell, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def first_cell(self) -> SqlValue:
        """Return the top-left cell, raising only on empty results."""
        if not self.rows:
            raise EmptyResultError()
        return self.rows[0][0]

    def copy(self) -> "QueryResult":
        """A defensive copy (rows are shared tuples, the lists are new)."""
        return QueryResult(list(self.columns), list(self.rows))

    def to_text_table(self, limit: int = 20) -> str:
        """Render the result as an aligned text table (for agent prompts)."""
        header = [self.columns]
        body = [[to_text(v) for v in row] for row in self.rows[:limit]]
        table = header + body
        widths = [
            max(len(row[i]) for row in table) for i in range(len(self.columns))
        ]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in table
        ]
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


class _Relation:
    """An intermediate relation: column metadata plus rows."""

    def __init__(self, columns: list[ColumnInfo],
                 rows: list[tuple[SqlValue, ...]]):
        self.columns = columns
        self.rows = rows


_UNSET = object()

#: Process-wide default for engines constructed with ``vectorized=None``.
#: Live (engines consult it per call through the ``vectorized`` property),
#: so toggling it also affects engines already cached via ``engine_for``.
VECTORIZED_DEFAULT = True


#: Bumped on every :func:`set_vectorized_default` toggle. Engines tag
#: their plan-label memo with the epoch they filled it under, turning
#: "is my memo still valid?" into one int compare on the traced hot
#: path instead of re-deriving the live mode per call.
_VECTOR_EPOCH = 0


def set_vectorized_default(enabled: bool) -> bool:
    """Set the process-wide vectorized default; returns the old value."""
    global VECTORIZED_DEFAULT, _VECTOR_EPOCH
    previous = VECTORIZED_DEFAULT
    VECTORIZED_DEFAULT = bool(enabled)
    _VECTOR_EPOCH += 1
    return previous


def _clip_sql(sql: str) -> str:
    """Clip SQL text to the tracer's attribute bound (``Tracer.leaf``
    trusts callers to pre-clip; a single length check here keeps the
    traced hot path from paying a generic per-attribute loop)."""
    if len(sql) > MAX_ATTRIBUTE_LENGTH:
        return sql[: MAX_ATTRIBUTE_LENGTH - 1] + "…"
    return sql


class Engine:
    """Executes SELECT statements against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        *,
        naive: bool = False,
        vectorized: "bool | None" = None,
        plan_cache: "PlanCache | None | object" = _UNSET,
        result_cache: QueryResultCache | None = None,
    ) -> None:
        self.database = database
        self._evaluator = Evaluator(self)
        self.naive = naive
        self._vectorized_opt = vectorized
        if naive:
            self.plan_cache: PlanCache | None = None
            self.result_cache: QueryResultCache | None = None
        else:
            self.plan_cache = (
                shared_plan_cache() if plan_cache is _UNSET else plan_cache
            )  # type: ignore[assignment]
            self.result_cache = result_cache
        # id(statement) -> (statement, fingerprint, cacheable, key_sql);
        # the statement reference both guards against id() reuse and keeps
        # the plan-cache entry alive so the memo stays valid.
        self._subquery_meta: dict[int, tuple] = {}
        # id(statement) -> (statement, fingerprint, CompiledSelect | None);
        # None records "not vectorizable" so rejection is also memoized.
        self._vector_plans: dict[int, tuple] = {}
        # sql -> plan label, valid for the epoch it was filled under
        # (``naive``/``vectorized=`` are per-engine constants; only the
        # process-wide vectorized default can shift underneath us). The
        # traced hot path asks on every execution — uncached it costs
        # more than recording the span itself (normalize + plan-cache
        # lock + summary).
        self._plan_labels: dict[str, str] = {}
        self._plan_label_epoch = _VECTOR_EPOCH

    @property
    def vectorized(self) -> bool:
        """Whether this engine attempts the vectorized path (live value)."""
        if self.naive:
            return False
        if self._vectorized_opt is None:
            return VECTORIZED_DEFAULT
        return self._vectorized_opt

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute SQL text (consulting the caches, if any).

        When a tracer is active, one pre-timed ``sql_execute`` leaf span
        is recorded per call (the :meth:`Tracer.record` fast path — no
        stack operations). Cache hit/miss status is deliberately *not*
        an attribute: the shared plan/result caches are process-warm
        state, and span trees must be identical run over run.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return self._execute_text(sql)
        start = tracer.clock()
        try:
            result = self._execute_text(sql)
        except Exception as error:
            tracer.leaf(
                "sql", "sql_execute", start, tracer.clock(),
                {"sql": _clip_sql(sql), "error": type(error).__name__},
                status="error",
            )
            raise
        tracer.leaf(
            "sql", "sql_execute", start, tracer.clock(),
            {"sql": sql if len(sql) <= MAX_ATTRIBUTE_LENGTH
             else _clip_sql(sql),
             "rows": len(result.rows), "plan": self.plan_label(sql)},
        )
        return result

    def plan_label(self, sql: str) -> str:
        """A deterministic description of this engine's plan for ``sql``.

        ``"naive"`` for oracle engines, the vectorized plan's summary
        string when one compiles, else ``"row"``. The label describes the
        *chosen* plan, not any particular execution: it is identical on
        cold runs, result-cache hits, and after a runtime fallback, so
        span trees stay deterministic. Never raises (any failure while
        planning here simply reports ``"row"`` — the actual execution
        surfaces the real error). Memoized per sql text: the tracer
        asks on every execution, and the label cannot change while the
        mode stays fixed — a mode toggle bumps ``_VECTOR_EPOCH``, which
        invalidates the whole memo.
        """
        labels = self._plan_labels
        if self._plan_label_epoch != _VECTOR_EPOCH:
            labels.clear()
            self._plan_label_epoch = _VECTOR_EPOCH
        label = labels.get(sql)
        if label is None:
            label = self._plan_label_uncached(sql)
            if len(labels) >= 4096:   # unbounded query texts
                labels.clear()
            labels[sql] = label
        return label

    def _plan_label_uncached(self, sql: str) -> str:
        try:
            if self.naive:
                return "naive"
            if not self.vectorized:
                return "row"
            key = normalize_sql(sql)
            statement = (
                self.plan_cache.get(key)
                if self.plan_cache is not None else None
            )
            if statement is None:
                statement = parse_select(sql)
                if self.plan_cache is not None:
                    self.plan_cache.put(key, statement)
            plan = self._vector_plan(statement)
        except Exception:
            return "row"
        return plan.summary if plan is not None else "row"

    def _execute_text(self, sql: str) -> QueryResult:
        if self.naive:
            STRATEGY_COUNTERS.bump("naive_executions")
            return self.execute_statement(parse_select(sql), [])
        key = normalize_sql(sql)
        statement = (
            self.plan_cache.get(key) if self.plan_cache is not None else None
        )
        if statement is None:
            statement = parse_select(sql)
            if self.plan_cache is not None:
                self.plan_cache.put(key, statement)
        if self.result_cache is None:
            return self.execute_statement(statement, [])
        # ``database=`` lets the cache derive a content-based stable key
        # for its persistent tier; the L1 key stays the cheap
        # process-local fingerprint pair.
        cache_key = (self.database.fingerprint(), key)
        cached = self.result_cache.get(cache_key, database=self.database)
        if cached is not None:
            STRATEGY_COUNTERS.bump("result_cache_hits")
            return cached
        STRATEGY_COUNTERS.bump("result_cache_misses")
        result = self.execute_statement(statement, [])
        self.result_cache.put(cache_key, result, database=self.database)
        return result

    def execute_scalar(self, sql: str) -> SqlValue:
        """Execute SQL text expected to produce a single cell."""
        return self.execute(sql).scalar()

    def execute_subquery(
        self, statement: ast.SelectStatement, outer_scopes: list[Scope]
    ) -> QueryResult:
        """Execute a nested statement, consulting the result cache when safe.

        PR 3 never cached subqueries at all: the result cache was consulted
        only for top-level SQL text, an implicit convention that kept
        correlated subqueries (whose results depend on the outer row)
        correct at the price of re-running every *uncorrelated* subquery
        per outer row. The analyzer now proves which subqueries are pure
        functions of the database, so those hit the shared result cache
        while correlated ones still bypass it — explicitly, with counters.
        """
        if self.naive or self.result_cache is None:
            return self.execute_statement(statement, outer_scopes)
        fingerprint = self.database.fingerprint()
        meta = self._subquery_meta.get(id(statement))  # lint: allow-id-key
        if meta is None or meta[0] is not statement or meta[1] != fingerprint:
            cacheable = subquery_is_cacheable(statement, self.database)
            key_sql = normalize_sql(statement.to_sql()) if cacheable else None
            if len(self._subquery_meta) > 256:
                self._subquery_meta.clear()
            meta = (statement, fingerprint, cacheable, key_sql)
            self._subquery_meta[id(statement)] = meta  # lint: allow-id-key
        if not meta[2]:
            STRATEGY_COUNTERS.bump("subquery_cache_bypasses")
            return self.execute_statement(statement, outer_scopes)
        cache_key = (fingerprint, meta[3])
        cached = self.result_cache.get(cache_key, database=self.database)
        if cached is not None:
            STRATEGY_COUNTERS.bump("subquery_cache_hits")
            return cached
        STRATEGY_COUNTERS.bump("subquery_cache_misses")
        result = self.execute_statement(statement, outer_scopes)
        self.result_cache.put(cache_key, result, database=self.database)
        return result

    def execute_statement(
        self, statement: ast.SelectStatement, outer_scopes: list[Scope]
    ) -> QueryResult:
        """Execute a parsed statement; ``outer_scopes`` enables correlation.

        Subqueries re-enter here with live scopes, which is why the result
        cache is consulted only in :meth:`execute`: a correlated subquery's
        result depends on the outer row and must never be cached by text.
        """
        if self.naive:
            relation = self._build_from(statement, outer_scopes)
            if statement.where is not None:
                relation = self._filter(relation, statement.where, outer_scopes)
            names, tagged = self._project(statement, relation, outer_scopes)
        else:
            attempt = (
                self._vectorized_attempt(statement)
                if self.vectorized else None
            )
            if attempt is not None:
                names, tagged = attempt
            else:
                relation = self._build_filtered(statement, outer_scopes)
                names, tagged = self._project(
                    statement, relation, outer_scopes
                )
        if statement.distinct:
            tagged = _dedupe_tagged(tagged)
        if statement.order_by:
            tagged.sort(key=lambda pair: pair[1])
        rows = [row for row, _ in tagged]
        if statement.offset is not None:
            rows = rows[statement.offset:]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return QueryResult(names, rows)

    def _project(
        self,
        statement: ast.SelectStatement,
        relation: "_Relation",
        outer_scopes: list[Scope],
    ) -> tuple[list[str], list[tuple[tuple[SqlValue, ...], tuple]]]:
        if self._is_aggregate_query(statement):
            return self._execute_grouped(statement, relation, outer_scopes)
        return self._execute_plain(statement, relation, outer_scopes)

    # -- vectorized path -----------------------------------------------------

    def _vector_plan(self, statement: ast.SelectStatement):
        """The memoized vectorized plan for a statement (None = row path).

        Keyed by statement identity — statements come from the shared plan
        cache, so one parse yields one plan build — and guarded by the
        database fingerprint so mutation invalidates every plan (the
        soundness facts come from per-table statistics).
        """
        fingerprint = self.database.fingerprint()
        entry = self._vector_plans.get(id(statement))  # lint: allow-id-key
        if (
            entry is not None
            and entry[0] is statement
            and entry[1] == fingerprint
        ):
            return entry[2]
        # Imported lazily: vectorized.py reuses this module's planning
        # helpers, so a top-level import would be circular.
        from . import vectorized as vec

        try:
            plan = vec.build_plan(statement, self.database)
        except vec.VectorizeError:
            plan = None
        if len(self._vector_plans) > 256:
            self._vector_plans.clear()
        self._vector_plans[id(statement)] = (statement, fingerprint, plan)  # lint: allow-id-key
        return plan

    def _vectorized_attempt(self, statement: ast.SelectStatement):
        """Run the vectorized plan if one exists; None means "use rows".

        A :class:`~repro.sqlengine.vectorized.FallbackNeeded` escape
        disables the plan permanently (its triggers depend only on the
        immutable table contents, so retrying can never succeed).
        """
        plan = self._vector_plan(statement)
        if plan is None:
            STRATEGY_COUNTERS.bump("vectorized_ineligible")
            return None
        if plan.disabled:
            STRATEGY_COUNTERS.bump("vectorized_runtime_fallbacks")
            return None
        from .vectorized import FallbackNeeded

        try:
            names, tagged = plan.run()
        except FallbackNeeded:
            plan.disabled = True
            STRATEGY_COUNTERS.bump("vectorized_runtime_fallbacks")
            return None
        STRATEGY_COUNTERS.bump("vectorized_executions")
        return names, tagged

    # -- FROM clause (naive) -----------------------------------------------

    def _build_from(
        self, statement: ast.SelectStatement, outer_scopes: list[Scope]
    ) -> _Relation:
        if statement.from_table is None:
            return _Relation([], [()])
        relation = self._scan(statement.from_table)
        for join in statement.joins:
            right = self._scan(join.table)
            relation = self._join(relation, right, join, outer_scopes)
        return relation

    def _scan(self, ref: ast.TableRef) -> _Relation:
        table: Table = self.database.table(ref.name)
        alias = ref.effective_alias().lower()
        columns = [
            ColumnInfo(alias, name.lower(), name) for name in table.column_names
        ]
        return _Relation(columns, list(table.rows))

    def _join(
        self,
        left: _Relation,
        right: _Relation,
        join: ast.Join,
        outer_scopes: list[Scope],
    ) -> _Relation:
        columns = left.columns + right.columns
        rows: list[tuple[SqlValue, ...]] = []
        null_right = (None,) * len(right.columns)
        for left_row in left.rows:
            matched = False
            for right_row in right.rows:
                combined = left_row + right_row
                if join.kind == "CROSS" or join.condition is None:
                    keep = True
                else:
                    scope = Scope(columns, combined)
                    value = self._evaluator.evaluate(
                        join.condition, [scope] + outer_scopes
                    )
                    keep = value is not None and _truthy(value)
                if keep:
                    matched = True
                    rows.append(combined)
            if join.kind == "LEFT" and not matched:
                rows.append(left_row + null_right)
        return _Relation(columns, rows)

    def _filter(
        self,
        relation: _Relation,
        condition: ast.Expression,
        outer_scopes: list[Scope],
    ) -> _Relation:
        kept: list[tuple[SqlValue, ...]] = []
        for row in relation.rows:
            scope = Scope(relation.columns, row)
            value = self._evaluator.evaluate(condition, [scope] + outer_scopes)
            if value is not None and _truthy(value):
                kept.append(row)
        return _Relation(relation.columns, kept)

    # -- FROM clause (optimized) ---------------------------------------------

    def _build_filtered(
        self, statement: ast.SelectStatement, outer_scopes: list[Scope]
    ) -> _Relation:
        """Scans, pushed predicates, and joins — the optimized pipeline.

        Predicate pushdown and AND-splitting happen only when every
        conjunct is *splittable*: provably non-raising (see
        :func:`is_total`) with every column reference statically resolved.
        Otherwise the whole WHERE tree is applied after the joins exactly
        like the naive engine, because dropping rows early could skip (or
        reorder past) an evaluation that would have raised.
        """
        if statement.from_table is None:
            relation = _Relation([], [()])
            if statement.where is not None:
                relation = self._filter_predicates(
                    relation, [statement.where], outer_scopes
                )
            return relation
        refs = [statement.from_table] + [j.table for j in statement.joins]
        tables = [self.database.table(ref.name) for ref in refs]
        scan_columns: list[list[ColumnInfo]] = []
        for ref, table in zip(refs, tables):
            alias = ref.effective_alias().lower()
            scan_columns.append(
                [ColumnInfo(alias, n.lower(), n) for n in table.column_names]
            )
        all_columns = [info for cols in scan_columns for info in cols]
        conjuncts = split_conjuncts(statement.where)
        splittable = bool(conjuncts) and all(
            _splittable(conj, all_columns) for conj in conjuncts
        )
        pushed: dict[int, list[ast.Expression]] = {}
        residual: list[ast.Expression] = []
        whole: ast.Expression | None = None
        if statement.where is not None and not splittable:
            whole = statement.where
        elif splittable and not self._joins_tolerate_pushdown(
            statement, scan_columns
        ):
            # Filtering a scan early shrinks the pair sets the later ON
            # conditions are evaluated over; if any ON condition can raise
            # (or resolves names lazily), that is observable. Splitting
            # the WHERE *after* all joins is still fine.
            residual = conjuncts
        elif splittable:
            offsets: list[tuple[int, int]] = []
            start = 0
            for cols in scan_columns:
                offsets.append((start, start + len(cols)))
                start += len(cols)
            # Never push into the null-padded side of a LEFT JOIN: the
            # WHERE clause sees NULLs there, the scan would not.
            left_padded = {
                index
                for index, join in enumerate(statement.joins, start=1)
                if join.kind == "LEFT"
            }
            for conj in conjuncts:
                target = _single_scan_target(conj, all_columns, offsets)
                if target is not None and target not in left_padded:
                    pushed.setdefault(target, []).append(conj)
                else:
                    residual.append(conj)
        if statement.joins and pushed:
            STRATEGY_COUNTERS.bump(
                "pushed_predicates", sum(len(v) for v in pushed.values())
            )
        relation = self._scan_filtered(
            tables[0], scan_columns[0], pushed.get(0, []), outer_scopes
        )
        for index, join in enumerate(statement.joins, start=1):
            right = self._scan_filtered(
                tables[index], scan_columns[index],
                pushed.get(index, []), outer_scopes,
            )
            relation = self._join_planned(relation, right, join, outer_scopes)
        if whole is not None:
            relation = self._filter_predicates(relation, [whole], outer_scopes)
        elif residual:
            relation = self._filter_predicates(relation, residual, outer_scopes)
        return relation

    def _joins_tolerate_pushdown(
        self,
        statement: ast.SelectStatement,
        scan_columns: list[list[ColumnInfo]],
    ) -> bool:
        """True when every join condition is itself splittable.

        Pushdown below a join is only transparent when no ON condition can
        raise: each condition must be total with statically resolved
        columns (checked against the cumulative relation it will see).
        """
        cumulative = list(scan_columns[0])
        for index, join in enumerate(statement.joins, start=1):
            cumulative.extend(scan_columns[index])
            if join.kind == "CROSS" or join.condition is None:
                continue
            for conj in split_conjuncts(join.condition):
                if not _splittable(conj, cumulative):
                    return False
        return True

    def _scan_filtered(
        self,
        table: Table,
        columns: list[ColumnInfo],
        conjuncts: list[ast.Expression],
        outer_scopes: list[Scope],
    ) -> _Relation:
        """Scan one table, applying pushed-down predicates during the scan.

        A ``col = literal`` conjunct is answered from the table's lazy
        equality index when the index can honour ``compare_values``
        semantics (it declines NaN); remaining conjuncts run as compiled
        predicates. Row order is always the table's row order.
        """
        if not conjuncts:
            return _Relation(columns, table.rows)
        rest = list(conjuncts)
        rows: list[tuple[SqlValue, ...]] | None = None
        for conj in conjuncts:
            probe = _index_probe(conj)
            if probe is None:
                continue
            ref, value = probe
            if value is None or not table.has_column(ref.name):
                continue
            positions = table.equality_rows(ref.name, value)
            if positions is None:
                continue
            rows = [table.rows[i] for i in positions]
            rest.remove(conj)
            STRATEGY_COUNTERS.bump("indexed_scans")
            break
        source = rows if rows is not None else table.rows
        if rest:
            predicates = [
                self._row_fn(conj, columns, outer_scopes) for conj in rest
            ]
            kept = []
            for row in source:
                for predicate in predicates:
                    value = predicate(row)
                    if value is None or not _truthy(value):
                        break
                else:
                    kept.append(row)
            source = kept
        return _Relation(columns, source)

    def _join_planned(
        self,
        left: _Relation,
        right: _Relation,
        join: ast.Join,
        outer_scopes: list[Scope],
    ) -> _Relation:
        columns = left.columns + right.columns
        if join.kind == "CROSS" or join.condition is None:
            STRATEGY_COUNTERS.bump("cross_joins")
            rows = [
                left_row + right_row
                for left_row in left.rows
                for right_row in right.rows
            ]
            return _Relation(columns, rows)
        conjuncts = split_conjuncts(join.condition)
        if all(_splittable(conj, columns) for conj in conjuncts):
            equi: list[tuple[int, int]] = []
            residual: list[ast.Expression] = []
            for conj in conjuncts:
                pair = _equi_pair(conj, columns, len(left.columns))
                if pair is not None:
                    equi.append(pair)
                else:
                    residual.append(conj)
            if equi:
                hashed = self._hash_join(
                    left, right, join, columns, equi, residual, outer_scopes
                )
                if hashed is not None:
                    return hashed
        # Nested loop with a compiled (or interpreted) whole condition.
        STRATEGY_COUNTERS.bump("nested_loop_joins")
        predicate = self._row_fn(join.condition, columns, outer_scopes)
        rows = []
        null_right = (None,) * len(right.columns)
        for left_row in left.rows:
            matched = False
            for right_row in right.rows:
                combined = left_row + right_row
                value = predicate(combined)
                if value is not None and _truthy(value):
                    matched = True
                    rows.append(combined)
            if join.kind == "LEFT" and not matched:
                rows.append(left_row + null_right)
        return _Relation(columns, rows)

    def _hash_join(
        self,
        left: _Relation,
        right: _Relation,
        join: ast.Join,
        columns: list[ColumnInfo],
        equi: list[tuple[int, int]],
        residual: list[ast.Expression],
        outer_scopes: list[Scope],
    ) -> _Relation | None:
        """Build-on-right, probe-in-left-order hash join.

        NULL join keys never match (the rows fall out, or null-pad under
        LEFT), exactly as the nested loop's three-valued ``=`` would have
        it. Returns None when a key value defeats hashing (NaN) so the
        caller can fall back to the nested loop. Row order matches the
        nested loop: left order outer, right order within a bucket.
        """
        left_width = len(left.columns)
        left_positions = [lp for lp, _ in equi]
        right_positions = [rp - left_width for _, rp in equi]
        buckets: dict[tuple, list[tuple[SqlValue, ...]]] = {}
        for right_row in right.rows:
            key = _join_key(right_row, right_positions)
            if key is _NAN_KEY:
                return None
            if key is not None:
                buckets.setdefault(key, []).append(right_row)
        predicates = [
            self._row_fn(conj, columns, outer_scopes) for conj in residual
        ]
        rows: list[tuple[SqlValue, ...]] = []
        null_right = (None,) * len(right.columns)
        for left_row in left.rows:
            matched = False
            key = _join_key(left_row, left_positions)
            if key is _NAN_KEY:
                return None
            if key is not None:
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    for predicate in predicates:
                        value = predicate(combined)
                        if value is None or not _truthy(value):
                            break
                    else:
                        matched = True
                        rows.append(combined)
            if join.kind == "LEFT" and not matched:
                rows.append(left_row + null_right)
        STRATEGY_COUNTERS.bump("hash_joins")
        return _Relation(columns, rows)

    def _filter_predicates(
        self,
        relation: _Relation,
        conjuncts: list[ast.Expression],
        outer_scopes: list[Scope],
    ) -> _Relation:
        """Keep rows on which every conjunct is non-NULL truthy.

        For a single conjunct this is exactly the naive ``_filter``; for
        several (all total, by construction) the decomposition is sound
        because ``A AND B`` filters a row through iff both conjuncts do.
        """
        predicates = [
            self._row_fn(conj, relation.columns, outer_scopes)
            for conj in conjuncts
        ]
        kept: list[tuple[SqlValue, ...]] = []
        for row in relation.rows:
            for predicate in predicates:
                value = predicate(row)
                if value is None or not _truthy(value):
                    break
            else:
                kept.append(row)
        return _Relation(relation.columns, kept)

    # -- compiled/interpreted expression plumbing ----------------------------

    def _row_fn(
        self,
        expression: ast.Expression,
        columns: list[ColumnInfo],
        outer_scopes: list[Scope],
    ):
        """A row → value callable: compiled when possible, else interpreted."""
        if not self.naive:
            try:
                fn = compile_scalar(expression, columns)
            except CompileError:
                STRATEGY_COUNTERS.bump("interpreted_fallbacks")
            else:
                STRATEGY_COUNTERS.bump("compiled_expressions")
                return fn
        evaluator = self._evaluator

        def interpret(row: tuple[SqlValue, ...]) -> SqlValue:
            return evaluator.evaluate(
                expression, [Scope(columns, row)] + outer_scopes
            )
        return interpret

    def _grouped_fn(
        self,
        expression: ast.Expression,
        columns: list[ColumnInfo],
        outer_scopes: list[Scope],
    ):
        """A (group_rows, representative_row) → value callable.

        The compiled form cannot represent an *empty* group (the
        evaluator's representative scope disappears and bare columns may
        resolve outward or fail lazily), so empty groups — which only
        occur for global aggregates over empty relations — always take the
        interpreted branch.
        """
        fast = None
        if not self.naive:
            try:
                fast = compile_grouped(expression, columns)
            except CompileError:
                STRATEGY_COUNTERS.bump("interpreted_fallbacks")
            else:
                STRATEGY_COUNTERS.bump("compiled_expressions")
        evaluator = self._evaluator

        def interpret(rows, representative):
            context = GroupContext(columns, rows)
            scopes = (
                [Scope(columns, representative)]
                if representative is not None else []
            ) + outer_scopes
            return evaluator.evaluate(expression, scopes, context)

        if fast is None:
            return interpret

        def run(rows, representative):
            if representative is None:
                return interpret(rows, representative)
            return fast((rows, representative))
        return run

    # -- projection --------------------------------------------------------

    def _is_aggregate_query(self, statement: ast.SelectStatement) -> bool:
        if statement.group_by:
            return True
        candidates: list[object] = [i.expression for i in statement.items]
        if statement.having is not None:
            candidates.append(statement.having)
        for candidate in candidates:
            for node in ast.walk_expressions(candidate):
                if isinstance(node, ast.AggregateCall):
                    return True
        return False

    def _expand_items(
        self, statement: ast.SelectStatement, relation: _Relation
    ) -> list[ast.SelectItem]:
        return _expand_select_items(statement, relation.columns)

    def _order_expressions(
        self, statement: ast.SelectStatement, items: list[ast.SelectItem]
    ) -> list[ast.OrderItem]:
        return _resolve_order_items(statement, items)

    def _execute_plain(
        self,
        statement: ast.SelectStatement,
        relation: _Relation,
        outer_scopes: list[Scope],
    ) -> tuple[list[str], list[tuple[tuple[SqlValue, ...], tuple]]]:
        items = self._expand_items(statement, relation)
        order_items = self._order_expressions(statement, items)
        names = [_output_name(item) for item in items]
        tagged: list[tuple[tuple[SqlValue, ...], tuple]] = []
        if self.naive:
            for row in relation.rows:
                scope = Scope(relation.columns, row)
                scopes = [scope] + outer_scopes
                output = tuple(
                    self._evaluator.evaluate(item.expression, scopes)
                    for item in items
                )
                keys = tuple(
                    _sort_key(
                        self._evaluator.evaluate(order.expression, scopes),
                        order.descending,
                    )
                    for order in order_items
                )
                tagged.append((output, keys))
            return names, tagged
        item_fns = [
            self._row_fn(item.expression, relation.columns, outer_scopes)
            for item in items
        ]
        order_fns = [
            (self._row_fn(order.expression, relation.columns, outer_scopes),
             order.descending)
            for order in order_items
        ]
        for row in relation.rows:
            output = tuple(fn(row) for fn in item_fns)
            keys = tuple(
                _sort_key(fn(row), descending) for fn, descending in order_fns
            )
            tagged.append((output, keys))
        return names, tagged

    def _execute_grouped(
        self,
        statement: ast.SelectStatement,
        relation: _Relation,
        outer_scopes: list[Scope],
    ) -> tuple[list[str], list[tuple[tuple[SqlValue, ...], tuple]]]:
        if any(isinstance(i.expression, ast.Star) for i in statement.items):
            raise PlanError("'*' cannot appear in an aggregate select list")
        items = list(statement.items)
        order_items = self._order_expressions(statement, items)
        groups = self._group_rows(statement, relation, outer_scopes)
        names = [_output_name(item) for item in items]
        tagged: list[tuple[tuple[SqlValue, ...], tuple]] = []
        if self.naive:
            for group_rows in groups:
                context = GroupContext(relation.columns, group_rows)
                representative = (
                    [Scope(relation.columns, group_rows[0])]
                    if group_rows else []
                )
                scopes = representative + outer_scopes
                if statement.having is not None:
                    value = self._evaluator.evaluate(
                        statement.having, scopes, context
                    )
                    if value is None or not _truthy(value):
                        continue
                output = tuple(
                    self._evaluator.evaluate(item.expression, scopes, context)
                    for item in items
                )
                keys = tuple(
                    _sort_key(
                        self._evaluator.evaluate(
                            order.expression, scopes, context
                        ),
                        order.descending,
                    )
                    for order in order_items
                )
                tagged.append((output, keys))
            return names, tagged
        item_fns = [
            self._grouped_fn(item.expression, relation.columns, outer_scopes)
            for item in items
        ]
        having_fn = (
            self._grouped_fn(statement.having, relation.columns, outer_scopes)
            if statement.having is not None else None
        )
        order_fns = [
            (self._grouped_fn(
                order.expression, relation.columns, outer_scopes
            ), order.descending)
            for order in order_items
        ]
        for group_rows in groups:
            representative = group_rows[0] if group_rows else None
            if having_fn is not None:
                value = having_fn(group_rows, representative)
                if value is None or not _truthy(value):
                    continue
            output = tuple(
                fn(group_rows, representative) for fn in item_fns
            )
            keys = tuple(
                _sort_key(fn(group_rows, representative), descending)
                for fn, descending in order_fns
            )
            tagged.append((output, keys))
        return names, tagged

    def _group_rows(
        self,
        statement: ast.SelectStatement,
        relation: _Relation,
        outer_scopes: list[Scope],
    ) -> list[list[tuple[SqlValue, ...]]]:
        if not statement.group_by:
            # A single group covering the whole relation (global aggregate).
            return [relation.rows]
        buckets: dict[tuple[SqlValue, ...], list[tuple[SqlValue, ...]]] = {}
        if self.naive:
            for row in relation.rows:
                scope = Scope(relation.columns, row)
                scopes = [scope] + outer_scopes
                key = tuple(
                    self._evaluator.evaluate(expr, scopes)
                    for expr in statement.group_by
                )
                buckets.setdefault(key, []).append(row)
            return list(buckets.values())
        key_fns = [
            self._row_fn(expr, relation.columns, outer_scopes)
            for expr in statement.group_by
        ]
        for row in relation.rows:
            key = tuple(fn(row) for fn in key_fns)
            buckets.setdefault(key, []).append(row)
        return list(buckets.values())


# -- per-database engine registry --------------------------------------------

_ENGINE_LOCK = threading.Lock()


def engine_for(
    database: Database,
    result_cache: "QueryResultCache | None | object" = _UNSET,
) -> Engine:
    """The shared optimized engine for a database (one per Database).

    The engine is cached as an attribute on the Database itself rather
    than in a weakref-keyed registry: the engine holds a strong reference
    back to its database, so a WeakKeyDictionary entry would never be
    collected, while an attribute forms a simple cycle the garbage
    collector already handles. Pass ``result_cache`` to rebind the
    engine's result cache (``None`` disables it); omit it to leave the
    current cache — a private per-database one by default — in place.
    """
    engine = getattr(database, "_cached_engine", None)
    if engine is None:
        with _ENGINE_LOCK:
            engine = getattr(database, "_cached_engine", None)
            if engine is None:
                engine = Engine(
                    database,
                    result_cache=QueryResultCache(DEFAULT_RESULT_CACHE_SIZE),
                )
                database._cached_engine = engine
    if result_cache is not _UNSET and engine.result_cache is not result_cache:
        engine.result_cache = result_cache  # type: ignore[assignment]
    return engine


# -- planning helpers --------------------------------------------------------


def _expand_select_items(
    statement: ast.SelectStatement, columns: list[ColumnInfo]
) -> list[ast.SelectItem]:
    """Expand ``*`` / ``table.*`` select items against resolved columns.

    Module-level (statement + column metadata only) so the vectorized
    compiler shares the exact expansion — including the error for an
    unknown ``table.*`` — with both row-engine modes.
    """
    expanded: list[ast.SelectItem] = []
    for item in statement.items:
        if isinstance(item.expression, ast.Star):
            table = item.expression.table
            table_lower = table.lower() if table else None
            selected = [
                info
                for info in columns
                if table_lower is None or info.table == table_lower
            ]
            if table_lower is not None and not selected:
                raise PlanError(f"unknown table in {table}.*")
            for info in selected:
                expanded.append(
                    ast.SelectItem(
                        ast.ColumnRef(info.display, info.table), info.display
                    )
                )
        else:
            expanded.append(item)
    return expanded


def _resolve_order_items(
    statement: ast.SelectStatement, items: list[ast.SelectItem]
) -> list[ast.OrderItem]:
    """Resolve ORDER BY aliases and 1-based ordinals to expressions."""
    aliases = {
        item.alias.lower(): item.expression
        for item in items
        if item.alias
    }
    resolved: list[ast.OrderItem] = []
    for order in statement.order_by:
        expression = order.expression
        if isinstance(expression, ast.Literal) and isinstance(
            expression.value, int
        ):
            position = expression.value - 1
            if not 0 <= position < len(items):
                raise PlanError(
                    f"ORDER BY position {expression.value} out of range"
                )
            expression = items[position].expression
        elif (
            isinstance(expression, ast.ColumnRef)
            and expression.table is None
            and expression.name.lower() in aliases
        ):
            expression = aliases[expression.name.lower()]
        resolved.append(ast.OrderItem(expression, order.descending))
    return resolved


def _splittable(conj: ast.Expression, columns: list[ColumnInfo]) -> bool:
    """True when the planner may evaluate this conjunct out of tree order.

    Requires both totality (no node can raise — :func:`is_total`) and
    static resolution of every column reference: an ambiguous or unknown
    name raises *lazily* in the naive engine (only for rows it actually
    evaluates), which splitting could otherwise mask or surface early.
    """
    if not is_total(conj):
        return False
    for node in ast.walk_expressions(conj):
        if isinstance(node, ast.ColumnRef):
            try:
                resolve_column(columns, node.name, node.table)
            except CompileError:
                return False
    return True


def _single_scan_target(
    conj: ast.Expression,
    all_columns: list[ColumnInfo],
    offsets: list[tuple[int, int]],
) -> int | None:
    """The single scan this conjunct's columns all come from, if any."""
    target: int | None = None
    saw_column = False
    for node in ast.walk_expressions(conj):
        if not isinstance(node, ast.ColumnRef):
            continue
        saw_column = True
        position = resolve_column(all_columns, node.name, node.table)
        scan = next(
            index for index, (start, end) in enumerate(offsets)
            if start <= position < end
        )
        if target is None:
            target = scan
        elif target != scan:
            return None
    return target if saw_column else None


def _index_probe(
    conj: ast.Expression,
) -> tuple[ast.ColumnRef, SqlValue] | None:
    """Match ``col = literal`` / ``literal = col`` for index lookups."""
    if isinstance(conj, ast.BinaryOp) and conj.op == "=":
        if isinstance(conj.left, ast.ColumnRef) and isinstance(
            conj.right, ast.Literal
        ):
            return conj.left, conj.right.value
        if isinstance(conj.right, ast.ColumnRef) and isinstance(
            conj.left, ast.Literal
        ):
            return conj.right, conj.left.value
    return None


def _equi_pair(
    conj: ast.Expression, columns: list[ColumnInfo], left_width: int
) -> tuple[int, int] | None:
    """Match ``left_col = right_col`` across the join boundary."""
    if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
        return None
    if not (isinstance(conj.left, ast.ColumnRef)
            and isinstance(conj.right, ast.ColumnRef)):
        return None
    try:
        a = resolve_column(columns, conj.left.name, conj.left.table)
        b = resolve_column(columns, conj.right.name, conj.right.table)
    except CompileError:
        return None
    if a < left_width <= b:
        return (a, b)
    if b < left_width <= a:
        return (b, a)
    return None


#: Sentinel distinguishing "row has a NaN key" (hashing unsound, caller
#: must use the nested loop) from "row has a NULL key" (row simply does
#: not participate in matches).
_NAN_KEY = object()


def _join_key(row: tuple[SqlValue, ...], positions: list[int]):
    parts = []
    for position in positions:
        value = row[position]
        if value is None:
            return None
        part = equality_key(value)
        if part is None:
            return _NAN_KEY
        parts.append(part)
    return tuple(parts)


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expression, ast.ColumnRef):
        return item.expression.name
    return item.expression.to_sql()


def _dedupe_tagged(
    tagged: list[tuple[tuple[SqlValue, ...], tuple]]
) -> list[tuple[tuple[SqlValue, ...], tuple]]:
    seen: set[tuple[SqlValue, ...]] = set()
    unique: list[tuple[tuple[SqlValue, ...], tuple]] = []
    for output, keys in tagged:
        if output not in seen:
            seen.add(output)
            unique.append((output, keys))
    return unique


_TYPE_RANK = {bool: 1, int: 2, float: 2, str: 3}


def _sort_key(value: SqlValue, descending: bool):
    """Build a totally-ordered sort key.

    NULLs sort after non-NULL values in ascending order and before them in
    descending order (both reduce to "NULLs are largest").
    """
    if value is None:
        return (0, 0, 0) if descending else (1, 0, 0)
    rank = _TYPE_RANK.get(type(value), 4)
    key: object = int(value) if isinstance(value, bool) else value
    if descending:
        if isinstance(key, (int, float)):
            return (0, rank, -key)
        return (0, rank, _Reversed(key))
    return (0, rank, key)


class _Reversed:
    """Wrapper inverting comparisons, for descending string sorts."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self.value)
