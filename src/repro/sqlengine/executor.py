"""Query executor: binds a parsed SELECT to a database and runs it.

The execution strategy is straightforward (nested-loop joins, dictionary
grouping over small in-memory tables) — the paper's workloads are at most a
few thousand rows per table, where clarity beats cleverness.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast_nodes as ast
from .errors import EmptyResultError, ExecutionError, PlanError
from .expressions import ColumnInfo, Evaluator, GroupContext, Scope, _truthy
from .parser import parse_select
from .table import Database, Table
from .values import SqlValue, to_text


@dataclass
class QueryResult:
    """Rows produced by a query, with display column names."""

    columns: list[str]
    rows: list[tuple[SqlValue, ...]]

    def scalar(self) -> SqlValue:
        """Return the single cell of a single-cell result.

        Raises :class:`EmptyResultError` when the result has no rows (this
        is the error the paper's agent observes for wrong constants, see
        Figure 4) and :class:`ExecutionError` when the result is not a
        single cell.
        """
        if not self.rows:
            raise EmptyResultError()
        if len(self.rows) > 1 or len(self.columns) > 1:
            raise ExecutionError(
                f"expected a single cell, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def first_cell(self) -> SqlValue:
        """Return the top-left cell, raising only on empty results."""
        if not self.rows:
            raise EmptyResultError()
        return self.rows[0][0]

    def to_text_table(self, limit: int = 20) -> str:
        """Render the result as an aligned text table (for agent prompts)."""
        header = [self.columns]
        body = [[to_text(v) for v in row] for row in self.rows[:limit]]
        table = header + body
        widths = [
            max(len(row[i]) for row in table) for i in range(len(self.columns))
        ]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in table
        ]
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


class _Relation:
    """An intermediate relation: column metadata plus rows."""

    def __init__(self, columns: list[ColumnInfo],
                 rows: list[tuple[SqlValue, ...]]):
        self.columns = columns
        self.rows = rows


class Engine:
    """Executes SELECT statements against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._evaluator = Evaluator(self)

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute SQL text."""
        return self.execute_statement(parse_select(sql), [])

    def execute_scalar(self, sql: str) -> SqlValue:
        """Execute SQL text expected to produce a single cell."""
        return self.execute(sql).scalar()

    def execute_statement(
        self, statement: ast.SelectStatement, outer_scopes: list[Scope]
    ) -> QueryResult:
        """Execute a parsed statement; ``outer_scopes`` enables correlation."""
        relation = self._build_from(statement, outer_scopes)
        if statement.where is not None:
            relation = self._filter(relation, statement.where, outer_scopes)
        if self._is_aggregate_query(statement):
            names, tagged = self._execute_grouped(
                statement, relation, outer_scopes
            )
        else:
            names, tagged = self._execute_plain(
                statement, relation, outer_scopes
            )
        if statement.distinct:
            tagged = _dedupe_tagged(tagged)
        if statement.order_by:
            tagged.sort(key=lambda pair: pair[1])
        rows = [row for row, _ in tagged]
        if statement.offset is not None:
            rows = rows[statement.offset:]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return QueryResult(names, rows)

    # -- FROM clause -------------------------------------------------------

    def _build_from(
        self, statement: ast.SelectStatement, outer_scopes: list[Scope]
    ) -> _Relation:
        if statement.from_table is None:
            return _Relation([], [()])
        relation = self._scan(statement.from_table)
        for join in statement.joins:
            right = self._scan(join.table)
            relation = self._join(relation, right, join, outer_scopes)
        return relation

    def _scan(self, ref: ast.TableRef) -> _Relation:
        table: Table = self.database.table(ref.name)
        alias = ref.effective_alias().lower()
        columns = [
            ColumnInfo(alias, name.lower(), name) for name in table.column_names
        ]
        return _Relation(columns, list(table.rows))

    def _join(
        self,
        left: _Relation,
        right: _Relation,
        join: ast.Join,
        outer_scopes: list[Scope],
    ) -> _Relation:
        columns = left.columns + right.columns
        rows: list[tuple[SqlValue, ...]] = []
        null_right = (None,) * len(right.columns)
        for left_row in left.rows:
            matched = False
            for right_row in right.rows:
                combined = left_row + right_row
                if join.kind == "CROSS" or join.condition is None:
                    keep = True
                else:
                    scope = Scope(columns, combined)
                    value = self._evaluator.evaluate(
                        join.condition, [scope] + outer_scopes
                    )
                    keep = value is not None and _truthy(value)
                if keep:
                    matched = True
                    rows.append(combined)
            if join.kind == "LEFT" and not matched:
                rows.append(left_row + null_right)
        return _Relation(columns, rows)

    def _filter(
        self,
        relation: _Relation,
        condition: ast.Expression,
        outer_scopes: list[Scope],
    ) -> _Relation:
        kept: list[tuple[SqlValue, ...]] = []
        for row in relation.rows:
            scope = Scope(relation.columns, row)
            value = self._evaluator.evaluate(condition, [scope] + outer_scopes)
            if value is not None and _truthy(value):
                kept.append(row)
        return _Relation(relation.columns, kept)

    # -- projection --------------------------------------------------------

    def _is_aggregate_query(self, statement: ast.SelectStatement) -> bool:
        if statement.group_by:
            return True
        candidates: list[object] = [i.expression for i in statement.items]
        if statement.having is not None:
            candidates.append(statement.having)
        for candidate in candidates:
            for node in ast.walk_expressions(candidate):
                if isinstance(node, ast.AggregateCall):
                    return True
        return False

    def _expand_items(
        self, statement: ast.SelectStatement, relation: _Relation
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in statement.items:
            if isinstance(item.expression, ast.Star):
                table = item.expression.table
                table_lower = table.lower() if table else None
                selected = [
                    info
                    for info in relation.columns
                    if table_lower is None or info.table == table_lower
                ]
                if table_lower is not None and not selected:
                    raise PlanError(f"unknown table in {table}.*")
                for info in selected:
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(info.display, info.table), info.display
                        )
                    )
            else:
                expanded.append(item)
        return expanded

    def _order_expressions(
        self, statement: ast.SelectStatement, items: list[ast.SelectItem]
    ) -> list[ast.OrderItem]:
        """Resolve ORDER BY aliases and 1-based ordinals to expressions."""
        aliases = {
            item.alias.lower(): item.expression
            for item in items
            if item.alias
        }
        resolved: list[ast.OrderItem] = []
        for order in statement.order_by:
            expression = order.expression
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ):
                position = expression.value - 1
                if not 0 <= position < len(items):
                    raise PlanError(
                        f"ORDER BY position {expression.value} out of range"
                    )
                expression = items[position].expression
            elif (
                isinstance(expression, ast.ColumnRef)
                and expression.table is None
                and expression.name.lower() in aliases
            ):
                expression = aliases[expression.name.lower()]
            resolved.append(ast.OrderItem(expression, order.descending))
        return resolved

    def _execute_plain(
        self,
        statement: ast.SelectStatement,
        relation: _Relation,
        outer_scopes: list[Scope],
    ) -> tuple[list[str], list[tuple[tuple[SqlValue, ...], tuple]]]:
        items = self._expand_items(statement, relation)
        order_items = self._order_expressions(statement, items)
        names = [_output_name(item) for item in items]
        tagged: list[tuple[tuple[SqlValue, ...], tuple]] = []
        for row in relation.rows:
            scope = Scope(relation.columns, row)
            scopes = [scope] + outer_scopes
            output = tuple(
                self._evaluator.evaluate(item.expression, scopes)
                for item in items
            )
            keys = tuple(
                _sort_key(
                    self._evaluator.evaluate(order.expression, scopes),
                    order.descending,
                )
                for order in order_items
            )
            tagged.append((output, keys))
        return names, tagged

    def _execute_grouped(
        self,
        statement: ast.SelectStatement,
        relation: _Relation,
        outer_scopes: list[Scope],
    ) -> tuple[list[str], list[tuple[tuple[SqlValue, ...], tuple]]]:
        if any(isinstance(i.expression, ast.Star) for i in statement.items):
            raise PlanError("'*' cannot appear in an aggregate select list")
        items = list(statement.items)
        order_items = self._order_expressions(statement, items)
        groups = self._group_rows(statement, relation, outer_scopes)
        names = [_output_name(item) for item in items]
        tagged: list[tuple[tuple[SqlValue, ...], tuple]] = []
        for group_rows in groups:
            context = GroupContext(relation.columns, group_rows)
            representative = (
                [Scope(relation.columns, group_rows[0])] if group_rows else []
            )
            scopes = representative + outer_scopes
            if statement.having is not None:
                value = self._evaluator.evaluate(
                    statement.having, scopes, context
                )
                if value is None or not _truthy(value):
                    continue
            output = tuple(
                self._evaluator.evaluate(item.expression, scopes, context)
                for item in items
            )
            keys = tuple(
                _sort_key(
                    self._evaluator.evaluate(
                        order.expression, scopes, context
                    ),
                    order.descending,
                )
                for order in order_items
            )
            tagged.append((output, keys))
        return names, tagged

    def _group_rows(
        self,
        statement: ast.SelectStatement,
        relation: _Relation,
        outer_scopes: list[Scope],
    ) -> list[list[tuple[SqlValue, ...]]]:
        if not statement.group_by:
            # A single group covering the whole relation (global aggregate).
            return [relation.rows]
        buckets: dict[tuple[SqlValue, ...], list[tuple[SqlValue, ...]]] = {}
        for row in relation.rows:
            scope = Scope(relation.columns, row)
            scopes = [scope] + outer_scopes
            key = tuple(
                self._evaluator.evaluate(expr, scopes)
                for expr in statement.group_by
            )
            buckets.setdefault(key, []).append(row)
        return list(buckets.values())


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expression, ast.ColumnRef):
        return item.expression.name
    return item.expression.to_sql()


def _dedupe_tagged(
    tagged: list[tuple[tuple[SqlValue, ...], tuple]]
) -> list[tuple[tuple[SqlValue, ...], tuple]]:
    seen: set[tuple[SqlValue, ...]] = set()
    unique: list[tuple[tuple[SqlValue, ...], tuple]] = []
    for output, keys in tagged:
        if output not in seen:
            seen.add(output)
            unique.append((output, keys))
    return unique


_TYPE_RANK = {bool: 1, int: 2, float: 2, str: 3}


def _sort_key(value: SqlValue, descending: bool):
    """Build a totally-ordered sort key.

    NULLs sort after non-NULL values in ascending order and before them in
    descending order (both reduce to "NULLs are largest").
    """
    if value is None:
        return (0, 0, 0) if descending else (1, 0, 0)
    rank = _TYPE_RANK.get(type(value), 4)
    key: object = int(value) if isinstance(value, bool) else value
    if descending:
        if isinstance(key, (int, float)):
            return (0, rank, -key)
        return (0, rank, _Reversed(key))
    return (0, rank, key)


class _Reversed:
    """Wrapper inverting comparisons, for descending string sorts."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self.value)
