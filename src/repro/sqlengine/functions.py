"""Aggregate and scalar function implementations.

Aggregates follow standard SQL semantics: NULLs are skipped, ``COUNT(*)``
counts rows, empty inputs yield NULL for SUM/AVG/MIN/MAX and 0 for COUNT.
"""

from __future__ import annotations

from collections.abc import Sequence

from .errors import ExecutionError
from .values import (
    SqlValue,
    coerce_numeric,
    compare_values,
    is_null,
    to_text,
)


def aggregate(name: str, values: Sequence[SqlValue], distinct: bool) -> SqlValue:
    """Apply the named aggregate to a sequence of values.

    ``values`` already excludes NULLs for everything except COUNT(*), whose
    caller passes row markers instead.
    """
    items = [v for v in values if not is_null(v)]
    if distinct:
        seen: set[SqlValue] = set()
        deduped: list[SqlValue] = []
        for value in items:
            if value not in seen:
                seen.add(value)
                deduped.append(value)
        items = deduped
    if name == "COUNT":
        return len(items)
    if not items:
        return None
    if name == "SUM":
        return _numeric_sum(items)
    if name == "AVG":
        total = _numeric_sum(items)
        return total / len(items)
    if name == "MIN":
        return _extreme(items, want_max=False)
    if name == "MAX":
        return _extreme(items, want_max=True)
    raise ExecutionError(f"unknown aggregate function {name}")


def _numeric_sum(items: list[SqlValue]) -> int | float:
    total: int | float = 0
    for value in items:
        number = coerce_numeric(value)
        if number is None:
            raise ExecutionError(f"cannot sum non-numeric value {value!r}")
        total += number
    return total


def _extreme(items: list[SqlValue], want_max: bool) -> SqlValue:
    best = items[0]
    for value in items[1:]:
        comparison = compare_values(value, best)
        if (want_max and comparison > 0) or (not want_max and comparison < 0):
            best = value
    return best


def call_scalar(name: str, args: list[SqlValue]) -> SqlValue:
    """Dispatch a scalar function call by (upper-cased) name."""
    handler = _SCALAR_FUNCTIONS.get(name)
    if handler is None:
        raise ExecutionError(f"unknown function {name}")
    return handler(args)


def _require_args(name: str, args: list[SqlValue], minimum: int,
                  maximum: int | None = None) -> None:
    maximum = minimum if maximum is None else maximum
    if not minimum <= len(args) <= maximum:
        raise ExecutionError(
            f"{name} expects between {minimum} and {maximum} arguments, "
            f"got {len(args)}"
        )


def _fn_abs(args: list[SqlValue]) -> SqlValue:
    _require_args("ABS", args, 1)
    if args[0] is None:
        return None
    number = coerce_numeric(args[0])
    if number is None:
        raise ExecutionError(f"ABS expects a number, got {args[0]!r}")
    return abs(number)


def _fn_round(args: list[SqlValue]) -> SqlValue:
    _require_args("ROUND", args, 1, 2)
    if args[0] is None:
        return None
    number = coerce_numeric(args[0])
    if number is None:
        raise ExecutionError(f"ROUND expects a number, got {args[0]!r}")
    digits = 0
    if len(args) == 2:
        digits_value = coerce_numeric(args[1])
        if digits_value is None:
            raise ExecutionError("ROUND digits argument must be a number")
        digits = int(digits_value)
    result = round(float(number), digits)
    return int(result) if digits <= 0 else result


def _fn_lower(args: list[SqlValue]) -> SqlValue:
    _require_args("LOWER", args, 1)
    return None if args[0] is None else to_text(args[0]).lower()


def _fn_upper(args: list[SqlValue]) -> SqlValue:
    _require_args("UPPER", args, 1)
    return None if args[0] is None else to_text(args[0]).upper()


def _fn_length(args: list[SqlValue]) -> SqlValue:
    _require_args("LENGTH", args, 1)
    return None if args[0] is None else len(to_text(args[0]))


def _fn_coalesce(args: list[SqlValue]) -> SqlValue:
    if not args:
        raise ExecutionError("COALESCE expects at least one argument")
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(args: list[SqlValue]) -> SqlValue:
    _require_args("NULLIF", args, 2)
    if args[0] is None:
        return None
    if args[1] is not None and compare_values(args[0], args[1]) == 0:
        return None
    return args[0]


def _fn_substr(args: list[SqlValue]) -> SqlValue:
    _require_args("SUBSTR", args, 2, 3)
    if args[0] is None:
        return None
    text = to_text(args[0])
    start_value = coerce_numeric(args[1])
    if start_value is None:
        raise ExecutionError("SUBSTR start must be a number")
    start = max(int(start_value) - 1, 0)  # SQL is 1-based
    if len(args) == 3:
        length_value = coerce_numeric(args[2])
        if length_value is None:
            raise ExecutionError("SUBSTR length must be a number")
        return text[start:start + int(length_value)]
    return text[start:]


def _fn_trim(args: list[SqlValue]) -> SqlValue:
    _require_args("TRIM", args, 1)
    return None if args[0] is None else to_text(args[0]).strip()


_SCALAR_FUNCTIONS = {
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "LOWER": _fn_lower,
    "UPPER": _fn_upper,
    "LENGTH": _fn_length,
    "LEN": _fn_length,
    "COALESCE": _fn_coalesce,
    "IFNULL": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "TRIM": _fn_trim,
}

SCALAR_FUNCTION_NAMES = frozenset(_SCALAR_FUNCTIONS)
