"""Exception hierarchy for the SQL engine.

All engine failures derive from :class:`SqlError` so that callers (in
particular the agent's database-querying tool, which must surface engine
failures to the LLM as observations) can catch one exception type.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL engine errors."""


class TokenizeError(SqlError):
    """Raised when the raw SQL text cannot be split into tokens."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when a token stream does not form a valid statement."""


class PlanError(SqlError):
    """Raised when a parsed statement cannot be bound to the database.

    Examples: unknown table, unknown column, ambiguous column reference.
    """


class ExecutionError(SqlError):
    """Raised when a bound query fails at runtime.

    Examples: division by zero, type mismatch in a comparison, a scalar
    sub-query returning more than one row.
    """


class EmptyResultError(ExecutionError):
    """Raised when a single-cell result is requested from an empty result.

    The message mirrors the numpy-style error shown in the paper's Figure 4
    ("index 0 is out of bounds for axis 0 with size 0") because the agent
    relies on this signal to detect wrong constants in predicates.
    """

    def __init__(self) -> None:
        super().__init__("index 0 is out of bounds for axis 0 with size 0")
