"""Cost-based planning decisions for the vectorized execution path.

The optimizer is deliberately *decision-only*: it consumes exact
statistics (:mod:`repro.sqlengine.stats`) plus the analyzer's statically
resolved column references, and produces choices — it never touches
data. The vectorized compiler (:mod:`repro.sqlengine.vectorized`)
executes whatever is chosen here, and the row engine remains the
fallback for anything the vectorized path declines.

Decisions made, in plan order:

* **Access path** per scan: answer one ``col = literal`` conjunct from
  the table's lazy equality index (``index_probe``) when that conjunct
  is estimated to be the most selective one, else a vectorized
  selection-mask scan.
* **Conjunct order** per filter site: estimated selectivity ascending,
  original position as the deterministic tie-break. Reordering is
  semantically free because only *total* conjuncts (see
  :func:`repro.sqlengine.analyzer.is_total`) ever reach the vectorized
  path.
* **Hash-join build side** per INNER equi-join: build on the estimated
  smaller input. A left-side build probes in right order, so the
  executor restores output order by sorting (left, right) index pairs;
  LEFT joins always build on the right (padding and order come for
  free there).

Selectivity estimation follows the classic System-R recipe, except the
inputs are exact (tables are immutable, so row counts, distinct counts,
null fractions, and min/max cost one profiling pass, ever):

* ``col = literal`` → ``1 / distinct``
* range predicates against a numeric column → covered fraction of
  ``[min, max]``
* ``IS [NOT] NULL`` → the (exact) null fraction
* ``IN (…)`` → ``len(items) / distinct``, ``AND``/``OR``/``NOT`` →
  the usual independence combinators, everything else → 1/3.

Every decision is tallied in :data:`OPTIMIZER_COUNTERS`, surfaced as
``engine_stats()["optimizer"]`` and ``cedar_sql_optimizer_total``
metrics, and echoed into the per-plan summary string that the executor
attaches to ``sql_execute`` spans.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from . import ast_nodes as ast
from .stats import ColumnStats

DEFAULT_SELECTIVITY = 1 / 3
_RANGE_OPS = ("<", "<=", ">", ">=")

#: Resolves a column reference to that column's statistics, or None when
#: the reference cannot be resolved to a profiled base-table column
#: (computed columns, the padded side of a LEFT join, ...).
StatsResolver = Callable[[ast.ColumnRef], "ColumnStats | None"]


class OptimizerCounters:
    """Process-wide tallies of cost-based decisions (not executions)."""

    _NAMES = (
        "plans_vectorized",
        "plans_row_path",
        "index_probes_chosen",
        "scans_chosen",
        "conjuncts_reordered",
        "build_side_left",
        "build_side_right",
        "hash_joins_planned",
        "cross_joins_planned",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self._NAMES, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = dict.fromkeys(self._NAMES, 0)


OPTIMIZER_COUNTERS = OptimizerCounters()


def _literal_number(expr: ast.Expression) -> int | float | None:
    if isinstance(expr, ast.Literal) and isinstance(
        expr.value, (int, float)
    ) and not isinstance(expr.value, bool):
        return expr.value
    return None


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


class Estimator:
    """Selectivity and cardinality estimates over exact column stats."""

    def __init__(self, resolve: StatsResolver) -> None:
        self._resolve = resolve

    # -- selectivity ------------------------------------------------------

    def selectivity(self, expr: ast.Expression) -> float:
        """Estimated fraction of rows satisfying ``expr`` (in ``[0, 1]``)."""
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            return _clamp(1.0 - self.selectivity(expr.operand))
        if isinstance(expr, ast.IsNullExpr):
            return self._is_null(expr)
        if isinstance(expr, ast.InExpr):
            return self._in_list(expr)
        if isinstance(expr, ast.BetweenExpr):
            return self._between(expr)
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return 0.0
            return 1.0 if bool(expr.value) else 0.0
        return DEFAULT_SELECTIVITY

    def _binary(self, expr: ast.BinaryOp) -> float:
        if expr.op == "AND":
            return _clamp(
                self.selectivity(expr.left) * self.selectivity(expr.right)
            )
        if expr.op == "OR":
            a = self.selectivity(expr.left)
            b = self.selectivity(expr.right)
            return _clamp(a + b - a * b)
        if expr.op == "=":
            return self._equality(expr)
        if expr.op == "<>":
            return _clamp(1.0 - self._equality(expr))
        if expr.op in _RANGE_OPS:
            return self._range(expr)
        return DEFAULT_SELECTIVITY

    def _column_stats(self, expr: ast.Expression) -> ColumnStats | None:
        if isinstance(expr, ast.ColumnRef):
            return self._resolve(expr)
        return None

    def _equality(self, expr: ast.BinaryOp) -> float:
        for column, other in (
            (expr.left, expr.right), (expr.right, expr.left)
        ):
            stats = self._column_stats(column)
            if stats is None:
                continue
            if isinstance(other, ast.Literal) and other.value is None:
                return 0.0  # ``col = NULL`` never matches
            if stats.non_null_count == 0:
                return 0.0
            if stats.distinct_count > 0:
                return _clamp(1.0 / stats.distinct_count)
        return DEFAULT_SELECTIVITY

    def _range(self, expr: ast.BinaryOp) -> float:
        stats = self._column_stats(expr.left)
        bound = _literal_number(expr.right)
        op = expr.op
        if stats is None:
            stats = self._column_stats(expr.right)
            bound = _literal_number(expr.left)
            # Flip the comparison so the column sits on the left.
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if (
            stats is None or bound is None or stats.value_class != "num"
            or stats.minimum is None or stats.maximum is None
        ):
            return DEFAULT_SELECTIVITY
        low, high = stats.minimum, stats.maximum
        if high == low:
            matches = (
                (op in ("<", "<=") and (low < bound or (op == "<=" and low == bound)))
                or (op in (">", ">=") and (low > bound or (op == ">=" and low == bound)))
            )
            return 1.0 if matches else 0.0
        if op in ("<", "<="):
            fraction = (bound - low) / (high - low)
        else:
            fraction = (high - bound) / (high - low)
        return _clamp(fraction)

    def _is_null(self, expr: ast.IsNullExpr) -> float:
        stats = self._column_stats(expr.operand)
        if stats is None:
            return DEFAULT_SELECTIVITY
        fraction = stats.null_fraction
        return _clamp(1.0 - fraction) if expr.negated else _clamp(fraction)

    def _in_list(self, expr: ast.InExpr) -> float:
        stats = self._column_stats(expr.operand)
        if stats is None or stats.distinct_count == 0:
            base = DEFAULT_SELECTIVITY
        else:
            base = _clamp(len(expr.items or ()) / stats.distinct_count)
        return _clamp(1.0 - base) if expr.negated else base

    def _between(self, expr: ast.BetweenExpr) -> float:
        stats = self._column_stats(expr.operand)
        low = _literal_number(expr.low)
        high = _literal_number(expr.high)
        if (
            stats is None or low is None or high is None
            or stats.value_class != "num"
            or stats.minimum is None or stats.maximum is None
        ):
            return _clamp(DEFAULT_SELECTIVITY ** 2) if not expr.negated else (
                _clamp(1.0 - DEFAULT_SELECTIVITY ** 2)
            )
        span = stats.maximum - stats.minimum
        if span == 0:
            inside = low <= stats.minimum <= high
            base = 1.0 if inside else 0.0
        else:
            covered = min(high, stats.maximum) - max(low, stats.minimum)
            base = _clamp(covered / span) if covered > 0 else 0.0
        return _clamp(1.0 - base) if expr.negated else base

    # -- cardinality ------------------------------------------------------

    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        key_stats: list[tuple["ColumnStats | None", "ColumnStats | None"]],
    ) -> float:
        """Estimated INNER equi-join output cardinality."""
        estimate = left_rows * right_rows
        for left_stats, right_stats in key_stats:
            distinct = max(
                left_stats.distinct_count if left_stats else 0,
                right_stats.distinct_count if right_stats else 0,
                1,
            )
            estimate /= distinct
        return estimate


@dataclass(frozen=True)
class ScanChoice:
    """Access path + conjunct order for one base-table scan."""

    access: str                      # "index_probe" | "scan"
    probe_position: int | None       # index into `ordered` answered by probe
    ordered: tuple[int, ...]         # conjunct evaluation order (input idx)
    selectivities: tuple[float, ...]  # aligned with `ordered`
    estimated_rows: float


def order_conjuncts(
    conjuncts: list[ast.Expression], estimator: Estimator
) -> list[tuple[int, float]]:
    """Evaluation order: selectivity ascending, input order tie-break."""
    scored = [
        (estimator.selectivity(conj), index)
        for index, conj in enumerate(conjuncts)
    ]
    ranked = sorted(scored, key=lambda pair: (pair[0], pair[1]))
    if [index for _, index in ranked] != list(range(len(conjuncts))):
        OPTIMIZER_COUNTERS.bump("conjuncts_reordered")
    return [(index, sel) for sel, index in ranked]


def plan_scan(
    row_count: int,
    conjuncts: list[ast.Expression],
    estimator: Estimator,
    probe_candidates: list[int],
) -> ScanChoice:
    """Choose the access path and conjunct order for one scan.

    ``probe_candidates`` lists input positions of conjuncts the caller
    verified are answerable from the table's equality index
    (``col = literal`` with an indexable value). The probe is taken only
    when the index-answerable conjunct is the one the cost model ranks
    most selective — otherwise an earlier mask already shrank the scan
    below what the probe would return, and positional gathers beat an
    index that no longer aligns with the survivors.
    """
    ordered = order_conjuncts(conjuncts, estimator)
    probe_position: int | None = None
    access = "scan"
    if ordered and probe_candidates:
        first_index, _ = ordered[0]
        if first_index in probe_candidates:
            probe_position = 0
            access = "index_probe"
    if access == "index_probe":
        OPTIMIZER_COUNTERS.bump("index_probes_chosen")
    elif conjuncts:
        OPTIMIZER_COUNTERS.bump("scans_chosen")
    estimated = float(row_count)
    for _, sel in ordered:
        estimated *= sel
    return ScanChoice(
        access=access,
        probe_position=probe_position,
        ordered=tuple(index for index, _ in ordered),
        selectivities=tuple(sel for _, sel in ordered),
        estimated_rows=estimated,
    )


def choose_build_side(
    kind: str, left_estimate: float, right_estimate: float
) -> str:
    """Hash-join build side: the estimated smaller input (INNER only).

    LEFT joins always build right: probing in left order makes padding
    and output order fall out naturally, and the padded side can never
    be the build side anyway. Ties build right (the status quo), so the
    decision is deterministic for equal estimates.
    """
    if kind == "LEFT" or left_estimate >= right_estimate:
        OPTIMIZER_COUNTERS.bump("build_side_right")
        return "right"
    OPTIMIZER_COUNTERS.bump("build_side_left")
    return "left"
