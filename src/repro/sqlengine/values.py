"""Value model shared by the whole SQL engine.

The engine works with a small set of Python-native value types:

* ``None`` — SQL ``NULL``
* ``bool`` — SQL booleans (kept distinct from integers for display)
* ``int`` / ``float`` — SQL numerics
* ``str`` — SQL text

This module centralises coercion, comparison, and display rules so that the
expression evaluator, the aggregate functions, and the claim-validation code
in :mod:`repro.core` all agree on the semantics.
"""

from __future__ import annotations

import math
from typing import Any

from .errors import ExecutionError

SqlValue = None | bool | int | float | str

#: Type names accepted by ``CAST(expr AS <type>)``.
CASTABLE_TYPES = ("INTEGER", "INT", "BIGINT", "REAL", "FLOAT", "DOUBLE",
                  "TEXT", "VARCHAR", "STRING", "BOOLEAN", "BOOL")


def is_null(value: SqlValue) -> bool:
    """Return True when the value is SQL NULL."""
    return value is None


def is_numeric(value: SqlValue) -> bool:
    """Return True for int/float values (booleans are not numeric)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_text(value: SqlValue) -> bool:
    """Return True for string values."""
    return isinstance(value, str)


def coerce_numeric(value: SqlValue) -> float | int | None:
    """Best-effort conversion of a value to a number.

    Returns None when the value cannot be interpreted numerically. Strings
    holding numerals (e.g. ``"42"``, ``"3.5"``) convert, matching the loose
    typing of CSV-backed tables.
    """
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        text = value.strip().replace(",", "")
        if not text:
            return None
        try:
            as_int = int(text)
        except ValueError:
            pass
        else:
            return as_int
        try:
            as_float = float(text)
        except ValueError:
            return None
        return as_float
    return None


def compare_values(left: SqlValue, right: SqlValue) -> int:
    """Three-way comparison of two SQL values.

    Returns a negative number, zero, or a positive number, like the classic
    ``cmp``. NULL never compares (callers must handle NULL before calling).
    Numbers compare numerically; a number and a numeric-looking string also
    compare numerically, because the synthetic tables (like real CSV data)
    sometimes store numbers as text. Everything else compares as text.
    """
    if left is None or right is None:
        raise ExecutionError("cannot compare NULL values")
    left_num = coerce_numeric(left)
    right_num = coerce_numeric(right)
    if left_num is not None and right_num is not None:
        if left_num < right_num:
            return -1
        if left_num > right_num:
            return 1
        return 0
    left_text = to_text(left)
    right_text = to_text(right)
    if left_text < right_text:
        return -1
    if left_text > right_text:
        return 1
    return 0


def values_equal(left: SqlValue, right: SqlValue) -> bool:
    """SQL equality with numeric coercion; NULL equals nothing."""
    if left is None or right is None:
        return False
    return compare_values(left, right) == 0


def equality_key(value: SqlValue) -> tuple | None:
    """Hashable key such that two non-NULL values share a key exactly when
    :func:`compare_values` says they are equal.

    Numeric-coercible values key on the coerced number (Python unifies the
    hash of equal ints and floats), everything else on its display text —
    mirroring the two comparison branches of :func:`compare_values`. NaN
    breaks the equivalence (``compare_values`` reports NaN equal to every
    number, hashing cannot), so NaN-keyed values return None and callers
    must fall back to pairwise comparison.
    """
    if value is None:
        return None
    number = coerce_numeric(value)
    if number is not None:
        if number != number:  # NaN: unrepresentable as a hash class
            return None
        return ("num", number)
    return ("text", to_text(value))


def to_text(value: SqlValue) -> str:
    """Render a value the way the engine displays it in results."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isfinite(value) and value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def cast_value(value: SqlValue, type_name: str) -> SqlValue:
    """Implement ``CAST(value AS type_name)``.

    NULL casts to NULL. Failed numeric casts raise :class:`ExecutionError`,
    matching strict engines (the agent treats such errors as feedback).
    """
    upper = type_name.upper()
    if upper not in CASTABLE_TYPES:
        raise ExecutionError(f"unknown cast target type: {type_name}")
    if value is None:
        return None
    if upper in ("INTEGER", "INT", "BIGINT"):
        number = coerce_numeric(value)
        if number is None:
            raise ExecutionError(f"cannot cast {value!r} to INTEGER")
        return int(number)
    if upper in ("REAL", "FLOAT", "DOUBLE"):
        number = coerce_numeric(value)
        if number is None:
            raise ExecutionError(f"cannot cast {value!r} to REAL")
        return float(number)
    if upper in ("BOOLEAN", "BOOL"):
        if isinstance(value, bool):
            return value
        number = coerce_numeric(value)
        if number is not None:
            return bool(number)
        text = str(value).strip().lower()
        if text in ("true", "t", "yes"):
            return True
        if text in ("false", "f", "no"):
            return False
        raise ExecutionError(f"cannot cast {value!r} to BOOLEAN")
    return to_text(value) if not isinstance(value, str) else value


def infer_column_type(values: list[Any]) -> str:
    """Infer a display type name for a column from its values.

    Used when rendering schemas into prompts (``CREATE TABLE`` text). The
    rules mirror how CSV loaders sniff types: all-numeric columns become
    INTEGER/REAL, everything else TEXT.
    """
    saw_float = False
    saw_int = False
    saw_text = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_text = True
        elif isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        else:
            saw_text = True
    if saw_text or not (saw_int or saw_float):
        return "TEXT"
    if saw_float:
        return "REAL"
    return "INTEGER"
