"""SQL tokenizer.

Splits raw SQL text into a flat token stream for the recursive-descent
parser. The dialect follows the subset the paper's queries use (DuckDB-style
double-quoted identifiers, single-quoted strings, the usual operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .errors import TokenizeError

KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
    "BETWEEN", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON",
    "ASC", "DESC", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "TRUE",
    "FALSE", "UNION", "ALL", "EXISTS",
})


class TokenType(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


_OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "%",
              "||")
_PUNCTUATION = "(),."


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text, ending the stream with an EOF token.

    Raises :class:`TokenizeError` on unterminated strings or stray
    characters. Comments (``-- …`` to end of line) are skipped, since LLM
    output occasionally embeds them.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            text, i = _read_quoted(sql, i, "'")
            tokens.append(Token(TokenType.STRING, text, i))
            continue
        if ch == '"':
            text, i = _read_quoted(sql, i, '"')
            tokens.append(Token(TokenType.IDENTIFIER, text, i))
            continue
        if ch == "`":
            text, i = _read_quoted(sql, i, "`")
            tokens.append(Token(TokenType.IDENTIFIER, text, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    nxt = sql[i + 1] if i + 1 < n else ""
                    nxt2 = sql[i + 2] if i + 2 < n else ""
                    if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                        seen_exp = True
                        i += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        if ch == ";":
            # Statement terminator: stop tokenizing; trailing text after a
            # semicolon (common in LLM output) is ignored.
            break
        raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_quoted(sql: str, start: int, quote: str) -> tuple[str, int]:
    """Read a quoted region starting at ``start``; doubled quotes escape."""
    i = start + 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == quote:
            if i + 1 < n and sql[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError(f"unterminated {quote} quote", start)
