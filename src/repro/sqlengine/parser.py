"""Recursive-descent parser for the SQL subset.

Grammar (informally)::

    select     := SELECT [DISTINCT] items [FROM table (join)*]
                  [WHERE expr] [GROUP BY exprs] [HAVING expr]
                  [ORDER BY order_items] [LIMIT n [OFFSET n]]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive (comparison | IN | BETWEEN | LIKE | IS NULL)?
    additive   := term (('+'|'-'|'||') term)*
    term       := factor (('*'|'/'|'%') factor)*
    factor     := '-' factor | primary
    primary    := literal | column | function | aggregate | CASE | CAST
                | EXISTS '(' select ')' | '(' select ')' | '(' expr ')' | '*'

Aggregate names (COUNT/SUM/AVG/MIN/MAX) are recognised at the call site so
that any other name parses as a scalar function call.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .tokens import Token, TokenType, tokenize

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def parse_select(sql: str) -> ast.SelectStatement:
    """Parse one SELECT statement from SQL text.

    Raises :class:`ParseError` (or :class:`TokenizeError`) on invalid input.
    Trailing tokens after a complete statement are rejected so that
    hallucinated multi-statement LLM output fails loudly.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.parse_select()
    parser.expect_eof()
    return statement


class _Parser:
    """Stateful cursor over a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token stream helpers -------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> None:
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError(f"expected {name}, found {token.value!r}")
        self._advance()

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        token = self._peek()
        if token.type is not TokenType.PUNCTUATION or token.value != value:
            raise ParseError(f"expected {value!r}, found {token.value!r}")
        self._advance()

    def _match_operator(self, *values: str) -> str | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            self._advance()
            return token.value
        return None

    def expect_eof(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input starting at {token.value!r}"
            )

    # -- statements ------------------------------------------------------

    def parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        if not distinct:
            self._match_keyword("ALL")
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())

        from_table: ast.TableRef | None = None
        joins: list[ast.Join] = []
        if self._match_keyword("FROM"):
            from_table = self._parse_table_ref()
            while True:
                join = self._parse_join_step()
                if join is None:
                    break
                joins.append(join)

        where = self._parse_expression() if self._match_keyword("WHERE") else None

        group_by: list[ast.Expression] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._match_punct(","):
                group_by.append(self._parse_expression())

        having = self._parse_expression() if self._match_keyword("HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._match_punct(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._match_keyword("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._match_keyword("OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")

        return ast.SelectStatement(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise ParseError(f"{clause} requires an integer literal")
        self._advance()
        try:
            return int(token.value)
        except ValueError:
            raise ParseError(f"{clause} requires an integer literal") from None

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_identifier("table name")
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier("table alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _parse_join_step(self) -> ast.Join | None:
        token = self._peek()
        if self._match_punct(","):
            # Comma join is a cross join; the WHERE clause supplies predicates.
            return ast.Join("CROSS", self._parse_table_ref())
        if token.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            return ast.Join("CROSS", self._parse_table_ref())
        kind = "INNER"
        if token.is_keyword("JOIN"):
            self._advance()
        elif token.is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
        elif token.is_keyword("LEFT"):
            self._advance()
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            kind = "LEFT"
        else:
            return None
        table = self._parse_table_ref()
        condition = None
        if self._match_keyword("ON"):
            condition = self._parse_expression()
        return ast.Join(kind, table, condition)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expression, descending)

    def _expect_identifier(self, what: str) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected {what}, found {token.value!r}")
        self._advance()
        return token.value

    # -- expressions -----------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        operator = self._match_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if operator is not None:
            if operator == "!=":
                operator = "<>"
            return ast.BinaryOp(operator, left, self._parse_additive())
        negated = False
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword(
            "IN", "BETWEEN", "LIKE"
        ):
            self._advance()
            negated = True
        if self._match_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.BetweenExpr(left, low, high, negated)
        if self._match_keyword("LIKE"):
            return ast.LikeExpr(left, self._parse_additive(), negated)
        if self._match_keyword("IS"):
            is_negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNullExpr(left, is_negated)
        if negated:
            raise ParseError("dangling NOT in predicate")
        return left

    def _parse_in_tail(
        self, operand: ast.Expression, negated: bool
    ) -> ast.Expression:
        self._expect_punct("(")
        if self._peek().is_keyword("SELECT"):
            subquery = self.parse_select()
            self._expect_punct(")")
            return ast.InExpr(operand, None, subquery, negated)
        items = [self._parse_expression()]
        while self._match_punct(","):
            items.append(self._parse_expression())
        self._expect_punct(")")
        return ast.InExpr(operand, tuple(items), None, negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_term()
        while True:
            operator = self._match_operator("+", "-", "||")
            if operator is None:
                return left
            left = ast.BinaryOp(operator, left, self._parse_term())

    def _parse_term(self) -> ast.Expression:
        left = self._parse_factor()
        while True:
            operator = self._match_operator("*", "/", "%")
            if operator is None:
                return left
            left = ast.BinaryOp(operator, left, self._parse_factor())

    def _parse_factor(self) -> ast.Expression:
        if self._match_operator("-"):
            return ast.UnaryOp("-", self._parse_factor())
        if self._match_operator("+"):
            return self._parse_factor()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(_parse_number(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self.parse_select()
            self._expect_punct(")")
            return ast.ExistsExpr(query)
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            if self._peek().is_keyword("SELECT"):
                query = self.parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(query)
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise ParseError(f"unexpected token {token.value!r} in expression")

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self._advance().value
        next_token = self._peek()
        if next_token.type is TokenType.PUNCTUATION and next_token.value == "(":
            return self._parse_call(name)
        if next_token.type is TokenType.PUNCTUATION and next_token.value == ".":
            self._advance()
            after = self._peek()
            if after.type is TokenType.OPERATOR and after.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier("column name")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _parse_call(self, name: str) -> ast.Expression:
        self._expect_punct("(")
        upper = name.upper()
        if upper in AGGREGATE_NAMES:
            distinct = self._match_keyword("DISTINCT")
            if (
                upper == "COUNT"
                and self._peek().type is TokenType.OPERATOR
                and self._peek().value == "*"
            ):
                self._advance()
                self._expect_punct(")")
                return ast.AggregateCall("COUNT", ast.Star(), distinct=False)
            argument = self._parse_expression()
            self._expect_punct(")")
            return ast.AggregateCall(upper, argument, distinct)
        args: list[ast.Expression] = []
        if not self._match_punct(")"):
            args.append(self._parse_expression())
            while self._match_punct(","):
                args.append(self._parse_expression())
            self._expect_punct(")")
        return ast.FunctionCall(upper, tuple(args))

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            branches.append((condition, self._parse_expression()))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        default = None
        if self._match_keyword("ELSE"):
            default = self._parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpr(tuple(branches), default)

    def _parse_cast(self) -> ast.Expression:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._parse_expression()
        self._expect_keyword("AS")
        type_name = self._expect_identifier("type name")
        self._expect_punct(")")
        return ast.CastExpr(operand, type_name)


def _parse_number(text: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        return float(text)
