"""Expression compilation: AST nodes → Python closures over row tuples.

The interpreted :class:`~repro.sqlengine.expressions.Evaluator` re-walks
the expression tree and re-resolves every column name (a linear scan of
the scope's columns) for every row. The compiler does both jobs once per
(statement, relation schema): column references become fixed tuple
indexes, and each node becomes a small closure, so per-row evaluation is
just nested function calls.

The contract is strict semantic equivalence with the evaluator — same
three-valued logic, same short-circuiting, same error types *and
messages*, in the same per-row order. Anything the compiler cannot honour
bit-for-bit (subqueries, unresolved or ambiguous columns, aggregates in
scalar position, ``Star``) raises :class:`CompileError` at compile time,
and the executor silently falls back to the interpreted path. A compile
failure is therefore never user-visible: it only costs speed. In
particular, name-resolution *errors* must stay lazy — the naive engine
only raises "unknown column" when a row is actually evaluated, so an
optimized engine must not raise it at compile time for a relation that
turns out to be empty.

Two entry points:

* :func:`compile_scalar` — closure over one row tuple.
* :func:`compile_grouped` — closure over ``(group_rows, representative
  row)``; aggregate arguments are compiled per-row against the same
  schema. Callers handle empty groups themselves (the evaluator's
  representative-scope trick has no compiled analogue).
"""

from __future__ import annotations

from typing import Callable

from . import ast_nodes as ast
from .errors import ExecutionError
from .expressions import ColumnInfo, _like_to_regex, _truthy
from .functions import aggregate, call_scalar
from .values import (
    SqlValue,
    cast_value,
    coerce_numeric,
    compare_values,
    to_text,
)

#: A compiled scalar expression: row tuple → value.
RowFn = Callable[[tuple], SqlValue]
#: A compiled grouped expression: (group rows, representative row) → value.
GroupFn = Callable[[list, tuple], SqlValue]


class CompileError(Exception):
    """Expression not compilable; the caller falls back to the evaluator."""


def resolve_column(
    columns: list[ColumnInfo], name: str, table: str | None
) -> int:
    """Resolve a column reference to a unique position, or CompileError.

    Mirrors :meth:`Scope.resolve` matching rules, but treats both misses
    (the evaluator would try outer scopes or raise lazily) and ambiguity
    (the evaluator raises per-row) as "not compilable" so the fallback
    path reproduces the reference behaviour exactly.
    """
    name_lower = name.lower()
    table_lower = table.lower() if table else None
    matches = [
        index
        for index, info in enumerate(columns)
        if info.name == name_lower
        and (table_lower is None or info.table == table_lower)
    ]
    if len(matches) != 1:
        raise CompileError(f"cannot statically resolve column {name!r}")
    return matches[0]


def compile_scalar(node: ast.Expression, columns: list[ColumnInfo]) -> RowFn:
    """Compile an expression into a closure over a single row tuple."""
    return _compile(node, columns, grouped=False)


def compile_grouped(node: ast.Expression, columns: list[ColumnInfo]) -> GroupFn:
    """Compile a grouped expression into a closure over (rows, rep_row).

    Non-aggregate subtrees evaluate against the representative row —
    matching the evaluator, which scopes the group's first row for bare
    column references in an aggregate query.
    """
    return _compile(node, columns, grouped=True)


# Internally every closure takes a single ``ctx`` argument: the row tuple
# in scalar mode, the ``(rows, rep_row)`` pair in grouped mode. Only the
# two leaf kinds that actually touch rows (ColumnRef, AggregateCall)
# differ between modes; all structural handlers are mode-agnostic.


def _compile(node: ast.Expression, columns, grouped: bool):
    handler = _COMPILERS.get(type(node))
    if handler is None:
        raise CompileError(f"uncompilable node {type(node).__name__}")
    return handler(node, columns, grouped)


def _c_literal(node: ast.Literal, columns, grouped):
    value = node.value
    return lambda ctx: value


def _c_column(node: ast.ColumnRef, columns, grouped):
    position = resolve_column(columns, node.name, node.table)
    if grouped:
        return lambda ctx: ctx[1][position]
    return lambda ctx: ctx[position]


def _c_aggregate(node: ast.AggregateCall, columns, grouped):
    if not grouped:
        raise CompileError("aggregate in scalar context")
    name = node.name
    if isinstance(node.argument, ast.Star):
        if name != "COUNT":
            raise CompileError(f"{name}(*)")
        return lambda ctx: len(ctx[0])
    argument = compile_scalar(node.argument, columns)
    distinct = node.distinct
    return lambda ctx: aggregate(
        name, [argument(row) for row in ctx[0]], distinct
    )


def _c_unary(node: ast.UnaryOp, columns, grouped):
    operand = _compile(node.operand, columns, grouped)
    if node.op == "NOT":
        def run_not(ctx):
            value = operand(ctx)
            if value is None:
                return None
            return not _truthy(value)
        return run_not
    if node.op == "-":
        def run_neg(ctx):
            value = operand(ctx)
            if value is None:
                return None
            number = coerce_numeric(value)
            if number is None:
                raise ExecutionError(f"cannot negate {value!r}")
            return -number
        return run_neg
    raise CompileError(f"unary operator {node.op}")


def _c_binary(node: ast.BinaryOp, columns, grouped):
    op = node.op
    left = _compile(node.left, columns, grouped)
    right = _compile(node.right, columns, grouped)
    if op == "AND":
        def run_and(ctx):
            left_value = left(ctx)
            if left_value is not None and not _truthy(left_value):
                return False
            right_value = right(ctx)
            if right_value is not None and not _truthy(right_value):
                return False
            if left_value is None or right_value is None:
                return None
            return True
        return run_and
    if op == "OR":
        def run_or(ctx):
            left_value = left(ctx)
            if left_value is not None and _truthy(left_value):
                return True
            right_value = right(ctx)
            if right_value is not None and _truthy(right_value):
                return True
            if left_value is None or right_value is None:
                return None
            return False
        return run_or
    if op in ("=", "<>", "<", "<=", ">", ">="):
        test = _COMPARISON_TESTS[op]
        def run_compare(ctx):
            left_value = left(ctx)
            right_value = right(ctx)
            if left_value is None or right_value is None:
                return None
            return test(compare_values(left_value, right_value))
        return run_compare
    if op == "||":
        def run_concat(ctx):
            left_value = left(ctx)
            right_value = right(ctx)
            if left_value is None or right_value is None:
                return None
            return to_text(left_value) + to_text(right_value)
        return run_concat
    if op in ("+", "-", "*", "/", "%"):
        arith = _ARITHMETIC_OPS[op]
        def run_arith(ctx):
            left_value = left(ctx)
            right_value = right(ctx)
            if left_value is None or right_value is None:
                return None
            left_num = coerce_numeric(left_value)
            right_num = coerce_numeric(right_value)
            if left_num is None or right_num is None:
                raise ExecutionError(
                    f"arithmetic {op} requires numbers, "
                    f"got {left_value!r} and {right_value!r}"
                )
            return arith(left_num, right_num)
        return run_arith
    raise CompileError(f"binary operator {op}")


_COMPARISON_TESTS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def _div(left_num, right_num):
    if right_num == 0:
        raise ExecutionError("division by zero")
    return left_num / right_num


def _mod(left_num, right_num):
    if right_num == 0:
        raise ExecutionError("modulo by zero")
    return left_num % right_num


_ARITHMETIC_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "%": _mod,
}


def _c_function(node: ast.FunctionCall, columns, grouped):
    name = node.name.upper()
    args = [_compile(a, columns, grouped) for a in node.args]
    return lambda ctx: call_scalar(name, [a(ctx) for a in args])


def _c_in(node: ast.InExpr, columns, grouped):
    if node.subquery is not None:
        raise CompileError("IN subquery")
    operand = _compile(node.operand, columns, grouped)
    items = [_compile(item, columns, grouped) for item in node.items or ()]
    negated = node.negated

    def run_in(ctx):
        value = operand(ctx)
        if value is None:
            return None
        # Evaluate every item before testing, exactly like the evaluator:
        # a raising item (e.g. 1/0) after a matching one must still raise.
        candidates = [item(ctx) for item in items]
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not negated
        if saw_null:
            return None
        return negated
    return run_in


def _c_between(node: ast.BetweenExpr, columns, grouped):
    operand = _compile(node.operand, columns, grouped)
    low = _compile(node.low, columns, grouped)
    high = _compile(node.high, columns, grouped)
    negated = node.negated

    def run_between(ctx):
        value = operand(ctx)
        low_value = low(ctx)
        high_value = high(ctx)
        if value is None or low_value is None or high_value is None:
            return None
        inside = (
            compare_values(value, low_value) >= 0
            and compare_values(value, high_value) <= 0
        )
        return inside != negated
    return run_between


def _c_like(node: ast.LikeExpr, columns, grouped):
    operand = _compile(node.operand, columns, grouped)
    negated = node.negated
    if isinstance(node.pattern, ast.Literal) and node.pattern.value is not None:
        # Constant pattern: translate to a regex once instead of per row.
        regex = _like_to_regex(to_text(node.pattern.value))

        def run_like_constant(ctx):
            value = operand(ctx)
            if value is None:
                return None
            matched = regex.fullmatch(to_text(value)) is not None
            return matched != negated
        return run_like_constant
    pattern = _compile(node.pattern, columns, grouped)

    def run_like(ctx):
        value = operand(ctx)
        pattern_value = pattern(ctx)
        if value is None or pattern_value is None:
            return None
        regex = _like_to_regex(to_text(pattern_value))
        matched = regex.fullmatch(to_text(value)) is not None
        return matched != negated
    return run_like


def _c_is_null(node: ast.IsNullExpr, columns, grouped):
    operand = _compile(node.operand, columns, grouped)
    negated = node.negated
    return lambda ctx: (operand(ctx) is None) != negated


def _c_case(node: ast.CaseExpr, columns, grouped):
    branches = [
        (_compile(condition, columns, grouped),
         _compile(result, columns, grouped))
        for condition, result in node.branches
    ]
    default = (
        _compile(node.default, columns, grouped)
        if node.default is not None else None
    )

    def run_case(ctx):
        for condition, result in branches:
            value = condition(ctx)
            if value is not None and _truthy(value):
                return result(ctx)
        if default is not None:
            return default(ctx)
        return None
    return run_case


def _c_cast(node: ast.CastExpr, columns, grouped):
    operand = _compile(node.operand, columns, grouped)
    type_name = node.type_name
    return lambda ctx: cast_value(operand(ctx), type_name)


_COMPILERS = {
    ast.Literal: _c_literal,
    ast.ColumnRef: _c_column,
    ast.AggregateCall: _c_aggregate,
    ast.UnaryOp: _c_unary,
    ast.BinaryOp: _c_binary,
    ast.FunctionCall: _c_function,
    ast.InExpr: _c_in,
    ast.BetweenExpr: _c_between,
    ast.LikeExpr: _c_like,
    ast.IsNullExpr: _c_is_null,
    ast.CaseExpr: _c_case,
    ast.CastExpr: _c_cast,
    # Star, ScalarSubquery, ExistsExpr: intentionally absent — subqueries
    # need live scope chains, Star is handled by select-list expansion.
}


# -- static analysis for the pushdown/hash-join planner ----------------------

# The totality facts now live in the analyzer (which owns all static
# judgments about expressions); re-exported here because the planner and
# executor historically import them from the compiler.
from .analyzer import is_total, split_conjuncts  # noqa: E402,F401
