"""Query planning support: SQL normalization, plan/result caches, counters.

This module is the bookkeeping half of the compile-and-cache engine:

* :func:`normalize_sql` — canonical text for cache keys (whitespace
  collapsed *outside* string/identifier quotes only).
* :class:`PlanCache` — thread-safe LRU from normalized SQL to the parsed
  statement, so the tokenizer/parser run once per distinct query. A
  module-level default (:func:`shared_plan_cache`) is shared by every
  engine unless a caller supplies its own.
* :class:`QueryResultCache` — thread-safe LRU from
  ``(database fingerprint, normalized SQL)`` to a finished
  :class:`~repro.sqlengine.executor.QueryResult`. Fingerprints come from
  :meth:`Database.fingerprint`, so mutating a database invalidates its
  entries by key change rather than by explicit purge.
* :class:`StrategyCounters` — process-wide counters for which execution
  strategies fired (hash vs nested-loop joins, pushed predicates, indexed
  scans, compiled vs interpreted expressions, result-cache traffic).
  Surfaced in ``/stats`` and in report renderings via
  :func:`engine_stats`.

Statement ASTs are frozen dataclasses, so sharing one parse across
threads and engines is safe. Cached results are defensively copied on
both insert and hit — ``QueryResult.rows`` is a mutable list and callers
are allowed to mangle what they get back.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor imports us)
    from .ast_nodes import SelectStatement
    from .executor import QueryResult

DEFAULT_PLAN_CACHE_SIZE = 512
DEFAULT_RESULT_CACHE_SIZE = 1024

_QUOTES = ("'", '"')


def normalize_sql(sql: str) -> str:
    """Collapse runs of whitespace to single spaces, outside quotes only.

    ``SELECT  a`` and ``SELECT a`` share a cache entry, but the literal in
    ``WHERE name = 'two  spaces'`` keeps its spacing — folding it would
    conflate semantically different queries. Doubled quotes inside a
    literal are handled by treating each quote as a toggle: the zero-width
    close/reopen pair leaves the intervening text correctly "inside".
    Keyword case is deliberately left alone (folding would also fold
    quoted-free identifiers, and a case miss only costs a re-parse).
    """
    parts: list[str] = []
    quote: str | None = None
    space_pending = False
    for ch in sql:
        if quote is not None:
            parts.append(ch)
            if ch == quote:
                quote = None
        elif ch in _QUOTES:
            if space_pending and parts:
                parts.append(" ")
            space_pending = False
            parts.append(ch)
            quote = ch
        elif ch.isspace():
            space_pending = True
        else:
            if space_pending and parts:
                parts.append(" ")
            space_pending = False
            parts.append(ch)
    return "".join(parts)


class _LruCache:
    """Thread-safe LRU with hit/miss/eviction stats (shared skeleton)."""

    def __init__(self, max_size: int) -> None:
        if max_size <= 0:
            raise ValueError("cache size must be positive")
        self.max_size = max_size
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable):
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "max_size": self.max_size,
                "hit_rate": round(self._hits / lookups, 4) if lookups else 0.0,
            }


class PlanCache(_LruCache):
    """Normalized SQL text → parsed :class:`SelectStatement`.

    Only successful parses are cached; malformed SQL re-raises its parse
    error on every attempt, exactly like the uncached engine.
    """

    def get(self, key: str) -> "SelectStatement | None":
        return super().get(key)  # type: ignore[return-value]


class QueryResultCache(_LruCache):
    """(database fingerprint, normalized SQL) → :class:`QueryResult`.

    Correlated subqueries never reach this cache: the engine consults it
    only at the top-level text entry point, where no outer row scope
    exists. Entries are copied in and out, so cached rows can never be
    mutated by a caller.
    """

    def get(self, key: tuple) -> "QueryResult | None":
        result = super().get(key)
        if result is None:
            return None
        return result.copy()  # type: ignore[union-attr]

    def put(self, key: tuple, value: "QueryResult") -> None:
        super().put(key, value.copy())


_STRATEGY_NAMES = (
    "hash_joins",
    "nested_loop_joins",
    "cross_joins",
    "pushed_predicates",
    "indexed_scans",
    "compiled_expressions",
    "interpreted_fallbacks",
    "result_cache_hits",
    "result_cache_misses",
    "subquery_cache_hits",
    "subquery_cache_misses",
    "subquery_cache_bypasses",
    "naive_executions",
)


class StrategyCounters:
    """Process-wide tallies of which engine strategies actually fired."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(_STRATEGY_NAMES, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = dict.fromkeys(_STRATEGY_NAMES, 0)


#: Shared singletons. Every Engine defaults to these, so distinct queries
#: parsed anywhere in the process (pipeline, agents, reconstruction,
#: service) all land in one plan cache.
_SHARED_PLAN_CACHE = PlanCache(DEFAULT_PLAN_CACHE_SIZE)
STRATEGY_COUNTERS = StrategyCounters()


def shared_plan_cache() -> PlanCache:
    """The process-wide default plan cache."""
    return _SHARED_PLAN_CACHE


def engine_stats() -> dict:
    """Aggregate engine-layer stats for ``/stats`` and reports."""
    # Imported lazily: the analyzer sits above the planner in the module
    # hierarchy (it imports the shared plan cache from here).
    from .analyzer import ANALYZER_COUNTERS

    return {
        "plan_cache": _SHARED_PLAN_CACHE.stats(),
        "strategies": STRATEGY_COUNTERS.snapshot(),
        "analyzer": ANALYZER_COUNTERS.snapshot(),
    }


def reset_engine_stats() -> None:
    """Zero the strategy counters and drop the shared plan cache.

    Test/benchmark hook: production code never calls this.
    """
    from .analyzer import reset_analyzer

    STRATEGY_COUNTERS.reset()
    reset_analyzer()
    _SHARED_PLAN_CACHE.clear()
    with _SHARED_PLAN_CACHE._lock:
        _SHARED_PLAN_CACHE._hits = 0
        _SHARED_PLAN_CACHE._misses = 0
        _SHARED_PLAN_CACHE._evictions = 0
