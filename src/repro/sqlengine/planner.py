"""Query planning support: SQL normalization, plan/result caches, counters.

This module is the bookkeeping half of the compile-and-cache engine:

* :func:`normalize_sql` — canonical text for cache keys (whitespace
  collapsed *outside* string/identifier quotes only).
* :class:`PlanCache` — thread-safe LRU from normalized SQL to the parsed
  statement, so the tokenizer/parser run once per distinct query. A
  module-level default (:func:`shared_plan_cache`) is shared by every
  engine unless a caller supplies its own. L1-only on purpose: plans are
  live AST objects and a re-parse is cheaper than a faithful
  serialisation.
* :class:`QueryResultCache` — thread-safe LRU from
  ``(database fingerprint, normalized SQL)`` to a finished
  :class:`~repro.sqlengine.executor.QueryResult`. Fingerprints come from
  :meth:`Database.fingerprint`, so mutating a database invalidates its
  entries by key change rather than by explicit purge. With an opened
  :class:`repro.cache.CacheStore` it gains a persistent L2 tier keyed on
  :meth:`Database.content_fingerprint` — a content hash that *is* stable
  across processes — so results survive restarts.
* :class:`StrategyCounters` — process-wide counters for which execution
  strategies fired (hash vs nested-loop joins, pushed predicates, indexed
  scans, compiled vs interpreted expressions, result-cache traffic).
  Surfaced in ``/stats`` and in report renderings via
  :func:`engine_stats`.

Both caches are facades over :class:`repro.cache.TieredCache` — the
unified cache layer that replaced this module's private ``_LruCache``
skeleton. Statement ASTs are frozen dataclasses, so sharing one parse
across threads and engines is safe. Cached results are defensively
copied on both insert and hit — ``QueryResult.rows`` is a mutable list
and callers are allowed to mangle what they get back.
"""

from __future__ import annotations

import json
import threading
from typing import TYPE_CHECKING

from repro.cache import CacheStore, TieredCache, stable_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor imports us)
    from .ast_nodes import SelectStatement
    from .executor import QueryResult
    from .table import Database

DEFAULT_PLAN_CACHE_SIZE = 512
DEFAULT_RESULT_CACHE_SIZE = 1024

_QUOTES = ("'", '"')


def normalize_sql(sql: str) -> str:
    """Collapse runs of whitespace to single spaces, outside quotes only.

    ``SELECT  a`` and ``SELECT a`` share a cache entry, but the literal in
    ``WHERE name = 'two  spaces'`` keeps its spacing — folding it would
    conflate semantically different queries. Doubled quotes inside a
    literal are handled by treating each quote as a toggle: the zero-width
    close/reopen pair leaves the intervening text correctly "inside".
    Keyword case is deliberately left alone (folding would also fold
    quoted-free identifiers, and a case miss only costs a re-parse).
    """
    parts: list[str] = []
    quote: str | None = None
    space_pending = False
    for ch in sql:
        if quote is not None:
            parts.append(ch)
            if ch == quote:
                quote = None
        elif ch in _QUOTES:
            if space_pending and parts:
                parts.append(" ")
            space_pending = False
            parts.append(ch)
            quote = ch
        elif ch.isspace():
            space_pending = True
        else:
            if space_pending and parts:
                parts.append(" ")
            space_pending = False
            parts.append(ch)
    return "".join(parts)


class _QueryResultCodec:
    """Exact JSON round trip for :class:`QueryResult` (the L2 codec).

    ``SqlValue`` is ``None | bool | int | float | str`` — all JSON-native
    with exact float round trips — so only the row *tuples* need
    restoring on decode.
    """

    def encode(self, result: "QueryResult") -> str:
        return json.dumps({
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
        }, sort_keys=True)

    def decode(self, text: str) -> "QueryResult":
        # Imported lazily: the executor imports this module at load time.
        from .executor import QueryResult

        data = json.loads(text)
        return QueryResult(
            columns=list(data["columns"]),
            rows=[tuple(row) for row in data["rows"]],
        )


QUERY_RESULT_CODEC = _QueryResultCodec()


class PlanCache:
    """Normalized SQL text → parsed :class:`SelectStatement`.

    Only successful parses are cached; malformed SQL re-raises its parse
    error on every attempt, exactly like the uncached engine.
    """

    def __init__(self, max_size: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if max_size <= 0:
            raise ValueError("cache size must be positive")
        self.max_size = max_size
        self._tier = TieredCache("sql_plan", max_size)

    def get(self, key: str) -> "SelectStatement | None":
        return self._tier.get(key)  # type: ignore[return-value]

    def put(self, key: str, value: "SelectStatement") -> None:
        self._tier.put(key, value)

    def clear(self) -> None:
        self._tier.clear()

    def reset_stats(self) -> None:
        self._tier.reset_stats()

    def __len__(self) -> int:
        return len(self._tier)

    def stats(self) -> dict:
        return self._tier.stats().to_dict()


class QueryResultCache:
    """(database fingerprint, normalized SQL) → :class:`QueryResult`.

    Correlated subqueries never reach this cache: the engine consults it
    only where no outer row scope exists. Entries are copied in and out,
    so cached rows can never be mutated by a caller.

    The L1 key keeps the process-local ``Database.fingerprint()`` pair
    (cheap, and mutation-safe by key change). When a ``store`` with a
    persistent tier is attached, lookups that pass ``database=`` also
    probe L2 under a content-derived stable key, so a fresh process —
    whose fingerprints restart from scratch — still hits results a
    previous run computed over identical data.
    """

    def __init__(
        self,
        max_size: int = DEFAULT_RESULT_CACHE_SIZE,
        *,
        store: CacheStore | None = None,
    ) -> None:
        if max_size <= 0:
            raise ValueError("cache size must be positive")
        self.max_size = max_size
        l2 = store.l2_for("sql_result") if store is not None else None
        self._tier = TieredCache(
            "sql_result", max_size, l2=l2, codec=QUERY_RESULT_CODEC,
        )

    def _stable_key(
        self, key: tuple, database: "Database | None"
    ) -> str | None:
        if database is None or not self._tier.has_l2:
            return None
        return stable_key(
            "sql_result", database.content_fingerprint(), key[1],
        )

    def get(
        self, key: tuple, database: "Database | None" = None
    ) -> "QueryResult | None":
        result = self._tier.get(key, self._stable_key(key, database))
        if result is None:
            return None
        return result.copy()  # type: ignore[union-attr]

    def put(
        self, key: tuple, value: "QueryResult",
        database: "Database | None" = None,
    ) -> None:
        self._tier.put(key, value.copy(), self._stable_key(key, database))

    def clear(self) -> None:
        self._tier.clear()

    def reset_stats(self) -> None:
        self._tier.reset_stats()

    def __len__(self) -> int:
        return len(self._tier)

    def stats(self) -> dict:
        rendered = self._tier.stats().to_dict()
        if self._tier.has_l2:
            rendered["tiers"] = self._tier.tier_stats()
        return rendered

    def tier_stats(self) -> dict:
        """Per-tier stats (``{"l1": ..., "l2": ...}``) for metrics."""
        return self._tier.tier_stats()


_STRATEGY_NAMES = (
    "hash_joins",
    "nested_loop_joins",
    "cross_joins",
    "pushed_predicates",
    "indexed_scans",
    "compiled_expressions",
    "interpreted_fallbacks",
    "result_cache_hits",
    "result_cache_misses",
    "subquery_cache_hits",
    "subquery_cache_misses",
    "subquery_cache_bypasses",
    "naive_executions",
    "vectorized_executions",
    "vectorized_ineligible",
    "vectorized_runtime_fallbacks",
)


class StrategyCounters:
    """Process-wide tallies of which engine strategies actually fired."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(_STRATEGY_NAMES, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = dict.fromkeys(_STRATEGY_NAMES, 0)


#: Shared singletons. Every Engine defaults to these, so distinct queries
#: parsed anywhere in the process (pipeline, agents, reconstruction,
#: service) all land in one plan cache.
_SHARED_PLAN_CACHE = PlanCache(DEFAULT_PLAN_CACHE_SIZE)
STRATEGY_COUNTERS = StrategyCounters()


def shared_plan_cache() -> PlanCache:
    """The process-wide default plan cache."""
    return _SHARED_PLAN_CACHE


def engine_stats() -> dict:
    """Aggregate engine-layer stats for ``/stats`` and reports."""
    # Imported lazily: the analyzer, stats, and optimizer modules sit
    # above the planner in the module hierarchy (they import the shared
    # counters from here).
    from .analyzer import ANALYZER_COUNTERS, analysis_memo_stats
    from .optimizer import OPTIMIZER_COUNTERS
    from .stats import STATS_COUNTERS

    return {
        "plan_cache": _SHARED_PLAN_CACHE.stats(),
        "strategies": STRATEGY_COUNTERS.snapshot(),
        "analyzer": ANALYZER_COUNTERS.snapshot(),
        "analyzer_memo": analysis_memo_stats(),
        "optimizer": OPTIMIZER_COUNTERS.snapshot(),
        "stats": STATS_COUNTERS.snapshot(),
    }


def reset_engine_stats() -> None:
    """Zero the strategy counters and drop the shared plan cache.

    Test/benchmark hook: production code never calls this.
    """
    from .analyzer import reset_analyzer
    from .optimizer import OPTIMIZER_COUNTERS
    from .stats import STATS_COUNTERS

    STRATEGY_COUNTERS.reset()
    reset_analyzer()
    OPTIMIZER_COUNTERS.reset()
    STATS_COUNTERS.reset()
    _SHARED_PLAN_CACHE.clear()
    _SHARED_PLAN_CACHE.reset_stats()
