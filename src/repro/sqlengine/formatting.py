"""Rendering schemas and data samples into prompt text.

The one-shot prompt template (paper Figure 3) embeds the database schema;
the P1 baseline ("Create Table + Select 3", Rajkumar et al.) additionally
embeds the first three rows of each table. This module produces both
renderings from :class:`~repro.sqlengine.table.Database` objects.
"""

from __future__ import annotations

from .ast_nodes import quote_identifier, quote_string
from .table import Database, Table
from .values import to_text


def create_table_text(table: Table) -> str:
    """Render one table as a ``CREATE TABLE`` statement."""
    column_lines = [
        f"    {quote_identifier(column.name)} {column.type_name}"
        for column in table.columns()
    ]
    body = ",\n".join(column_lines)
    return f"CREATE TABLE {quote_identifier(table.name)} (\n{body}\n)"


def schema_text(database: Database) -> str:
    """Render all tables of a database as CREATE TABLE statements."""
    return "\n\n".join(create_table_text(t) for t in database.tables())


def select_sample_text(table: Table, limit: int = 3) -> str:
    """Render a ``SELECT * ... LIMIT n`` preview, P1-baseline style."""
    header = f"SELECT * FROM {quote_identifier(table.name)} LIMIT {limit};"
    lines = [header]
    lines.append(" | ".join(table.column_names))
    for row in table.head(limit):
        lines.append(" | ".join(to_text(v) for v in row))
    return "\n".join(lines)


def create_table_select_3_text(database: Database) -> str:
    """Render the full P1 "Create Table + Select 3" context block."""
    blocks = []
    for table in database.tables():
        blocks.append(create_table_text(table))
        blocks.append(select_sample_text(table))
    return "\n\n".join(blocks)


def prompt_schema_text(database: Database, sample_rows: int = 3) -> str:
    """Schema rendering for claim-translation prompts (paper Table 1).

    The sample prompt in the paper shows the schema *with* example rows,
    which is what lets the model infer value formats. Renders every table
    as CREATE TABLE plus a short row preview.
    """
    blocks = []
    for table in database.tables():
        blocks.append(create_table_text(table))
        preview = [" | ".join(table.column_names)]
        for row in table.head(sample_rows):
            preview.append(" | ".join(to_text(v) for v in row))
        blocks.append("\n".join(preview))
    return "\n\n".join(blocks)


def markdown_table_text(table: Table, limit: int | None = None) -> str:
    """Render a table as GitHub-flavoured markdown (TAPEX-style flattening)."""
    rows = table.rows if limit is None else table.rows[:limit]
    lines = ["| " + " | ".join(table.column_names) + " |"]
    lines.append("|" + "|".join([" --- "] * len(table.column_names)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(to_text(v) for v in row) + " |")
    return "\n".join(lines)


def insert_statements_text(table: Table, limit: int | None = None) -> str:
    """Render rows as INSERT statements (useful for exporting datasets)."""
    rows = table.rows if limit is None else table.rows[:limit]
    columns = ", ".join(quote_identifier(c) for c in table.column_names)
    statements = []
    for row in rows:
        rendered = ", ".join(
            quote_string(v) if isinstance(v, str) else to_text(v) for v in row
        )
        statements.append(
            f"INSERT INTO {quote_identifier(table.name)} ({columns}) "
            f"VALUES ({rendered});"
        )
    return "\n".join(statements)
