"""Table and column statistics: the facts under the cost-based optimizer.

Tables are immutable, so statistics computed over their column arrays are
*exact* and computed at most once per (table, column). Two distinct
consumers read them:

* the **optimizer** (:mod:`repro.sqlengine.optimizer`) uses row counts,
  distinct counts, and min/max for selectivity estimation, join ordering,
  and access-path choice — classic estimate-quality concerns where being
  exact (rather than sampled) is a free upgrade;
* the **vectorized compiler** (:mod:`repro.sqlengine.vectorized`) uses
  the value class as a *soundness* fact: an arithmetic or ``SUM`` over a
  column is only total (guaranteed not to raise, hence safe to evaluate
  out of row order) when every stored value is numeric-or-NULL, and a
  fast ``<`` comparison only matches ``compare_values`` semantics when
  neither side can hold NaN, a bool, or a numeric-looking string.

Value classes:

``"num"``
    Every non-NULL value is an ``int`` or ``float`` (bools excluded) and
    none is NaN. Direct Python comparison and arithmetic agree with
    ``compare_values`` / ``coerce_numeric`` on this class.
``"text"``
    Every non-NULL value is a ``str`` that does *not* coerce to a number.
    Direct string comparison agrees with ``compare_values``.
``"empty"``
    No non-NULL values at all (covers empty tables and all-NULL columns).
``"other"``
    Anything else — bools, NaN, numeric strings, mixed types. Only the
    generic ``compare_values`` path is sound.

Distinct counts reuse :meth:`Table.unique_column_values` — the same
memoized first-seen-order scan that backs the agent tool — so profiling a
column an agent already explored costs one ``len()``.

Statistics builds are timed into :data:`STATS_COUNTERS` (surfaced as
``engine_stats()["stats"]`` and ``cedar_sql_stats_*`` metrics).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from .table import Table
from .values import SqlValue, coerce_numeric

VALUE_CLASSES = ("num", "text", "empty", "other")


@dataclass(frozen=True)
class ColumnStats:
    """Exact statistics for one stored column."""

    name: str
    row_count: int
    null_count: int
    distinct_count: int          # distinct non-NULL equality classes
    value_class: str             # one of VALUE_CLASSES
    minimum: SqlValue = None     # numeric min over non-NULLs ("num" only)
    maximum: SqlValue = None     # numeric max over non-NULLs ("num" only)

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count


class TableStats:
    """Per-table statistics with lazily profiled columns.

    Column profiles are computed on first request and memoized for the
    table's lifetime (tables are immutable). The memo dict is written
    unsynchronized like every other per-table memo in this package: the
    computation is idempotent and dict assignment is atomic, so a racing
    duplicate build is benign.
    """

    def __init__(self, table: Table) -> None:
        self._table = table
        self.table_name = table.name
        self.row_count = len(table)
        self._columns: dict[str, ColumnStats] = {}

    def column(self, name: str) -> ColumnStats:
        """Statistics for one column, profiling it on first request."""
        key = name.lower()
        cached = self._columns.get(key)
        if cached is None:
            cached = self._profile(name)
            self._columns[key] = cached
        return cached

    def has_column(self, name: str) -> bool:
        return self._table.has_column(name)

    def _profile(self, name: str) -> ColumnStats:
        table = self._table
        start = time.perf_counter()
        array = table.column_array(table.column_position(name))
        null_count = 0
        saw_num = False
        saw_pure_text = False
        saw_other = False
        minimum: int | float | None = None
        maximum: int | float | None = None
        for value in array:
            if value is None:
                null_count += 1
            elif isinstance(value, bool):
                saw_other = True
            elif isinstance(value, (int, float)):
                # Non-finite floats break the "num" contract twice over:
                # NaN compares equal to everything under compare_values
                # (which hashing and direct ``<`` cannot honour), and inf
                # arithmetic can *produce* NaN downstream of a finite-only
                # check. Both demote the column to "other".
                if isinstance(value, float) and not math.isfinite(value):
                    saw_other = True
                    continue
                saw_num = True
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
            elif isinstance(value, str):
                if coerce_numeric(value) is None:
                    saw_pure_text = True
                else:
                    saw_other = True
            else:
                saw_other = True
        if saw_other or (saw_num and saw_pure_text):
            value_class = "other"
        elif saw_num:
            value_class = "num"
        elif saw_pure_text:
            value_class = "text"
        else:
            value_class = "empty"
        distinct = len(table.unique_column_values(name))
        if null_count:
            distinct = max(distinct - 1, 0)  # NULL is not an equality class
        stats = ColumnStats(
            name=name,
            row_count=len(array),
            null_count=null_count,
            distinct_count=distinct,
            value_class=value_class,
            minimum=minimum if value_class == "num" else None,
            maximum=maximum if value_class == "num" else None,
        )
        STATS_COUNTERS.record_build(time.perf_counter() - start)
        return stats


def table_stats(table: Table) -> TableStats:
    """The memoized :class:`TableStats` for a table."""
    cached = table._stats_cache
    if cached is None:
        cached = TableStats(table)
        table._stats_cache = cached
        STATS_COUNTERS.bump("tables_profiled")
    return cached  # type: ignore[return-value]


class StatsCounters:
    """Process-wide statistics-layer activity (build cost included)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables = 0
        self._columns = 0
        self._seconds = 0.0

    def bump(self, name: str) -> None:
        with self._lock:
            if name == "tables_profiled":
                self._tables += 1
            else:
                raise KeyError(name)

    def record_build(self, seconds: float) -> None:
        with self._lock:
            self._columns += 1
            self._seconds += seconds

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tables_profiled": self._tables,
                "columns_profiled": self._columns,
                "build_seconds": self._seconds,
            }

    def reset(self) -> None:
        with self._lock:
            self._tables = 0
            self._columns = 0
            self._seconds = 0.0


STATS_COUNTERS = StatsCounters()
