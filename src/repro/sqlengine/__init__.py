"""A small in-memory relational engine (the repo's DuckDB substitute).

Public surface::

    from repro.sqlengine import Database, Table, Engine, parse_select

    db = Database("demo")
    db.add(Table("airlines", ["airline", "fatal_accidents_00_14"],
                 [("Malaysia Airlines", 2), ("KLM", 0)]))
    Engine(db).execute_scalar(
        'SELECT "fatal_accidents_00_14" FROM airlines '
        "WHERE airline = 'Malaysia Airlines'"
    )  # -> 2
"""

from .analyzer import (
    ANALYZER_COUNTERS,
    DIAGNOSTIC_CODES,
    Diagnostic,
    QueryAnalysis,
    analyze_sql,
    render_diagnostics,
    reset_analyzer,
    shape_diagnostics,
)
from .ast_nodes import SelectStatement, walk_expressions, walk_subqueries
from .errors import (
    EmptyResultError,
    ExecutionError,
    ParseError,
    PlanError,
    SqlError,
    TokenizeError,
)
from .executor import Engine, QueryResult, engine_for, set_vectorized_default
from .formatting import (
    create_table_select_3_text,
    create_table_text,
    markdown_table_text,
    prompt_schema_text,
    schema_text,
)
from .io import dump_csv, dump_database, load_csv, load_csv_directory
from .parser import parse_select
from .planner import (
    PlanCache,
    QueryResultCache,
    engine_stats,
    normalize_sql,
    reset_engine_stats,
    shared_plan_cache,
)
from .stats import ColumnStats, TableStats, table_stats
from .table import Column, Database, Table
from .values import SqlValue, coerce_numeric, is_numeric, to_text

__all__ = [
    "ANALYZER_COUNTERS",
    "Column",
    "ColumnStats",
    "DIAGNOSTIC_CODES",
    "Database",
    "Diagnostic",
    "QueryAnalysis",
    "EmptyResultError",
    "Engine",
    "ExecutionError",
    "ParseError",
    "PlanCache",
    "PlanError",
    "QueryResult",
    "QueryResultCache",
    "SelectStatement",
    "SqlError",
    "SqlValue",
    "Table",
    "TableStats",
    "TokenizeError",
    "analyze_sql",
    "coerce_numeric",
    "create_table_select_3_text",
    "dump_csv",
    "dump_database",
    "create_table_text",
    "engine_for",
    "engine_stats",
    "is_numeric",
    "load_csv",
    "load_csv_directory",
    "markdown_table_text",
    "normalize_sql",
    "parse_select",
    "prompt_schema_text",
    "render_diagnostics",
    "reset_analyzer",
    "reset_engine_stats",
    "schema_text",
    "set_vectorized_default",
    "shape_diagnostics",
    "shared_plan_cache",
    "table_stats",
    "to_text",
    "walk_expressions",
    "walk_subqueries",
]
