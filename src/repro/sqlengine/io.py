"""CSV import/export for tables and databases.

The paper's corpora ship as CSV files next to the articles; a downstream
user of this library will want to point CEDAR at their own CSVs. Values
are type-sniffed column-wise the way the paper's loader (pandas) would:
a column whose every non-empty cell parses as a number becomes numeric.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .errors import PlanError
from .table import Database, Table
from .values import SqlValue, to_text


def load_csv(
    path: str | Path,
    table_name: str | None = None,
    delimiter: str = ",",
) -> Table:
    """Load one CSV file (header row required) into a :class:`Table`."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        raise PlanError(f"{path} is empty; a header row is required")
    header, *body = rows
    width = len(header)
    for line_number, row in enumerate(body, start=2):
        if len(row) != width:
            raise PlanError(
                f"{path}:{line_number} has {len(row)} fields, "
                f"expected {width}"
            )
    columns = list(zip(*body)) if body else [[] for _ in header]
    converted_columns = [_sniff_column(list(col)) for col in columns]
    data = list(zip(*converted_columns)) if body else []
    return Table(table_name or path.stem, header, data)


def load_csv_directory(
    directory: str | Path,
    name: str | None = None,
    delimiter: str = ",",
) -> Database:
    """Load every ``*.csv`` in a directory into one database.

    Table names are the file stems, matching how the paper's datasets
    associate each article with its data files.
    """
    directory = Path(directory)
    database = Database(name or directory.name)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise PlanError(f"no CSV files found in {directory}")
    for path in files:
        database.add(load_csv(path, delimiter=delimiter))
    return database


def dump_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write a table back out as CSV (NULL becomes the empty field)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.column_names)
        for row in table.rows:
            writer.writerow(["" if v is None else to_text(v) for v in row])


def dump_database(database: Database, directory: str | Path) -> list[Path]:
    """Write every table of a database as ``<table>.csv`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for table in database.tables():
        target = directory / f"{table.name}.csv"
        dump_csv(table, target)
        written.append(target)
    return written


def _sniff_column(cells: list[str]) -> list[SqlValue]:
    """Column-wise type sniffing: all-numeric columns become numbers."""
    non_empty = [c for c in cells if c.strip() != ""]
    if non_empty and all(_is_int(c) for c in non_empty):
        return [int(c) if c.strip() != "" else None for c in cells]
    if non_empty and all(_is_float(c) for c in non_empty):
        return [float(c) if c.strip() != "" else None for c in cells]
    return [c if c.strip() != "" else None for c in cells]


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


def _is_float(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
