"""Static semantic analysis of SELECT statements against a schema catalog.

The analyzer walks a parsed (plan-cached) statement against the
:class:`~repro.sqlengine.table.Database` schema and emits structured
:class:`Diagnostic` records with stable ``SQLAxxx`` codes, plus a
per-query :class:`QueryAnalysis` verdict: inferred result type and
column list, a single-cell fact, and purity/cacheability facts (which
subqueries are correlated and therefore must bypass the result cache).

Severity model — the hard contract is differential: **any query the
naive interpreter executes successfully must produce zero analyzer
errors** (warnings are unrestricted). The naive engine resolves names
and types lazily, once per evaluated row, so ``SELECT nope FROM t``
*succeeds* when ``t`` is empty. A diagnostic is therefore an ``error``
only when both hold:

* the offending expression is *guaranteed to be evaluated* when the
  query runs (tracked through relation non-emptiness proofs and the
  evaluator's exact short-circuit rules), and
* evaluating it is *guaranteed to raise* (an unresolvable column, an
  arithmetic operand that is a provably non-NULL non-numeric value,
  a bad function arity, ...).

Everything else — suspicious but data-dependent — is a ``warning``.
A few checks are eager in the executor (unknown tables, ``ORDER BY``
ordinals out of range, ``*`` in an aggregate select list, unknown
``t.*`` qualifiers) and are errors whenever the statement itself is
guaranteed to run.

This module also owns the totality facts (:func:`is_total`,
:func:`split_conjuncts`) consumed by the compiler/executor pushdown
gating — :mod:`repro.sqlengine.compiler` re-exports them — and the
:func:`subquery_is_cacheable` verdict that drives the engine's
result-cache bypass for correlated subqueries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from . import ast_nodes as ast
from .errors import ParseError, TokenizeError
from .functions import SCALAR_FUNCTION_NAMES
from .parser import parse_select
from repro.cache import TieredCache

from .planner import normalize_sql, shared_plan_cache
from .table import Database, Table
from .values import CASTABLE_TYPES, coerce_numeric

ERROR = "error"
WARNING = "warning"

#: Stable diagnostic codes and their one-line meanings (see docs/analyzer.md).
DIAGNOSTIC_CODES = {
    "SQLA001": "unknown column",
    "SQLA002": "unknown table",
    "SQLA003": "ambiguous column reference",
    "SQLA010": "type mismatch in comparison or arithmetic",
    "SQLA011": "bad function name, arity, or argument type",
    "SQLA012": "unknown CAST target type",
    "SQLA013": "ORDER BY position out of range",
    "SQLA020": "aggregate used outside an aggregate context",
    "SQLA021": "bare column not covered by GROUP BY",
    "SQLA022": "'*' in an aggregate select list",
    "SQLA030": "result is not a single cell",
    "SQLA031": "result type cannot match the claim type",
    "SQLA040": "cartesian join without an equi-join condition",
    "SQLA041": "literal not found in the column's value domain",
    "SQLA090": "syntax error",
}

#: (min, max) argument counts per scalar function; None means unbounded.
#: Mirrors the ``_require_args`` calls in :mod:`repro.sqlengine.functions`
#: (IFNULL aliases COALESCE, so it genuinely accepts a single argument).
_FUNCTION_ARITY: dict[str, tuple[int, int | None]] = {
    "ABS": (1, 1),
    "ROUND": (1, 2),
    "LOWER": (1, 1),
    "UPPER": (1, 1),
    "LENGTH": (1, 1),
    "LEN": (1, 1),
    "COALESCE": (1, None),
    "IFNULL": (1, None),
    "NULLIF": (2, 2),
    "SUBSTR": (2, 3),
    "SUBSTRING": (2, 3),
    "TRIM": (1, 1),
}

_NUMERIC_TYPES = frozenset(("INTEGER", "REAL", "NUMERIC"))

_CAST_RESULT_TYPES = {
    "INTEGER": "INTEGER", "INT": "INTEGER", "BIGINT": "INTEGER",
    "REAL": "REAL", "FLOAT": "REAL", "DOUBLE": "REAL",
    "TEXT": "TEXT", "VARCHAR": "TEXT", "STRING": "TEXT",
    "BOOLEAN": "BOOLEAN", "BOOL": "BOOLEAN",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, and a rendered message."""

    code: str
    severity: str
    message: str

    def render(self) -> str:
        return f"{self.code} {self.message}"


@dataclass(frozen=True)
class QueryAnalysis:
    """The per-query verdict record produced by :func:`analyze_sql`."""

    sql: str
    statement: ast.SelectStatement | None
    diagnostics: tuple[Diagnostic, ...]
    #: Output column names, or None when unknowable (parse failure, or an
    #: unknown table making ``*`` expansion impossible).
    result_columns: tuple[str, ...] | None
    #: Inferred type of the first output column (the claim-bearing cell).
    result_type: str
    #: True when the query provably returns exactly one row and column,
    #: False when it provably does not (≥ 2 columns), None when unknown.
    single_cell: bool | None
    #: True when every name resolved and no subquery anywhere in the
    #: statement is correlated — the result is a pure function of the
    #: database, safe for text-keyed result caching at any level.
    cacheable: bool
    correlated_subqueries: int
    uncorrelated_subqueries: int

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def ok(self) -> bool:
        """True when the query carries no error-severity diagnostics."""
        return not self.errors


def render_diagnostics(diagnostics) -> str:
    """Render diagnostics as one semicolon-joined line (for feedback)."""
    return "; ".join(d.render() for d in diagnostics)


def shape_diagnostics(
    analysis: QueryAnalysis,
    *,
    expect_single_cell: bool = True,
    claim_numeric: bool | None = None,
) -> tuple[Diagnostic, ...]:
    """Claim-context checks layered on top of a generic analysis.

    ``SQLA030``: the query provably does not return a single cell (its
    select list has more than one column). ``SQLA031``: the inferred type
    of the result cell can never satisfy the claim's type — a numeric
    claim against a provably BOOLEAN or NULL result (``coerce_numeric``
    rejects both, so CorrectQuery must fail). These live outside the
    claim-agnostic memoized core because they depend on the claim.
    """
    if analysis.statement is None:
        return ()
    found: list[Diagnostic] = []
    if expect_single_cell and analysis.result_columns is not None \
            and len(analysis.result_columns) != 1:
        found.append(Diagnostic(
            "SQLA030", ERROR,
            f"result is not a single cell: the query returns "
            f"{len(analysis.result_columns)} columns",
        ))
    if claim_numeric and analysis.result_type in ("BOOLEAN", "NULL"):
        found.append(Diagnostic(
            "SQLA031", ERROR,
            f"result type {analysis.result_type} can never match a "
            f"numeric claim",
        ))
    return tuple(found)


# -- process-wide counters ----------------------------------------------------


class AnalyzerCounters:
    """Thread-safe counters surfaced through ``engine_stats()``."""

    _FIELDS = (
        "queries_analyzed",
        "rejected_pre_execution",
        "errors",
        "warnings",
        "memo_hits",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self._FIELDS, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = dict.fromkeys(self._FIELDS, 0)


ANALYZER_COUNTERS = AnalyzerCounters()


def record_rejection() -> None:
    """Callers invoke this when an analysis verdict stops an execution."""
    ANALYZER_COUNTERS.bump("rejected_pre_execution")


# -- entry points -------------------------------------------------------------

#: Memoized analyses. L1-only (no stable key is ever passed): analyses
#: hold live AST references and re-deriving one is cheap, so persisting
#: them buys nothing. The unified stats surface as ``analyzer_memo`` in
#: ``engine_stats()``.
_ANALYSIS_CACHE = TieredCache("sql_analysis", 512)


def analysis_memo_stats() -> dict:
    """Unified :class:`repro.cache.CacheStats` rendering of the memo."""
    return _ANALYSIS_CACHE.stats().to_dict()


def analyze_sql(sql: str, database: Database) -> QueryAnalysis:
    """Analyze SQL text against a database schema (memoized).

    Parsing goes through the shared plan cache, so an analyzed query that
    is subsequently executed reuses the same statement object. Analyses
    are memoized on ``(database fingerprint, normalized SQL)`` — the
    fingerprint changes whenever the database gains a table, so
    schema-dependent verdicts never go stale.
    """
    key = (database.fingerprint(), normalize_sql(sql))
    cached = _ANALYSIS_CACHE.get(key)
    if cached is not None:
        ANALYZER_COUNTERS.bump("memo_hits")
        return cached
    analysis = _analyze_uncached(sql, database)
    ANALYZER_COUNTERS.bump("queries_analyzed")
    if analysis.errors:
        ANALYZER_COUNTERS.bump("errors", len(analysis.errors))
    if analysis.warnings:
        ANALYZER_COUNTERS.bump("warnings", len(analysis.warnings))
    _ANALYSIS_CACHE.put(key, analysis)
    return analysis


def reset_analyzer() -> None:
    """Zero the counters and drop memoized analyses (test/bench hook)."""
    ANALYZER_COUNTERS.reset()
    _ANALYSIS_CACHE.clear()
    _ANALYSIS_CACHE.reset_stats()


def _analyze_uncached(sql: str, database: Database) -> QueryAnalysis:
    try:
        cache = shared_plan_cache()
        key = normalize_sql(sql)
        statement = cache.get(key)
        if statement is None:
            statement = parse_select(sql)
            cache.put(key, statement)
    except (TokenizeError, ParseError) as error:
        diagnostic = Diagnostic("SQLA090", ERROR, f"syntax error: {error}")
        return QueryAnalysis(
            sql=sql, statement=None, diagnostics=(diagnostic,),
            result_columns=None, result_type="UNKNOWN", single_cell=None,
            cacheable=False, correlated_subqueries=0,
            uncorrelated_subqueries=0,
        )
    return analyze_statement(sql, statement, database)


def analyze_statement(
    sql: str, statement: ast.SelectStatement, database: Database
) -> QueryAnalysis:
    """Analyze an already-parsed statement (uncached)."""
    walker = _Walker(database)
    facts = walker.statement(statement, outer=(), certain=True)
    seen: set[tuple[str, str, str]] = set()
    unique: list[Diagnostic] = []
    for diagnostic in walker.diagnostics:
        key = (diagnostic.code, diagnostic.severity, diagnostic.message)
        if key not in seen:
            seen.add(key)
            unique.append(diagnostic)
    names = None if facts.out_names is None else tuple(facts.out_names)
    single_cell: bool | None = None
    if names is not None and len(names) != 1:
        single_cell = False
    elif names is not None and facts.single_row:
        single_cell = True
    cacheable = (
        facts.resolved
        and walker.correlated == 0
        and walker.unresolved_count == 0
    )
    return QueryAnalysis(
        sql=sql, statement=statement, diagnostics=tuple(unique),
        result_columns=names, result_type=facts.first_type,
        single_cell=single_cell, cacheable=cacheable,
        correlated_subqueries=walker.correlated,
        uncorrelated_subqueries=walker.uncorrelated,
    )


def subquery_is_cacheable(
    statement: ast.SelectStatement, database: Database
) -> bool:
    """True when a subquery's result is a pure function of the database.

    The engine consults this before letting a subquery use the text-keyed
    result cache: a statement qualifies only when every column reference
    (at any nesting depth) resolves unambiguously *within the statement's
    own scope chain* against known tables. Anything that escapes outward
    (correlation), fails to resolve, or touches an unknown table is
    reported non-cacheable, which preserves the bypass convention the
    differential tests pin down.
    """
    walker = _Walker(database)
    facts = walker.statement(statement, outer=(), certain=False)
    return (
        facts.resolved
        and walker.unresolved_count == 0
        and walker.correlated == 0
    )


# -- static scopes ------------------------------------------------------------


@dataclass(frozen=True)
class _Col:
    alias: str | None      # lower-cased table alias within the relation
    name: str              # lower-cased column name
    display: str           # original-cased name (output headers)
    type: str              # INTEGER / REAL / TEXT / UNKNOWN
    nullable: bool
    table: Table | None    # base table, for domain checks
    column: str | None     # original column name in the base table
    scan: int              # index of the scan that produced this column


class _StScope:
    """Static analogue of the evaluator's :class:`Scope` (metadata only)."""

    def __init__(self, cols: list[_Col], complete: bool) -> None:
        self.cols = cols
        self.complete = complete

    def matches(self, name: str, table: str | None) -> list[_Col]:
        name_lower = name.lower()
        table_lower = table.lower() if table else None
        return [
            col for col in self.cols
            if col.name == name_lower
            and (table_lower is None or col.alias == table_lower)
        ]


@dataclass(frozen=True)
class _Inferred:
    """Statically inferred facts about one expression's value."""

    type: str = "UNKNOWN"
    nullable: bool = True
    value: object = None        # literal constant, when statically known
    has_value: bool = False


_BOOL = _Inferred("BOOLEAN")
_UNKNOWN = _Inferred("UNKNOWN")


@dataclass(frozen=True)
class _Env:
    """Evaluation-context facts threaded through the expression walk."""

    scopes: tuple[_StScope, ...]   # innermost first; outer scopes follow
    certain: bool                  # guaranteed evaluated if the query runs
    clause: str                    # for messages: WHERE, select list, ...
    aggregates_ok: bool = False
    in_aggregate: bool = False
    group_certain: bool = False    # the current group provably has rows

    def uncertain(self) -> "_Env":
        if not self.certain:
            return self
        return _Env(self.scopes, False, self.clause, self.aggregates_ok,
                    self.in_aggregate, self.group_certain)


@dataclass
class _StmtFacts:
    """What a statement walk learned, for enclosing expressions."""

    out_names: list[str] | None
    first_type: str
    single_row: bool
    resolved: bool


class _Walker:
    """Walks statements and expressions, accumulating diagnostics."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.diagnostics: list[Diagnostic] = []
        self.correlated = 0
        self.uncorrelated = 0
        #: Bumped whenever a reference failed to resolve (or resolution
        #: was suppressed by an unknown table) — poisons cacheability.
        self.unresolved_count = 0
        #: ids of the scope objects each successful resolution landed in,
        #: in walk order — the correlation detector for subqueries.
        self.resolution_log: list[int] = []

    def emit(self, code: str, message: str, *, error: bool) -> None:
        severity = ERROR if error else WARNING
        self.diagnostics.append(Diagnostic(code, severity, message))

    # -- statements -------------------------------------------------------

    def statement(
        self,
        stmt: ast.SelectStatement,
        outer: tuple[_StScope, ...],
        certain: bool,
    ) -> _StmtFacts:
        cols, complete, relation_nonempty = \
            self._analyze_from(stmt, outer, certain)
        own = _StScope(cols, complete)
        chain = (own,) + outer
        if not complete:
            self.unresolved_count += 1
            # The FROM clause raises before anything below evaluates.
            relation_nonempty = False

        filtered_nonempty = relation_nonempty and stmt.where is None
        if stmt.where is not None:
            self._expr(stmt.where, _Env(
                scopes=chain, certain=certain and relation_nonempty,
                clause="WHERE",
            ))
            self._domain_lints(stmt, own, complete)

        if _is_aggregate_query(stmt):
            facts = self._grouped(
                stmt, chain, certain, complete, filtered_nonempty
            )
        else:
            facts = self._plain(
                stmt, own, chain, certain, complete, filtered_nonempty
            )
        if stmt.limit == 0:
            facts.single_row = False
        return facts

    def _analyze_from(
        self,
        stmt: ast.SelectStatement,
        outer: tuple[_StScope, ...],
        certain: bool,
    ) -> tuple[list[_Col], bool, bool]:
        if stmt.from_table is None:
            # No FROM: the executor supplies one empty-tuple row, so the
            # select list is always evaluated exactly once.
            return [], True, True
        refs: list[tuple[str, ast.TableRef, ast.Join | None]] = [
            ("FROM", stmt.from_table, None)
        ]
        for join in stmt.joins:
            refs.append((join.kind, join.table, join))
        cols: list[_Col] = []
        complete = True
        scan_nonempty: list[bool] = []
        for index, (kind, ref, _join) in enumerate(refs):
            alias = ref.effective_alias().lower()
            if not self.database.has_table(ref.name):
                self.emit(
                    "SQLA002", f"unknown table {ref.name!r}", error=certain,
                )
                complete = False
                scan_nonempty.append(False)
                continue
            table = self.database.table(ref.name)
            padded = kind == "LEFT"
            type_names = {
                column.name: column.type_name for column in table.columns()
            }
            for name in table.column_names:
                cols.append(_Col(
                    alias=alias, name=name.lower(), display=name,
                    type=type_names.get(name, "UNKNOWN"),
                    nullable=padded or table.column_has_nulls(name),
                    table=table, column=name, scan=index,
                ))
            scan_nonempty.append(len(table.rows) > 0)
        # Non-emptiness proof, folded left to right over the join chain.
        prefix_nonempty = complete and bool(scan_nonempty) and scan_nonempty[0]
        prefix_cols: list[_Col] = [c for c in cols if c.scan == 0]
        for index, (kind, _ref, join) in enumerate(refs):
            if index == 0 or join is None:
                continue
            right_cols = [c for c in cols if c.scan == index]
            if join.condition is not None:
                # The ON condition sees the columns accumulated so far
                # plus the joined table's, once per candidate pair — it
                # is guaranteed to run only when both sides have rows.
                on_scope = _StScope(prefix_cols + right_cols, complete)
                on_certain = (
                    certain and complete and prefix_nonempty
                    and scan_nonempty[index]
                )
                self._expr(join.condition, _Env(
                    scopes=(on_scope,) + outer, certain=on_certain,
                    clause="JOIN ON",
                ))
            if kind == "LEFT":
                pass  # left rows survive (padded), proof unchanged
            elif kind == "CROSS" or join.condition is None:
                prefix_nonempty = prefix_nonempty and scan_nonempty[index]
            else:
                prefix_nonempty = False  # INNER matches are data-dependent
            prefix_cols.extend(right_cols)
        self._cartesian_lints(stmt, refs, cols, complete)
        return cols, complete, complete and prefix_nonempty

    def _plain(
        self,
        stmt: ast.SelectStatement,
        own: _StScope,
        chain: tuple[_StScope, ...],
        certain: bool,
        complete: bool,
        filtered_nonempty: bool,
    ) -> _StmtFacts:
        items_certain = certain and filtered_nonempty
        out_names: list[str] | None = [] if complete else None
        out_types: list[_Inferred] = []
        expanded_count = 0
        for item in stmt.items:
            if isinstance(item.expression, ast.Star):
                qualifier = item.expression.table
                lower = qualifier.lower() if qualifier else None
                selected = [
                    col for col in own.cols
                    if lower is None or col.alias == lower
                ]
                if complete and lower is not None and not selected:
                    # _expand_items raises eagerly, before any row loop.
                    self.emit(
                        "SQLA002", f"unknown table in {qualifier}.*",
                        error=certain,
                    )
                    out_names = None
                    continue
                if out_names is not None:
                    out_names.extend(col.display for col in selected)
                out_types.extend(
                    _Inferred(col.type, col.nullable) for col in selected
                )
                expanded_count += len(selected)
            else:
                inferred = self._expr(item.expression, _Env(
                    scopes=chain, certain=items_certain,
                    clause="the select list",
                ))
                if out_names is not None:
                    out_names.append(_output_name(item))
                out_types.append(inferred)
                expanded_count += 1
        self._order_by(
            stmt, stmt.items, expanded_count if complete else None,
            chain, items_certain, certain, aggregates_ok=False,
            group_certain=False,
        )
        first = out_types[0] if out_types else _UNKNOWN
        single_row = (
            stmt.from_table is None
            and not stmt.joins
            and stmt.where is None
            and (stmt.limit is None or stmt.limit >= 1)
            and not stmt.offset
        )
        return _StmtFacts(
            out_names=out_names, first_type=first.type,
            single_row=single_row, resolved=complete,
        )

    def _grouped(
        self,
        stmt: ast.SelectStatement,
        chain: tuple[_StScope, ...],
        certain: bool,
        complete: bool,
        filtered_nonempty: bool,
    ) -> _StmtFacts:
        star_items = any(
            isinstance(item.expression, ast.Star) for item in stmt.items
        )
        if star_items:
            # _execute_grouped raises eagerly, before grouping starts.
            self.emit(
                "SQLA022",
                "'*' cannot appear in an aggregate select list",
                error=certain,
            )
        # GROUP BY keys are evaluated per pre-group row, without a group
        # context, so aggregates there raise (once per evaluated row).
        gb_certain = certain and filtered_nonempty
        for expression in stmt.group_by:
            self._expr(expression, _Env(
                scopes=chain, certain=gb_certain, clause="GROUP BY",
            ))
        if stmt.group_by:
            groups_exist = filtered_nonempty
            group_certain = True       # every GROUP BY bucket has rows
        else:
            groups_exist = True        # global aggregate: always one group
            group_certain = filtered_nonempty
        if stmt.having is not None:
            self._expr(stmt.having, _Env(
                scopes=chain, certain=certain and groups_exist,
                clause="HAVING", aggregates_ok=True,
                group_certain=group_certain,
            ))
        # HAVING runs before the select list and can filter out every
        # group, so items are guaranteed-evaluated only without HAVING.
        items_certain = certain and groups_exist and stmt.having is None
        out_names: list[str] | None = None if star_items else []
        out_types: list[_Inferred] = []
        for item in stmt.items:
            if isinstance(item.expression, ast.Star):
                continue
            inferred = self._expr(item.expression, _Env(
                scopes=chain, certain=items_certain,
                clause="the select list", aggregates_ok=True,
                group_certain=group_certain,
            ))
            if out_names is not None:
                out_names.append(_output_name(item))
            out_types.append(inferred)
        self._order_by(
            stmt, stmt.items, len(stmt.items), chain, items_certain,
            certain, aggregates_ok=True, group_certain=group_certain,
        )
        self._group_coverage_lints(stmt, chain)
        first = out_types[0] if out_types else _UNKNOWN
        single_row = (
            not stmt.group_by
            and stmt.having is None
            and (stmt.limit is None or stmt.limit >= 1)
            and not stmt.offset
        )
        return _StmtFacts(
            out_names=out_names, first_type=first.type,
            single_row=single_row, resolved=complete,
        )

    def _order_by(
        self,
        stmt: ast.SelectStatement,
        items: tuple[ast.SelectItem, ...],
        item_count: int | None,
        chain: tuple[_StScope, ...],
        row_certain: bool,
        stmt_certain: bool,
        *,
        aggregates_ok: bool,
        group_certain: bool,
    ) -> None:
        """Mirror ``_order_expressions``: ordinals and aliases resolve
        eagerly, before any row or group is evaluated."""
        aliases = {item.alias.lower() for item in items if item.alias}
        for order in stmt.order_by:
            expression = order.expression
            if isinstance(expression, ast.Literal) \
                    and isinstance(expression.value, int) \
                    and not isinstance(expression.value, bool):
                position = expression.value - 1
                if item_count is not None \
                        and not 0 <= position < item_count:
                    self.emit(
                        "SQLA013",
                        f"ORDER BY position {expression.value} "
                        f"out of range",
                        error=stmt_certain,
                    )
                continue  # the referenced item is walked as a select item
            if isinstance(expression, ast.ColumnRef) \
                    and expression.table is None \
                    and expression.name.lower() in aliases:
                continue  # alias: the aliased expression is a select item
            self._expr(expression, _Env(
                scopes=chain, certain=row_certain, clause="ORDER BY",
                aggregates_ok=aggregates_ok, group_certain=group_certain,
            ))

    # -- statement-level lints -------------------------------------------

    def _cartesian_lints(
        self,
        stmt: ast.SelectStatement,
        refs: list[tuple[str, ast.TableRef, ast.Join | None]],
        cols: list[_Col],
        complete: bool,
    ) -> None:
        """SQLA040: flag conditionless joins with no WHERE equi-join."""
        if not complete or len(refs) < 2:
            return
        conjuncts = split_conjuncts(stmt.where)
        scope = _StScope(cols, complete)
        for index, (_kind, ref, join) in enumerate(refs):
            if join is None or join.condition is not None:
                continue
            if not self._has_equi_condition(conjuncts, scope, index):
                self.emit(
                    "SQLA040",
                    f"cartesian join with table "
                    f"{ref.effective_alias()!r} has no equi-join "
                    f"condition",
                    error=False,
                )

    def _has_equi_condition(
        self,
        conjuncts: list[ast.Expression],
        scope: _StScope,
        scan: int,
    ) -> bool:
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.BinaryOp)
                    and conjunct.op == "="):
                continue
            sides = (conjunct.left, conjunct.right)
            if not all(isinstance(side, ast.ColumnRef) for side in sides):
                continue
            resolved = []
            for side in sides:
                matches = scope.matches(side.name, side.table)
                if len(matches) != 1:
                    break
                resolved.append(matches[0])
            if len(resolved) != 2:
                continue
            scans = {col.scan for col in resolved}
            if scan in scans and len(scans) == 2:
                return True
        return False

    def _domain_lints(
        self, stmt: ast.SelectStatement, own: _StScope, complete: bool
    ) -> None:
        """SQLA041: ``col = literal`` where the literal is not in the data.

        This is the static face of the paper's Figure 4 trap: the agent
        writes ``country = 'United States'`` while the table stores
        ``'USA'``. The query is valid and runs — it just selects nothing
        — so this can only ever be a warning.
        """
        if not complete:
            return
        for conjunct in split_conjuncts(stmt.where):
            if not (isinstance(conjunct, ast.BinaryOp)
                    and conjunct.op == "="):
                continue
            column_side, literal_side = conjunct.left, conjunct.right
            if isinstance(column_side, ast.Literal):
                column_side, literal_side = literal_side, column_side
            if not (isinstance(column_side, ast.ColumnRef)
                    and isinstance(literal_side, ast.Literal)):
                continue
            value = literal_side.value
            if value is None:
                continue
            matches = own.matches(column_side.name, column_side.table)
            if len(matches) != 1:
                continue
            col = matches[0]
            if col.table is None or col.column is None \
                    or not col.table.rows:
                continue
            rows = col.table.equality_rows(col.column, value)
            if rows == []:
                self.emit(
                    "SQLA041",
                    f"literal {value!r} never occurs in column "
                    f"{col.display!r} of table {col.table.name!r}",
                    error=False,
                )

    def _group_coverage_lints(
        self, stmt: ast.SelectStatement, chain: tuple[_StScope, ...]
    ) -> None:
        """SQLA021: bare columns the grouping does not pin down.

        The naive engine evaluates them against an arbitrary
        representative row of each group, so this is always a warning —
        a determinism smell, not a guaranteed failure.
        """
        own = chain[0]
        grouped_keys: set[tuple[str | None, str]] = set()
        for expression in stmt.group_by:
            if isinstance(expression, ast.ColumnRef):
                matches = own.matches(expression.name, expression.table)
                if len(matches) == 1:
                    grouped_keys.add((matches[0].alias, matches[0].name))
        candidates: list[tuple[str, ast.Expression]] = [
            ("the select list", item.expression) for item in stmt.items
        ]
        if stmt.having is not None:
            candidates.append(("HAVING", stmt.having))
        candidates.extend(
            ("ORDER BY", order.expression) for order in stmt.order_by
        )
        aliases = {item.alias.lower() for item in stmt.items if item.alias}
        for clause, root in candidates:
            for node in _bare_columns(root):
                if clause == "ORDER BY" and node.table is None \
                        and node.name.lower() in aliases:
                    continue
                matches = own.matches(node.name, node.table)
                if len(matches) != 1:
                    continue
                col = matches[0]
                if (col.alias, col.name) in grouped_keys:
                    continue
                label = "GROUP BY" if stmt.group_by else "an aggregate"
                self.emit(
                    "SQLA021",
                    f"bare column {node.name!r} in {clause} is not "
                    f"covered by {label} (an arbitrary group row "
                    f"decides its value)",
                    error=False,
                )

    # -- expressions ------------------------------------------------------

    def _expr(self, node: ast.Expression, env: _Env) -> _Inferred:
        if isinstance(node, ast.Literal):
            return _Inferred(
                _literal_type(node.value), node.value is None,
                node.value, True,
            )
        if isinstance(node, ast.ColumnRef):
            return self._column(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, env)
        if isinstance(node, ast.BinaryOp):
            return self._binary(node, env)
        if isinstance(node, ast.FunctionCall):
            return self._function(node, env)
        if isinstance(node, ast.AggregateCall):
            return self._aggregate(node, env)
        if isinstance(node, ast.InExpr):
            return self._in(node, env)
        if isinstance(node, ast.BetweenExpr):
            for part in (node.operand, node.low, node.high):
                self._expr(part, env)
            return _BOOL
        if isinstance(node, ast.LikeExpr):
            self._expr(node.operand, env)
            self._expr(node.pattern, env)
            return _BOOL
        if isinstance(node, ast.IsNullExpr):
            self._expr(node.operand, env)
            return _Inferred("BOOLEAN", nullable=False)
        if isinstance(node, ast.CaseExpr):
            return self._case(node, env)
        if isinstance(node, ast.CastExpr):
            return self._cast(node, env)
        if isinstance(node, ast.ScalarSubquery):
            facts = self._substatement(node.query, env, env.certain)
            return _Inferred(facts.first_type, True)
        if isinstance(node, ast.ExistsExpr):
            self._substatement(node.query, env, env.certain)
            return _Inferred("BOOLEAN", nullable=False)
        return _UNKNOWN

    def _substatement(
        self, query: ast.SelectStatement, env: _Env, certain: bool
    ) -> _StmtFacts:
        """Walk a subquery, classifying it correlated or uncorrelated.

        A subquery is correlated iff any successful column resolution
        inside it (at any nesting depth) landed in one of the *enclosing*
        scopes — exactly the scope objects alive in ``env.scopes`` now.
        """
        outer_ids = {id(scope) for scope in env.scopes}  # lint: allow-id-key
        mark = len(self.resolution_log)
        unresolved_before = self.unresolved_count
        facts = self.statement(query, env.scopes, certain)
        escaped = any(
            scope_id in outer_ids
            for scope_id in self.resolution_log[mark:]
        )
        if escaped:
            self.correlated += 1
        elif facts.resolved and self.unresolved_count == unresolved_before:
            self.uncorrelated += 1
        return facts

    def _column(self, node: ast.ColumnRef, env: _Env) -> _Inferred:
        qualifier = f"{node.table}." if node.table else ""
        for scope in env.scopes:
            matches = scope.matches(node.name, node.table)
            if len(matches) > 1:
                # Scope.resolve raises before looking further out.
                self.emit(
                    "SQLA003",
                    f"ambiguous column reference {node.name!r}",
                    error=env.certain,
                )
                self.unresolved_count += 1
                return _UNKNOWN
            if len(matches) == 1:
                col = matches[0]
                self.resolution_log.append(id(scope))
                return _Inferred(col.type, col.nullable)
            if not scope.complete:
                # An unknown table hides this scope's true columns; the
                # query errors on the FROM clause anyway, so stay quiet.
                self.unresolved_count += 1
                return _UNKNOWN
        self.emit(
            "SQLA001",
            f"unknown column {qualifier}{node.name!r}",
            error=env.certain,
        )
        self.unresolved_count += 1
        return _UNKNOWN

    def _unary(self, node: ast.UnaryOp, env: _Env) -> _Inferred:
        operand = self._expr(node.operand, env)
        if node.op.upper() == "NOT":
            return _Inferred("BOOLEAN", operand.nullable)
        if node.op == "-":
            if _provably_non_numeric(operand):
                self.emit(
                    "SQLA010",
                    f"cannot negate a provably non-numeric value "
                    f"in {env.clause}",
                    error=env.certain,
                )
            return _Inferred(
                operand.type if operand.type in ("INTEGER", "REAL")
                else "NUMERIC",
                operand.nullable,
            )
        return _UNKNOWN

    def _binary(self, node: ast.BinaryOp, env: _Env) -> _Inferred:
        op = node.op.upper()
        if op in ("AND", "OR"):
            self._expr(node.left, env)
            # The right side is skipped when the left decides the result.
            self._expr(node.right, env.uncertain())
            return _BOOL
        left = self._expr(node.left, env)
        right = self._expr(node.right, env)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            self._comparison_lint(left, right, env)
            return _Inferred("BOOLEAN", left.nullable or right.nullable)
        if op == "||":
            return _Inferred("TEXT", left.nullable or right.nullable)
        # Arithmetic. The evaluator short-circuits NULL operands to NULL
        # *before* the numeric check, so a raise is guaranteed only when
        # both operands are provably non-NULL and one provably fails
        # numeric coercion.
        both_non_null = not left.nullable and not right.nullable
        for side in (left, right):
            if _provably_non_numeric(side):
                self.emit(
                    "SQLA010",
                    f"arithmetic {op} on a provably non-numeric value "
                    f"in {env.clause}",
                    error=env.certain and both_non_null,
                )
        if op in ("/", "%") and right.has_value and right.value is not None \
                and coerce_numeric(right.value) == 0:
            left_coerces = left.has_value and left.value is not None \
                and coerce_numeric(left.value) is not None
            self.emit(
                "SQLA010",
                f"division by zero in {env.clause}",
                error=env.certain and both_non_null and left_coerces,
            )
        nullable = left.nullable or right.nullable
        if op == "/":
            return _Inferred("REAL", nullable)
        if left.type == "INTEGER" and right.type == "INTEGER":
            return _Inferred("INTEGER", nullable)
        if "REAL" in (left.type, right.type):
            return _Inferred("REAL", nullable)
        return _Inferred("NUMERIC", nullable)

    def _comparison_lint(
        self, left: _Inferred, right: _Inferred, env: _Env
    ) -> None:
        """SQLA010 (warning): a numeric value against a non-numeric string.

        ``compare_values`` never raises — it falls back to text ordering —
        so this is legal but almost always a mistranslation; flag it
        without ever blocking execution.
        """
        for numeric_side, other in ((left, right), (right, left)):
            if numeric_side.type not in _NUMERIC_TYPES:
                continue
            if (
                other.has_value
                and isinstance(other.value, str)
                and coerce_numeric(other.value) is None
            ):
                self.emit(
                    "SQLA010",
                    f"comparison mixes a numeric value with the "
                    f"non-numeric string {other.value!r} in {env.clause}",
                    error=False,
                )
                return

    def _function(self, node: ast.FunctionCall, env: _Env) -> _Inferred:
        inferred = [self._expr(arg, env) for arg in node.args]
        name = node.name.upper()
        if name not in SCALAR_FUNCTION_NAMES:
            self.emit(
                "SQLA011", f"unknown function {name}", error=env.certain,
            )
            return _UNKNOWN
        minimum, maximum = _FUNCTION_ARITY[name]
        count = len(node.args)
        if count < minimum or (maximum is not None and count > maximum):
            bound = "or more" if maximum is None else f"to {maximum}"
            self.emit(
                "SQLA011",
                f"{name} expects {minimum} {bound} arguments, got {count}",
                error=env.certain,
            )
            return _UNKNOWN
        if name in ("ABS", "ROUND") and inferred \
                and _provably_non_numeric(inferred[0]):
            self.emit(
                "SQLA011",
                f"{name} requires a numeric argument",
                error=env.certain,
            )
        if name in ("SUBSTR", "SUBSTRING") and len(inferred) >= 2 \
                and not inferred[0].nullable:
            for argument in inferred[1:]:
                if argument.has_value and argument.value is not None \
                        and coerce_numeric(argument.value) is None:
                    self.emit(
                        "SQLA011",
                        f"{name} position arguments must be numbers",
                        error=env.certain,
                    )
        return _FUNCTION_RESULTS.get(name, _UNKNOWN)

    def _aggregate(self, node: ast.AggregateCall, env: _Env) -> _Inferred:
        name = node.name.upper()
        if not env.aggregates_ok or env.in_aggregate:
            # The evaluator raises whenever the node is reached without a
            # group context (WHERE, GROUP BY, JOIN ON, nested arguments,
            # or a non-aggregate query's ORDER BY).
            self.emit(
                "SQLA020",
                f"aggregate {name} is not allowed in {env.clause}",
                error=env.certain,
            )
        if isinstance(node.argument, ast.Star):
            if name != "COUNT":
                # Raised as soon as the node is evaluated with a group,
                # before any group rows are consulted.
                self.emit(
                    "SQLA011", f"{name}(*) is not valid",
                    error=env.certain and env.aggregates_ok
                    and not env.in_aggregate,
                )
            return _Inferred("INTEGER", nullable=False)
        argument_env = _Env(
            scopes=env.scopes,
            certain=env.certain and env.group_certain,
            clause=f"the argument of {name}",
            aggregates_ok=False,
            in_aggregate=True,
            group_certain=env.group_certain,
        )
        argument = self._expr(node.argument, argument_env)
        if name in ("SUM", "AVG") and _provably_non_numeric(argument):
            self.emit(
                "SQLA010",
                f"{name} over a provably non-numeric value",
                error=argument_env.certain and env.aggregates_ok
                and not env.in_aggregate,
            )
        if name == "COUNT":
            return _Inferred("INTEGER", nullable=False)
        if name == "AVG":
            return _Inferred("REAL")
        if name == "SUM":
            if argument.type in ("INTEGER", "REAL"):
                return _Inferred(argument.type)
            return _Inferred("NUMERIC")
        return _Inferred(argument.type)  # MIN / MAX

    def _in(self, node: ast.InExpr, env: _Env) -> _Inferred:
        operand = self._expr(node.operand, env)
        # A NULL operand short-circuits before the items or subquery are
        # touched, so they are guaranteed-evaluated only when the operand
        # provably is not NULL.
        inner_env = env if not operand.nullable else env.uncertain()
        if node.subquery is not None:
            self._substatement(node.subquery, env, inner_env.certain)
        for item in node.items or ():
            self._expr(item, inner_env)
        return _BOOL

    def _case(self, node: ast.CaseExpr, env: _Env) -> _Inferred:
        lazy = env.uncertain()
        result_types: list[_Inferred] = []
        for position, (condition, result) in enumerate(node.branches):
            # Only the first WHEN condition is unconditionally evaluated.
            self._expr(condition, env if position == 0 else lazy)
            result_types.append(self._expr(result, lazy))
        if node.default is not None:
            result_types.append(self._expr(node.default, lazy))
        return _Inferred(_lub(result_types))

    def _cast(self, node: ast.CastExpr, env: _Env) -> _Inferred:
        operand = self._expr(node.operand, env)
        upper = node.type_name.upper()
        if upper not in CASTABLE_TYPES:
            # cast_value raises on an unknown target even for NULL input.
            self.emit(
                "SQLA012",
                f"unknown cast target type: {node.type_name}",
                error=env.certain,
            )
            return _UNKNOWN
        return _Inferred(
            _CAST_RESULT_TYPES.get(upper, "UNKNOWN"), operand.nullable
        )


# -- helpers ------------------------------------------------------------------


_FUNCTION_RESULTS = {
    "ABS": _Inferred("NUMERIC"),
    "ROUND": _Inferred("NUMERIC"),
    "LOWER": _Inferred("TEXT"),
    "UPPER": _Inferred("TEXT"),
    "LENGTH": _Inferred("INTEGER"),
    "LEN": _Inferred("INTEGER"),
    "COALESCE": _UNKNOWN,
    "IFNULL": _UNKNOWN,
    "NULLIF": _UNKNOWN,
    "SUBSTR": _Inferred("TEXT"),
    "SUBSTRING": _Inferred("TEXT"),
    "TRIM": _Inferred("TEXT"),
}


def _literal_type(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "REAL"
    return "TEXT"


def _provably_non_numeric(inferred: _Inferred) -> bool:
    """True when ``coerce_numeric`` is guaranteed to reject a non-NULL
    value of this expression. TEXT never qualifies (numeric strings
    coerce); BOOLEAN qualifies only when provably non-NULL. Implies the
    value is provably non-NULL."""
    if inferred.has_value:
        return (
            inferred.value is not None
            and coerce_numeric(inferred.value) is None
        )
    return inferred.type == "BOOLEAN" and not inferred.nullable


def _lub(types: list[_Inferred]) -> str:
    names = {t.type for t in types if t.type != "NULL"}
    if not names:
        return "NULL"
    if len(names) == 1:
        return next(iter(names))
    if names <= _NUMERIC_TYPES:
        return "NUMERIC"
    return "UNKNOWN"


def _is_aggregate_query(statement: ast.SelectStatement) -> bool:
    """Mirror of ``Engine._is_aggregate_query`` (items + HAVING only)."""
    if statement.group_by:
        return True
    candidates: list[object] = [i.expression for i in statement.items]
    if statement.having is not None:
        candidates.append(statement.having)
    for candidate in candidates:
        for node in ast.walk_expressions(candidate):
            if isinstance(node, ast.AggregateCall):
                return True
    return False


def _bare_columns(root: ast.Expression):
    """Yield ColumnRef nodes not nested inside an aggregate argument."""
    stack: list[object] = [root]
    while stack:
        node = stack.pop()
        if node is None or isinstance(node, ast.AggregateCall):
            continue
        if isinstance(node, ast.ColumnRef):
            yield node
        elif isinstance(node, ast.UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, ast.BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.FunctionCall):
            stack.extend(node.args)
        elif isinstance(node, ast.InExpr):
            stack.append(node.operand)
            stack.extend(node.items or ())
        elif isinstance(node, ast.BetweenExpr):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, ast.LikeExpr):
            stack.extend((node.operand, node.pattern))
        elif isinstance(node, ast.IsNullExpr):
            stack.append(node.operand)
        elif isinstance(node, ast.CaseExpr):
            for condition, result in node.branches:
                stack.extend((condition, result))
            if node.default is not None:
                stack.append(node.default)
        elif isinstance(node, ast.CastExpr):
            stack.append(node.operand)


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    return item.expression.to_sql()


# -- totality facts (consumed by the compiler/executor pushdown gating) ------

_TOTAL_BINARY_OPS = frozenset(
    ("AND", "OR", "=", "<>", "<", "<=", ">", ">=", "||")
)


def is_total(node: ast.Expression) -> bool:
    """True when evaluating ``node`` can never raise, for any row.

    "Total" predicates are the only ones the planner may push below a
    join, split out of an AND chain, or evaluate early in a hash join:
    since they cannot raise, evaluating them on more rows (pushdown) or
    fewer rows (hash-join pre-filtering) is observable only through the
    result set, which the strategies preserve. ``compare_values`` never
    raises on non-NULL inputs and NULLs short-circuit before every
    comparison, so comparison chains over columns and literals qualify.
    """
    if isinstance(node, (ast.Literal, ast.ColumnRef)):
        return True
    if isinstance(node, ast.BinaryOp):
        return (
            node.op in _TOTAL_BINARY_OPS
            and is_total(node.left)
            and is_total(node.right)
        )
    if isinstance(node, ast.UnaryOp):
        return node.op == "NOT" and is_total(node.operand)
    if isinstance(node, ast.InExpr):
        return (
            node.subquery is None
            and is_total(node.operand)
            and all(is_total(item) for item in node.items or ())
        )
    if isinstance(node, ast.BetweenExpr):
        return (
            is_total(node.operand)
            and is_total(node.low)
            and is_total(node.high)
        )
    if isinstance(node, ast.LikeExpr):
        return is_total(node.operand) and is_total(node.pattern)
    if isinstance(node, ast.IsNullExpr):
        return is_total(node.operand)
    if isinstance(node, ast.CaseExpr):
        return all(
            is_total(condition) and is_total(result)
            for condition, result in node.branches
        ) and (node.default is None or is_total(node.default))
    return False


def split_conjuncts(node: ast.Expression | None) -> list[ast.Expression]:
    """Flatten a WHERE/ON tree into its top-level AND conjuncts."""
    if node is None:
        return []
    if isinstance(node, ast.BinaryOp) and node.op == "AND":
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node]
