"""Vectorized (columnar) execution: batch operators over column arrays.

This is the engine's fastest path. Where the compiled row path runs a
closure tree once per row tuple, the vectorized path compiles each
expression into a *batch operator* that produces a whole column of
results in one list comprehension, and runs the relational pipeline as
selection vectors and index gathers over :meth:`Table.column_array`
storage — no row tuples are materialized until the final projection.

The byte-identity contract with the naive oracle is inherited from the
row path and enforced the same way: anything not *provably* equivalent
is rejected at plan time (:class:`VectorizeError`) or at run time
(:class:`FallbackNeeded`), and the executor silently runs the row path
instead. The vectorized compiler's totality judgment is strictly wider
than the analyzer's :func:`~repro.sqlengine.analyzer.is_total` because
it is *data-backed*: tables are immutable and the statistics layer
(:mod:`repro.sqlengine.stats`) records exact per-column value classes,
so e.g. arithmetic or ``SUM`` over a column whose every stored value is
a finite number is provably unable to raise, even though the same
expression over an arbitrary column could.

Value-class ("klass") lattice carried on every compiled node:

``"num"``
    finite ``int``/``float`` or NULL. Direct Python comparison,
    arithmetic, hashing, ``sum()``/``min()``/``max()`` all agree with
    ``compare_values``/``_numeric_sum``/``_extreme`` on this class.
``"numx"``
    numeric or NULL, NaN/inf possible (the class of arithmetic
    *results*: finite inputs can overflow to inf and inf-inf is NaN).
    Totality still holds, but comparisons must go through
    ``compare_values`` (NaN compares equal to everything there).
``"text"``
    non-numeric-looking ``str`` or NULL; direct string comparison
    agrees with ``compare_values``.
``"bool"``
    ``True``/``False``/NULL — comparison results; selection masks test
    ``is True`` instead of calling ``_truthy``.
``"empty"``
    provably all-NULL; compatible with every specialization (the
    fast loops never reach a non-NULL value).
``"other"``
    anything else; only the generic ``compare_values`` loops are sound.

Plan-level decisions (access path, conjunct order, join build side)
come from the cost-based optimizer (:mod:`repro.sqlengine.optimizer`)
and are recorded both in counters and in the plan's deterministic
``summary`` string, which the executor attaches to ``sql_execute``
spans.
"""

from __future__ import annotations

import operator

from . import ast_nodes as ast
from .compiler import (
    _ARITHMETIC_OPS,
    CompileError,
    resolve_column,
    split_conjuncts,
)
from .errors import PlanError
from .executor import (
    _equi_pair,
    _expand_select_items,
    _index_probe,
    _output_name,
    _resolve_order_items,
    _single_scan_target,
    _sort_key,
)
from .expressions import ColumnInfo, _like_to_regex, _truthy
from .functions import aggregate, call_scalar
from .optimizer import (
    OPTIMIZER_COUNTERS,
    Estimator,
    choose_build_side,
    order_conjuncts,
    plan_scan,
)
from .planner import STRATEGY_COUNTERS
from .stats import ColumnStats, table_stats
from .table import Database, Table
from .values import (
    CASTABLE_TYPES,
    SqlValue,
    cast_value,
    coerce_numeric,
    compare_values,
    equality_key,
    to_text,
)


class VectorizeError(Exception):
    """Statement not vectorizable; the executor keeps the row path."""


class FallbackNeeded(Exception):
    """Data defeated this plan at run time (NaN keys, empty global group).

    Both triggers are pure functions of the (immutable) table contents,
    so the executor permanently disables the plan for this database
    fingerprint rather than re-attempting every call.
    """


# -- value-class lattice ------------------------------------------------------

def _num_ok(klass: str) -> bool:
    """Finite-number-or-NULL guaranteed."""
    return klass in ("num", "empty")


def _numx_ok(klass: str) -> bool:
    """Number-or-NULL guaranteed (NaN/inf possible)."""
    return klass in ("num", "numx", "empty")


def _text_ok(klass: str) -> bool:
    return klass in ("text", "empty")


def _boolish(klass: str) -> bool:
    return klass in ("bool", "empty")


def _lub(klasses: list[str]) -> str:
    """Least upper bound of value classes (for CASE/COALESCE results)."""
    present = [k for k in klasses if k != "empty"]
    if not present:
        return "empty"
    for candidate in ("num", "numx", "text", "bool"):
        check = {"num": _num_ok, "numx": _numx_ok,
                 "text": _text_ok, "bool": _boolish}[candidate]
        if all(check(k) for k in present):
            return candidate
    return "other"


# -- batches ------------------------------------------------------------------

class Const:
    """A compiled-constant column: one value standing for every row."""

    __slots__ = ("value",)

    def __init__(self, value: SqlValue) -> None:
        self.value = value


def _expand(values, n: int) -> list:
    return [values.value] * n if isinstance(values, Const) else values


class Batch:
    """Column metadata plus lazily loaded per-column value arrays.

    Loaders run at most once; a batch column that nothing evaluates is
    never materialized (filtering gathers only the columns the rest of
    the plan touches).
    """

    __slots__ = ("columns", "klasses", "length", "_loaders", "_arrays")

    def __init__(self, columns, klasses, length, loaders) -> None:
        self.columns = columns
        self.klasses = klasses
        self.length = length
        self._loaders = loaders
        self._arrays: list[list | None] = [None] * len(loaders)

    def array(self, position: int) -> list:
        cached = self._arrays[position]
        if cached is None:
            cached = self._loaders[position]()
            self._arrays[position] = cached
        return cached


def scan_batch(table: Table, columns, klasses) -> Batch:
    """A zero-copy batch over a base table's column arrays."""
    loaders = [
        (lambda t=table, i=i: t.column_array(i))
        for i in range(len(columns))
    ]
    return Batch(columns, klasses, len(table), loaders)


def gather_batch(parent: Batch, indices: list[int]) -> Batch:
    """The subset of ``parent`` selected by ``indices`` (lazy per column)."""
    def loader(position: int):
        def load() -> list:
            source = parent.array(position)
            return [source[i] for i in indices]
        return load
    loaders = [loader(p) for p in range(len(parent.columns))]
    return Batch(parent.columns, parent.klasses, len(indices), loaders)


def join_batch(
    left: Batch, right: Batch,
    left_indices: list[int], right_indices: list[int],
) -> Batch:
    """A joined batch from parallel index arrays (-1 right = NULL pad)."""
    def left_loader(position: int):
        def load() -> list:
            source = left.array(position)
            return [source[i] for i in left_indices]
        return load

    def right_loader(position: int):
        def load() -> list:
            source = right.array(position)
            return [source[i] if i >= 0 else None for i in right_indices]
        return load
    loaders = [left_loader(p) for p in range(len(left.columns))]
    loaders += [right_loader(p) for p in range(len(right.columns))]
    return Batch(
        left.columns + right.columns,
        left.klasses + right.klasses,
        len(left_indices),
        loaders,
    )


class _GroupEnv:
    """Evaluation environment for grouped expressions.

    Exposes the representative-row batch (one row per group) through the
    normal ``array`` interface, plus per-group aggregate result arrays
    through ``agg`` slots.
    """

    __slots__ = ("batch", "aggs", "length")

    def __init__(self, batch: Batch, aggs: list[list]) -> None:
        self.batch = batch
        self.aggs = aggs
        self.length = batch.length

    def array(self, position: int) -> list:
        return self.batch.array(position)

    def agg(self, slot: int) -> list:
        return self.aggs[slot]

    def select(self, indices: list[int]) -> "_GroupEnv":
        return _GroupEnv(
            gather_batch(self.batch, indices),
            [[values[i] for i in indices] for values in self.aggs],
        )


# -- compiled batch expressions ----------------------------------------------

class BNode:
    """A compiled batch expression: ``run(env) -> list | Const``."""

    __slots__ = ("run", "klass", "nonzero")

    def __init__(self, run, klass: str, nonzero: bool = False) -> None:
        self.run = run
        self.klass = klass
        self.nonzero = nonzero


class _Schema:
    """Compile-time column environment: metadata plus soundness facts."""

    __slots__ = ("columns", "klasses", "nonzero")

    def __init__(self, columns, klasses, nonzero) -> None:
        self.columns = columns
        self.klasses = klasses
        self.nonzero = nonzero

    @classmethod
    def concat(cls, first: "_Schema", second: "_Schema") -> "_Schema":
        return cls(
            first.columns + second.columns,
            first.klasses + second.klasses,
            first.nonzero + second.nonzero,
        )


def _scan_schema(table: Table, alias: str) -> tuple[_Schema, list[ColumnStats]]:
    stats = table_stats(table)
    columns = [
        ColumnInfo(alias, name.lower(), name) for name in table.column_names
    ]
    per_column = [stats.column(name) for name in table.column_names]
    klasses = [s.value_class for s in per_column]
    nonzero = [
        s.value_class == "empty"
        or (
            s.value_class == "num"
            and s.minimum is not None
            and (s.minimum > 0 or s.maximum < 0)
        )
        for s in per_column
    ]
    return _Schema(columns, klasses, nonzero), per_column


def _selection(node: BNode, env) -> list[int]:
    """Indices of rows where the node is non-NULL truthy."""
    values = node.run(env)
    if isinstance(values, Const):
        value = values.value
        keep = value is not None and _truthy(value)
        return list(range(env.length)) if keep else []
    if _boolish(node.klass):
        return [i for i, v in enumerate(values) if v is True]
    return [
        i for i, v in enumerate(values) if v is not None and _truthy(v)
    ]


def _combine(left: BNode, right: BNode, fn):
    """A NULL-propagating pairwise combinator (the workhorse loop)."""
    def run(env):
        la = left.run(env)
        ra = right.run(env)
        if isinstance(la, Const) and isinstance(ra, Const):
            x, y = la.value, ra.value
            return Const(None if x is None or y is None else fn(x, y))
        if isinstance(ra, Const):
            y = ra.value
            if y is None:
                return Const(None)
            return [None if x is None else fn(x, y) for x in la]
        if isinstance(la, Const):
            x = la.value
            if x is None:
                return Const(None)
            return [None if y is None else fn(x, y) for y in ra]
        return [
            None if x is None or y is None else fn(x, y)
            for x, y in zip(la, ra)
        ]
    return run


_FAST_COMPARE = {
    "=": operator.eq, "<>": operator.ne,
    "<": operator.lt, "<=": operator.le,
    ">": operator.gt, ">=": operator.ge,
}
_COMPARE_TESTS = {
    "=": lambda c: c == 0, "<>": lambda c: c != 0,
    "<": lambda c: c < 0, "<=": lambda c: c <= 0,
    ">": lambda c: c > 0, ">=": lambda c: c >= 0,
}


def _compile(node: ast.Expression, schema: _Schema, aggs) -> BNode:
    handler = _BATCH_COMPILERS.get(type(node))
    if handler is None:
        raise VectorizeError(f"unvectorizable node {type(node).__name__}")
    return handler(node, schema, aggs)


def _b_literal(node: ast.Literal, schema, aggs) -> BNode:
    value = node.value
    if value is None:
        klass = "empty"
    elif isinstance(value, bool):
        klass = "bool"
    elif isinstance(value, (int, float)):
        # The parser only produces finite numeric literals.
        klass = "num"
    elif isinstance(value, str):
        klass = "text" if coerce_numeric(value) is None else "other"
    else:  # pragma: no cover - SqlValue is closed over these types
        klass = "other"
    nonzero = isinstance(value, (int, float)) and not isinstance(
        value, bool
    ) and value != 0
    return BNode(lambda env: Const(value), klass, nonzero)


def _b_column(node: ast.ColumnRef, schema, aggs) -> BNode:
    try:
        position = resolve_column(schema.columns, node.name, node.table)
    except CompileError as error:
        raise VectorizeError(str(error)) from None
    return BNode(
        lambda env: env.array(position),
        schema.klasses[position],
        schema.nonzero[position],
    )


def _b_unary(node: ast.UnaryOp, schema, aggs) -> BNode:
    operand = _compile(node.operand, schema, aggs)
    if node.op == "NOT":
        def run_not(env):
            values = operand.run(env)
            if isinstance(values, Const):
                value = values.value
                return Const(None if value is None else not _truthy(value))
            return [None if v is None else not _truthy(v) for v in values]
        return BNode(run_not, "bool")
    if node.op == "-":
        if not _numx_ok(operand.klass):
            raise VectorizeError("negation over a non-numeric column")

        def run_neg(env):
            values = operand.run(env)
            if isinstance(values, Const):
                value = values.value
                return Const(None if value is None else -value)
            return [None if v is None else -v for v in values]
        klass = "num" if _num_ok(operand.klass) else "numx"
        return BNode(run_neg, klass, operand.nonzero)
    raise VectorizeError(f"unary operator {node.op}")


def _b_binary(node: ast.BinaryOp, schema, aggs) -> BNode:
    op = node.op
    left = _compile(node.left, schema, aggs)
    right = _compile(node.right, schema, aggs)
    if op in ("AND", "OR"):
        want = op == "AND"

        def run_logic(env):
            la = left.run(env)
            ra = right.run(env)
            n = env.length
            if isinstance(la, Const) and isinstance(ra, Const):
                return Const(_logic3(la.value, ra.value, want))
            la = _expand(la, n)
            ra = _expand(ra, n)
            return [_logic3(x, y, want) for x, y in zip(la, ra)]
        return BNode(run_logic, "bool")
    if op in _FAST_COMPARE:
        both_num = _num_ok(left.klass) and _num_ok(right.klass)
        both_text = _text_ok(left.klass) and _text_ok(right.klass)
        if both_num or both_text:
            fn = _FAST_COMPARE[op]
        else:
            test = _COMPARE_TESTS[op]
            fn = lambda x, y, test=test: test(compare_values(x, y))  # noqa: E731
        return BNode(_combine(left, right, fn), "bool")
    if op == "||":
        return BNode(
            _combine(left, right, lambda x, y: to_text(x) + to_text(y)),
            "other",
        )
    if op in ("+", "-", "*"):
        if not (_numx_ok(left.klass) and _numx_ok(right.klass)):
            raise VectorizeError(f"arithmetic {op} over non-numeric operands")
        # Results are "numx", never "num": finite inputs can overflow to
        # inf, and inf arithmetic can produce NaN further up the tree.
        return BNode(_combine(left, right, _ARITHMETIC_OPS[op]), "numx")
    if op in ("/", "%"):
        if not (_numx_ok(left.klass) and _numx_ok(right.klass)):
            raise VectorizeError(f"arithmetic {op} over non-numeric operands")
        if not right.nonzero:
            raise VectorizeError(f"{op} divisor not provably non-zero")
        return BNode(_combine(left, right, _ARITHMETIC_OPS[op]), "numx")
    raise VectorizeError(f"binary operator {op}")


def _logic3(x, y, want_and: bool):
    """Three-valued AND/OR over raw values, matching the compiled closures."""
    if want_and:
        if x is not None and not _truthy(x):
            return False
        if y is not None and not _truthy(y):
            return False
        if x is None or y is None:
            return None
        return True
    if x is not None and _truthy(x):
        return True
    if y is not None and _truthy(y):
        return True
    if x is None or y is None:
        return None
    return False


def _b_function(node: ast.FunctionCall, schema, aggs) -> BNode:
    name = node.name.upper()
    args = [_compile(a, schema, aggs) for a in node.args]
    count = len(args)
    if name in ("LOWER", "UPPER", "TRIM"):
        if count != 1:
            raise VectorizeError(f"{name} arity")
        klass = "other"
    elif name in ("LENGTH", "LEN"):
        if count != 1:
            raise VectorizeError(f"{name} arity")
        klass = "num"
    elif name in ("COALESCE", "IFNULL"):
        if count < 1:
            raise VectorizeError(f"{name} arity")
        klass = _lub([a.klass for a in args])
    elif name == "NULLIF":
        if count != 2:
            raise VectorizeError("NULLIF arity")
        klass = args[0].klass
    elif name == "ABS":
        if count != 1 or not _num_ok(args[0].klass):
            raise VectorizeError("ABS needs a finite numeric argument")
        klass = "num"
    elif name == "ROUND":
        if count not in (1, 2) or not _num_ok(args[0].klass):
            raise VectorizeError("ROUND needs a finite numeric argument")
        if count == 2 and not _literal_finite_number(node.args[1]):
            raise VectorizeError("ROUND digits must be a numeric literal")
        klass = "num"
    elif name in ("SUBSTR", "SUBSTRING"):
        if count not in (2, 3):
            raise VectorizeError(f"{name} arity")
        for extra in node.args[1:]:
            if not _literal_finite_number(extra):
                raise VectorizeError(f"{name} bounds must be numeric literals")
        klass = "other"
    else:
        raise VectorizeError(f"function {name} not provably total")
    nonzero = name in ("COALESCE", "IFNULL", "NULLIF") and all(
        a.nonzero for a in args
    )

    def run(env):
        arrays = [a.run(env) for a in args]
        if all(isinstance(a, Const) for a in arrays):
            return Const(call_scalar(name, [a.value for a in arrays]))
        n = env.length
        expanded = [_expand(a, n) for a in arrays]
        return [call_scalar(name, list(row)) for row in zip(*expanded)]
    return BNode(run, klass, nonzero)


def _literal_finite_number(node: ast.Expression) -> bool:
    return (
        isinstance(node, ast.Literal)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == node.value  # not NaN (parser never emits one)
    )


def _b_aggregate(node: ast.AggregateCall, schema, aggs) -> BNode:
    if aggs is None:
        raise VectorizeError("aggregate in scalar context")
    entry = aggs.get(id(node))  # lint: allow-id-key
    if entry is None:  # pragma: no cover - collection precedes compilation
        raise VectorizeError("aggregate not collected")
    slot, klass = entry
    return BNode(lambda env: env.agg(slot), klass)


def _b_in(node: ast.InExpr, schema, aggs) -> BNode:
    if node.subquery is not None:
        raise VectorizeError("IN subquery")
    operand = _compile(node.operand, schema, aggs)
    items = [_compile(item, schema, aggs) for item in node.items or ()]
    negated = node.negated
    const_values = None
    if all(isinstance(item, ast.Literal) for item in node.items or ()):
        const_values = [item.value for item in node.items or ()]
    if (
        const_values is not None
        and _num_ok(operand.klass)
        and all(
            value is None or _literal_finite_number(ast.Literal(value))
            for value in const_values
        )
    ):
        # Numeric operand vs numeric/NULL literals: set membership agrees
        # with compare_values (Python unifies int/float hash equality).
        candidates = frozenset(v for v in const_values if v is not None)
        saw_null = any(v is None for v in const_values)
        miss = None if saw_null else negated

        def run_fast(env):
            values = operand.run(env)
            if isinstance(values, Const):
                v = values.value
                if v is None:
                    return Const(None)
                return Const((not negated) if v in candidates else miss)
            return [
                None if v is None
                else (not negated) if v in candidates else miss
                for v in values
            ]
        return BNode(run_fast, "bool")

    def run(env):
        values = operand.run(env)
        arrays = [item.run(env) for item in items]
        n = env.length
        if isinstance(values, Const) and all(
            isinstance(a, Const) for a in arrays
        ):
            return Const(
                _in_scalar(values.value, [a.value for a in arrays], negated)
            )
        values = _expand(values, n)
        columns = [_expand(a, n) for a in arrays]
        out = []
        for index, value in enumerate(values):
            out.append(
                _in_scalar(
                    value, [column[index] for column in columns], negated
                )
            )
        return out
    return BNode(run, "bool")


def _in_scalar(value, candidates, negated):
    if value is None:
        return None
    saw_null = False
    for candidate in candidates:
        if candidate is None:
            saw_null = True
            continue
        if compare_values(value, candidate) == 0:
            return not negated
    if saw_null:
        return None
    return negated


def _b_between(node: ast.BetweenExpr, schema, aggs) -> BNode:
    operand = _compile(node.operand, schema, aggs)
    low = _compile(node.low, schema, aggs)
    high = _compile(node.high, schema, aggs)
    negated = node.negated
    fast = (
        _num_ok(operand.klass) and _num_ok(low.klass) and _num_ok(high.klass)
    )

    def inside(value, lo, hi):
        if fast:
            return (lo <= value <= hi) != negated
        return (
            compare_values(value, lo) >= 0 and compare_values(value, hi) <= 0
        ) != negated

    def run(env):
        va = operand.run(env)
        la = low.run(env)
        ha = high.run(env)
        if isinstance(la, Const) and isinstance(ha, Const):
            lo, hi = la.value, ha.value
            if lo is None or hi is None:
                return Const(None)
            if isinstance(va, Const):
                v = va.value
                return Const(None if v is None else inside(v, lo, hi))
            return [None if v is None else inside(v, lo, hi) for v in va]
        n = env.length
        va = _expand(va, n)
        la = _expand(la, n)
        ha = _expand(ha, n)
        return [
            None if v is None or lo is None or hi is None
            else inside(v, lo, hi)
            for v, lo, hi in zip(va, la, ha)
        ]
    return BNode(run, "bool")


def _b_like(node: ast.LikeExpr, schema, aggs) -> BNode:
    operand = _compile(node.operand, schema, aggs)
    negated = node.negated
    if isinstance(node.pattern, ast.Literal) and node.pattern.value is not None:
        regex = _like_to_regex(to_text(node.pattern.value))

        def run_constant(env):
            values = operand.run(env)
            if isinstance(values, Const):
                v = values.value
                return Const(
                    None if v is None
                    else (regex.fullmatch(to_text(v)) is not None) != negated
                )
            return [
                None if v is None
                else (regex.fullmatch(to_text(v)) is not None) != negated
                for v in values
            ]
        return BNode(run_constant, "bool")
    pattern = _compile(node.pattern, schema, aggs)

    def match(value, pattern_value):
        regex = _like_to_regex(to_text(pattern_value))
        return (regex.fullmatch(to_text(value)) is not None) != negated
    return BNode(_combine(operand, pattern, match), "bool")


def _b_is_null(node: ast.IsNullExpr, schema, aggs) -> BNode:
    operand = _compile(node.operand, schema, aggs)
    negated = node.negated

    def run(env):
        values = operand.run(env)
        if isinstance(values, Const):
            return Const((values.value is None) != negated)
        return [(v is None) != negated for v in values]
    return BNode(run, "bool")


def _b_case(node: ast.CaseExpr, schema, aggs) -> BNode:
    branches = [
        (_compile(condition, schema, aggs), _compile(result, schema, aggs))
        for condition, result in node.branches
    ]
    default = (
        _compile(node.default, schema, aggs)
        if node.default is not None else None
    )
    result_klasses = [result.klass for _, result in branches]
    result_klasses.append(default.klass if default is not None else "empty")

    def run(env):
        n = env.length
        conditions = [_expand(c.run(env), n) for c, _ in branches]
        results = [_expand(r.run(env), n) for _, r in branches]
        fallback = (
            _expand(default.run(env), n) if default is not None else None
        )
        out = []
        for i in range(n):
            for condition, result in zip(conditions, results):
                value = condition[i]
                if value is not None and _truthy(value):
                    out.append(result[i])
                    break
            else:
                out.append(fallback[i] if fallback is not None else None)
        return out
    return BNode(run, _lub(result_klasses))


def _b_cast(node: ast.CastExpr, schema, aggs) -> BNode:
    operand = _compile(node.operand, schema, aggs)
    upper = node.type_name.upper()
    if upper not in CASTABLE_TYPES:
        raise VectorizeError(f"unknown cast target {upper}")
    if upper in ("TEXT", "VARCHAR", "STRING"):
        klass = "other"
    elif _num_ok(operand.klass):
        # int()/float()/bool() of a finite number cannot raise.
        klass = "bool" if upper in ("BOOLEAN", "BOOL") else "num"
    else:
        raise VectorizeError(f"CAST to {upper} not provably total")
    type_name = node.type_name

    def run(env):
        values = operand.run(env)
        if isinstance(values, Const):
            return Const(cast_value(values.value, type_name))
        return [cast_value(v, type_name) for v in values]
    return BNode(run, klass)


def _b_star(node: ast.Star, schema, aggs) -> BNode:
    raise VectorizeError("bare '*' outside select-list expansion")


def _b_subquery(node, schema, aggs) -> BNode:
    raise VectorizeError("subqueries are not vectorizable")


_BATCH_COMPILERS = {
    ast.Literal: _b_literal,
    ast.ColumnRef: _b_column,
    ast.Star: _b_star,
    ast.UnaryOp: _b_unary,
    ast.BinaryOp: _b_binary,
    ast.FunctionCall: _b_function,
    ast.AggregateCall: _b_aggregate,
    ast.InExpr: _b_in,
    ast.BetweenExpr: _b_between,
    ast.LikeExpr: _b_like,
    ast.IsNullExpr: _b_is_null,
    ast.CaseExpr: _b_case,
    ast.CastExpr: _b_cast,
    ast.ScalarSubquery: _b_subquery,
    ast.ExistsExpr: _b_subquery,
}


# -- plan structures ----------------------------------------------------------

class _ScanPlan:
    __slots__ = ("table", "schema", "nodes", "probe", "access")

    def __init__(self, table, schema, nodes, probe, access) -> None:
        self.table = table
        self.schema = schema
        self.nodes = nodes          # BNodes in optimizer evaluation order
        self.probe = probe          # (column name, value) answering nodes[0]
        self.access = access


class _JoinPlan:
    __slots__ = ("kind", "pairs", "fast_keys", "residual", "build")

    def __init__(self, kind, pairs, fast_keys, residual, build) -> None:
        self.kind = kind            # "INNER" | "LEFT" | "CROSS"
        self.pairs = pairs          # [(left batch position, right position)]
        self.fast_keys = fast_keys  # raw-value hashing is sound
        self.residual = residual    # BNodes over the combined batch
        self.build = build          # "left" | "right"


class _AggSpec:
    __slots__ = ("slot", "name", "distinct", "arg", "fast")

    def __init__(self, slot, name, distinct, arg, fast) -> None:
        self.slot = slot
        self.name = name
        self.distinct = distinct
        self.arg = arg              # BNode, or None for COUNT(*)
        self.fast = fast


class CompiledSelect:
    """A fully compiled vectorized plan for one SELECT statement.

    ``run()`` produces ``(names, tagged)`` in exactly the shape the
    executor's shared DISTINCT/ORDER BY/LIMIT tail consumes. ``summary``
    is a deterministic description of the chosen plan, computed at build
    time so span annotations are identical whether or not a given
    execution was served from the result cache.
    """

    __slots__ = (
        "statement", "scans", "joins", "where_nodes", "grouped", "names",
        "item_nodes", "order_nodes", "having_node", "group_key_nodes",
        "agg_specs", "pushed_count", "summary", "disabled",
    )

    def __init__(self) -> None:
        self.disabled = False

    # -- execution --------------------------------------------------------

    def run(self) -> tuple[list[str], list[tuple[tuple, tuple]]]:
        if self.pushed_count:
            STRATEGY_COUNTERS.bump("pushed_predicates", self.pushed_count)
        batch = self._run_scan(self.scans[0])
        for plan, scan in zip(self.joins, self.scans[1:]):
            batch = self._run_join(plan, batch, self._run_scan(scan))
        for node in self.where_nodes:
            batch = _filter_batch(batch, node)
        if self.grouped:
            names, tagged = self._run_grouped(batch)
        else:
            names, tagged = self._run_plain(batch)
        return names, tagged

    def _run_scan(self, scan: _ScanPlan) -> Batch:
        batch = scan_batch(scan.table, scan.schema.columns, scan.schema.klasses)
        nodes = scan.nodes
        start = 0
        if scan.probe is not None:
            name, value = scan.probe
            positions = scan.table.equality_rows(name, value)
            if positions is not None:
                STRATEGY_COUNTERS.bump("indexed_scans")
                batch = gather_batch(batch, positions)
                start = 1
            # else: the column defeats hashing (NaN); nodes[0] runs as a
            # plain mask below, which is exactly what the row path does.
        for node in nodes[start:]:
            batch = _filter_batch(batch, node)
        return batch

    def _run_join(self, plan: _JoinPlan, left: Batch, right: Batch) -> Batch:
        if plan.kind == "CROSS":
            STRATEGY_COUNTERS.bump("cross_joins")
            right_range = range(right.length)
            left_indices = [
                i for i in range(left.length) for _ in right_range
            ]
            right_indices = list(right_range) * left.length
            return join_batch(left, right, left_indices, right_indices)
        left_keys = _join_keys(
            left, [lp for lp, _ in plan.pairs], plan.fast_keys
        )
        right_keys = _join_keys(
            right, [rp for _, rp in plan.pairs], plan.fast_keys
        )
        if plan.build == "right":
            buckets: dict = {}
            for index, key in enumerate(right_keys):
                if key is not None:
                    buckets.setdefault(key, []).append(index)
            candidate_l: list[int] = []
            candidate_r: list[int] = []
            for index, key in enumerate(left_keys):
                if key is not None:
                    for match in buckets.get(key, ()):
                        candidate_l.append(index)
                        candidate_r.append(match)
        else:
            # Build on the (estimated smaller) left, probe in right order,
            # then restore the nested-loop output order by sorting the
            # (left, right) index pairs lexicographically. INNER only.
            buckets = {}
            for index, key in enumerate(left_keys):
                if key is not None:
                    buckets.setdefault(key, []).append(index)
            pairs: list[tuple[int, int]] = []
            for index, key in enumerate(right_keys):
                if key is not None:
                    for match in buckets.get(key, ()):
                        pairs.append((match, index))
            pairs.sort()
            candidate_l = [pair[0] for pair in pairs]
            candidate_r = [pair[1] for pair in pairs]
        if plan.residual:
            candidate_batch = join_batch(left, right, candidate_l, candidate_r)
            for node in plan.residual:
                selected = _selection(node, candidate_batch)
                if len(selected) < candidate_batch.length:
                    candidate_l = [candidate_l[i] for i in selected]
                    candidate_r = [candidate_r[i] for i in selected]
                    candidate_batch = gather_batch(candidate_batch, selected)
        if plan.kind == "LEFT":
            out_l: list[int] = []
            out_r: list[int] = []
            cursor = 0
            total = len(candidate_l)
            for index in range(left.length):
                matched = False
                while cursor < total and candidate_l[cursor] == index:
                    out_l.append(index)
                    out_r.append(candidate_r[cursor])
                    matched = True
                    cursor += 1
                if not matched:
                    out_l.append(index)
                    out_r.append(-1)
            candidate_l, candidate_r = out_l, out_r
        STRATEGY_COUNTERS.bump("hash_joins")
        return join_batch(left, right, candidate_l, candidate_r)

    def _run_plain(self, batch: Batch):
        n = batch.length
        item_arrays = [_expand(node.run(batch), n) for node in self.item_nodes]
        outputs = list(zip(*item_arrays))
        tagged = _tag(outputs, self.order_nodes, batch, n)
        return self.names, tagged

    def _run_grouped(self, batch: Batch):
        n = batch.length
        if self.group_key_nodes:
            groups = _group_positions(self.group_key_nodes, batch)
        elif n == 0:
            # A global aggregate over an empty relation: the row path's
            # interpreted empty-group branch is the semantic reference
            # (bare columns resolve outward there); don't reproduce it.
            raise FallbackNeeded("global aggregate over an empty relation")
        else:
            groups = [list(range(n))]
        agg_arrays: list[list] = [None] * len(self.agg_specs)  # type: ignore[list-item]
        for spec in self.agg_specs:
            agg_arrays[spec.slot] = _run_aggregate(spec, groups, batch, n)
        representatives = [group[0] for group in groups]
        env = _GroupEnv(gather_batch(batch, representatives), agg_arrays)
        if self.having_node is not None:
            selected = _selection(self.having_node, env)
            if len(selected) < env.length:
                env = env.select(selected)
        count = env.length
        item_arrays = [
            _expand(node.run(env), count) for node in self.item_nodes
        ]
        outputs = list(zip(*item_arrays))
        tagged = _tag(outputs, self.order_nodes, env, count)
        return self.names, tagged


def _filter_batch(batch: Batch, node: BNode) -> Batch:
    selected = _selection(node, batch)
    if len(selected) == batch.length:
        return batch
    return gather_batch(batch, selected)


def _tag(outputs, order_nodes, env, n):
    if not order_nodes:
        empty = ()
        return [(output, empty) for output in outputs]
    key_arrays = []
    for node, descending in order_nodes:
        values = _expand(node.run(env), n)
        key_arrays.append([_sort_key(v, descending) for v in values])
    return list(zip(outputs, zip(*key_arrays)))


def _group_positions(key_nodes: list[BNode], batch: Batch) -> list[list[int]]:
    n = batch.length
    buckets: dict = {}
    if len(key_nodes) == 1:
        # Raw values bucket exactly like the row path's 1-tuples: tuple
        # equality is elementwise, and dicts apply the same identity
        # shortcut (NaN groups by object) either way.
        for index, key in enumerate(_expand(key_nodes[0].run(batch), n)):
            buckets.setdefault(key, []).append(index)
    else:
        arrays = [_expand(node.run(batch), n) for node in key_nodes]
        for index, key in enumerate(zip(*arrays)):
            buckets.setdefault(key, []).append(index)
    return list(buckets.values())


def _run_aggregate(spec: _AggSpec, groups, batch: Batch, n: int) -> list:
    if spec.arg is None:
        return [len(group) for group in groups]
    values = _expand(spec.arg.run(batch), n)
    if spec.fast:
        out = []
        name = spec.name
        for group in groups:
            kept = [v for i in group if (v := values[i]) is not None]
            if name == "COUNT":
                out.append(len(kept))
            elif not kept:
                out.append(None)
            elif name == "SUM":
                out.append(sum(kept))
            elif name == "AVG":
                out.append(sum(kept) / len(kept))
            elif name == "MIN":
                out.append(min(kept))
            else:
                out.append(max(kept))
        return out
    return [
        aggregate(spec.name, [values[i] for i in group], spec.distinct)
        for group in groups
    ]


def _join_keys(batch: Batch, positions: list[int], fast: bool) -> list:
    """Per-row join keys; None means "never matches" (NULL key part)."""
    if len(positions) == 1:
        array = batch.array(positions[0])
        if fast:
            return array
        keys = []
        for value in array:
            if value is None:
                keys.append(None)
                continue
            key = equality_key(value)
            if key is None:
                raise FallbackNeeded("NaN join key")
            keys.append(key)
        return keys
    arrays = [batch.array(position) for position in positions]
    keys = []
    for row in zip(*arrays):
        if any(part is None for part in row):
            keys.append(None)
        elif fast:
            keys.append(row)
        else:
            parts = tuple(equality_key(part) for part in row)
            if any(part is None for part in parts):
                raise FallbackNeeded("NaN join key")
            keys.append(parts)
    return keys


# -- plan construction --------------------------------------------------------

def build_plan(statement: ast.SelectStatement, database: Database) -> CompiledSelect:
    """Compile a statement into a vectorized plan, or raise VectorizeError.

    Every rejection reason maps onto behaviour only the row path can
    reproduce (subqueries, lazily raised name errors, expressions not
    provably total over this exact data); the caller falls back there.
    """
    try:
        plan = _build(statement, database)
    except (VectorizeError, CompileError, PlanError) as error:
        OPTIMIZER_COUNTERS.bump("plans_row_path")
        raise VectorizeError(str(error)) from None
    OPTIMIZER_COUNTERS.bump("plans_vectorized")
    return plan


def _build(statement: ast.SelectStatement, database: Database) -> CompiledSelect:
    if statement.from_table is None:
        raise VectorizeError("no FROM clause")
    for node in ast.walk_expressions(statement):
        if isinstance(node, (ast.ScalarSubquery, ast.ExistsExpr)):
            raise VectorizeError("subquery")
        if isinstance(node, ast.InExpr) and node.subquery is not None:
            raise VectorizeError("IN subquery")
    refs = [statement.from_table] + [join.table for join in statement.joins]
    tables = [database.table(ref.name) for ref in refs]
    schemas: list[_Schema] = []
    scan_stats: list[list[ColumnStats]] = []
    for ref, table in zip(refs, tables):
        schema, per_column = _scan_schema(table, ref.effective_alias().lower())
        schemas.append(schema)
        scan_stats.append(per_column)
    full = schemas[0]
    for schema in schemas[1:]:
        full = _Schema.concat(full, schema)
    flat_stats = [stats for per_scan in scan_stats for stats in per_scan]

    def resolve_stats(ref: ast.ColumnRef) -> ColumnStats | None:
        try:
            position = resolve_column(full.columns, ref.name, ref.table)
        except CompileError:
            return None
        return flat_stats[position]

    estimator = Estimator(resolve_stats)

    # -- WHERE: split, target, push --------------------------------------
    offsets: list[tuple[int, int]] = []
    start = 0
    for schema in schemas:
        offsets.append((start, start + len(schema.columns)))
        start += len(schema.columns)
    left_padded = {
        index
        for index, join in enumerate(statement.joins, start=1)
        if join.kind == "LEFT"
    }
    conjuncts = split_conjuncts(statement.where)
    pushed: dict[int, list[ast.Expression]] = {}
    residual_where: list[ast.Expression] = []
    for conjunct in conjuncts:
        try:
            target = _single_scan_target(conjunct, full.columns, offsets)
        except CompileError:
            target = None
        if target is not None and target not in left_padded:
            pushed.setdefault(target, []).append(conjunct)
        else:
            residual_where.append(conjunct)

    plan = CompiledSelect()
    plan.statement = statement
    plan.pushed_count = (
        sum(len(v) for v in pushed.values()) if statement.joins else 0
    )

    # -- scans ------------------------------------------------------------
    scans: list[_ScanPlan] = []
    estimates: list[float] = []
    for index, (table, schema) in enumerate(zip(tables, schemas)):
        scan_conjuncts = pushed.get(index, [])
        compiled = [
            _compile(conjunct, schema, None) for conjunct in scan_conjuncts
        ]
        candidates = []
        for position, conjunct in enumerate(scan_conjuncts):
            probe = _index_probe(conjunct)
            if (
                probe is not None
                and probe[1] is not None
                and table.has_column(probe[0].name)
            ):
                candidates.append(position)
        choice = plan_scan(len(table), scan_conjuncts, estimator, candidates)
        ordered_nodes = [compiled[i] for i in choice.ordered]
        probe_info = None
        if choice.access == "index_probe":
            ref, value = _index_probe(scan_conjuncts[choice.ordered[0]])
            probe_info = (ref.name, value)
        scans.append(
            _ScanPlan(table, schema, ordered_nodes, probe_info, choice.access)
        )
        estimates.append(choice.estimated_rows)
    plan.scans = scans

    # -- joins ------------------------------------------------------------
    joins: list[_JoinPlan] = []
    running = estimates[0]
    cumulative = schemas[0]
    for index, join in enumerate(statement.joins, start=1):
        right_schema = schemas[index]
        combined = _Schema.concat(cumulative, right_schema)
        left_width = len(cumulative.columns)
        if join.kind == "CROSS" or join.condition is None:
            OPTIMIZER_COUNTERS.bump("cross_joins_planned")
            joins.append(_JoinPlan("CROSS", [], True, [], "right"))
            running *= estimates[index]
            cumulative = combined
            continue
        equi: list[tuple[int, int]] = []
        residual_nodes: list[BNode] = []
        for conjunct in split_conjuncts(join.condition):
            pair = _equi_pair(conjunct, combined.columns, left_width)
            if pair is not None:
                equi.append((pair[0], pair[1] - left_width))
            else:
                residual_nodes.append(_compile(conjunct, combined, None))
        if not equi:
            raise VectorizeError("join without an equality pair")
        fast = all(
            cumulative.klasses[lp] != "other"
            and right_schema.klasses[rp] != "other"
            for lp, rp in equi
        )
        key_stats = []
        for lp, rp in equi:
            left_info = cumulative.columns[lp]
            right_info = right_schema.columns[rp]
            key_stats.append((
                resolve_stats(ast.ColumnRef(left_info.display, left_info.table)),
                resolve_stats(
                    ast.ColumnRef(right_info.display, right_info.table)
                ),
            ))
        build = choose_build_side(join.kind, running, estimates[index])
        OPTIMIZER_COUNTERS.bump("hash_joins_planned")
        joins.append(_JoinPlan(join.kind, equi, fast, residual_nodes, build))
        running = estimator.join_rows(running, estimates[index], key_stats)
        cumulative = combined
    plan.joins = joins

    # -- residual WHERE ----------------------------------------------------
    ordered_residual = order_conjuncts(residual_where, estimator)
    plan.where_nodes = [
        _compile(residual_where[i], full, None) for i, _ in ordered_residual
    ]

    # -- projection --------------------------------------------------------
    plan.grouped = _aggregate_query(statement)
    if plan.grouped:
        if any(isinstance(i.expression, ast.Star) for i in statement.items):
            raise VectorizeError("'*' in an aggregate select list")
        items = list(statement.items)
        order_items = _resolve_order_items(statement, items)
        aggs = _collect_aggregates(items, statement.having, order_items)
        specs: list[_AggSpec] = []
        env_map: dict[int, tuple[int, str]] = {}
        for slot, agg_node in enumerate(aggs):
            spec, klass = _compile_aggregate(agg_node, full, slot)
            specs.append(spec)
            env_map[id(agg_node)] = (slot, klass)  # lint: allow-id-key
        plan.agg_specs = specs
        plan.group_key_nodes = [
            _compile(expr, full, None) for expr in statement.group_by
        ]
        plan.item_nodes = [
            _compile(item.expression, full, env_map) for item in items
        ]
        plan.having_node = (
            _compile(statement.having, full, env_map)
            if statement.having is not None else None
        )
        plan.order_nodes = [
            (_compile(order.expression, full, env_map), order.descending)
            for order in order_items
        ]
    else:
        items = _expand_select_items(statement, full.columns)
        order_items = _resolve_order_items(statement, items)
        plan.agg_specs = []
        plan.group_key_nodes = []
        plan.having_node = None
        plan.item_nodes = [
            _compile(item.expression, full, None) for item in items
        ]
        plan.order_nodes = [
            (_compile(order.expression, full, None), order.descending)
            for order in order_items
        ]
    plan.names = [_output_name(item) for item in items]
    plan.summary = _summarize(plan)
    return plan


def _aggregate_query(statement: ast.SelectStatement) -> bool:
    if statement.group_by:
        return True
    candidates: list[object] = [item.expression for item in statement.items]
    if statement.having is not None:
        candidates.append(statement.having)
    for candidate in candidates:
        for node in ast.walk_expressions(candidate):
            if isinstance(node, ast.AggregateCall):
                return True
    return False


def _collect_aggregates(items, having, order_items) -> list[ast.AggregateCall]:
    roots: list[object] = [item.expression for item in items]
    if having is not None:
        roots.append(having)
    roots.extend(order.expression for order in order_items)
    seen: set[int] = set()
    collected: list[ast.AggregateCall] = []
    for root in roots:
        for node in ast.walk_expressions(root):
            if isinstance(node, ast.AggregateCall) and id(node) not in seen:
                seen.add(id(node))  # lint: allow-id-key
                collected.append(node)
    return collected


def _compile_aggregate(
    node: ast.AggregateCall, schema: _Schema, slot: int
) -> tuple[_AggSpec, str]:
    name = node.name
    if isinstance(node.argument, ast.Star):
        if name != "COUNT":
            raise VectorizeError(f"{name}(*)")
        return _AggSpec(slot, name, False, None, True), "num"
    argument = _compile(node.argument, schema, None)
    if name == "COUNT":
        klass = "num"
    elif name in ("SUM", "AVG"):
        if not _numx_ok(argument.klass):
            raise VectorizeError(f"{name} over a non-numeric column")
        klass = "numx"
    elif name in ("MIN", "MAX"):
        klass = argument.klass
    else:
        raise VectorizeError(f"aggregate {name}")
    fast = not node.distinct and _num_ok(argument.klass)
    return _AggSpec(slot, name, node.distinct, argument, fast), klass


def _summarize(plan: CompiledSelect) -> str:
    scan_bits = []
    for scan in plan.scans:
        bit = f"{scan.table.name}:{scan.access}"
        if scan.nodes:
            bit += f"+{len(scan.nodes)}"
        scan_bits.append(bit)
    parts = [
        "vectorized/" + ("group" if plan.grouped else "plain"),
        "scan=" + ",".join(scan_bits),
    ]
    if plan.joins:
        join_bits = []
        for join in plan.joins:
            if join.kind == "CROSS":
                join_bits.append("cross")
            else:
                bit = f"hash:{join.build}"
                if join.residual:
                    bit += f"+{len(join.residual)}"
                join_bits.append(bit)
        parts.append("join=" + ",".join(join_bits))
    if plan.where_nodes:
        parts.append(f"where+{len(plan.where_nodes)}")
    return " ".join(parts)
