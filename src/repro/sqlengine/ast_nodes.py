"""Abstract syntax tree for the SQL subset.

Every node knows how to render itself back to SQL text (``to_sql``), which
the query-reconstruction stage (Algorithm 9) and the complexity analyser
(Table 3) rely on. Rendering always quotes identifiers, so round-tripping is
insensitive to the quoting style of the original query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .values import SqlValue, to_text

Expression = Union[
    "Literal", "ColumnRef", "Star", "UnaryOp", "BinaryOp", "FunctionCall",
    "AggregateCall", "InExpr", "BetweenExpr", "LikeExpr", "IsNullExpr",
    "CaseExpr", "CastExpr", "ScalarSubquery", "ExistsExpr",
]


def quote_identifier(name: str) -> str:
    """Render an identifier with double quotes (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def quote_string(text: str) -> str:
    """Render a string literal with single quotes."""
    return "'" + text.replace("'", "''") + "'"


@dataclass(frozen=True)
class Literal:
    """A constant value (number, string, boolean, or NULL)."""

    value: SqlValue

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return quote_string(self.value)
        return to_text(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    def to_sql(self) -> str:
        if self.table:
            return f"{quote_identifier(self.table)}.{quote_identifier(self.name)}"
        return quote_identifier(self.name)


@dataclass(frozen=True)
class Star:
    """``*`` or ``table.*`` in a select list or inside COUNT(*)."""

    table: str | None = None

    def to_sql(self) -> str:
        return f"{quote_identifier(self.table)}.*" if self.table else "*"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operator application: ``-x`` or ``NOT x``."""

    op: str
    operand: Expression

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator application (arithmetic, comparison, AND/OR, ``||``)."""

    op: str
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class FunctionCall:
    """A scalar function call such as ``ABS(x)`` or ``ROUND(x, 2)``."""

    name: str
    args: tuple[Expression, ...]

    def to_sql(self) -> str:
        rendered = ", ".join(a.to_sql() for a in self.args)
        return f"{self.name.upper()}({rendered})"


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate call: COUNT/SUM/AVG/MIN/MAX, optionally DISTINCT."""

    name: str
    argument: Expression
    distinct: bool = False

    def to_sql(self) -> str:
        inner = self.argument.to_sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


@dataclass(frozen=True)
class InExpr:
    """``expr [NOT] IN (list | subquery)``."""

    operand: Expression
    items: tuple[Expression, ...] | None
    subquery: "SelectStatement | None" = None
    negated: bool = False

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        if self.subquery is not None:
            return f"({self.operand.to_sql()} {keyword} ({self.subquery.to_sql()}))"
        rendered = ", ".join(i.to_sql() for i in self.items or ())
        return f"({self.operand.to_sql()} {keyword} ({rendered}))"


@dataclass(frozen=True)
class BetweenExpr:
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {keyword} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class LikeExpr:
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {keyword} {self.pattern.to_sql()})"


@dataclass(frozen=True)
class IsNullExpr:
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"


@dataclass(frozen=True)
class CaseExpr:
    """A searched CASE expression: ``CASE WHEN … THEN … [ELSE …] END``."""

    branches: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class CastExpr:
    """``CAST(expr AS type)``."""

    operand: Expression
    type_name: str

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.type_name.upper()})"


@dataclass(frozen=True)
class ScalarSubquery:
    """A parenthesised SELECT used as a scalar expression."""

    query: "SelectStatement"

    def to_sql(self) -> str:
        return f"({self.query.to_sql()})"


@dataclass(frozen=True)
class ExistsExpr:
    """``[NOT] EXISTS (subquery)``."""

    query: "SelectStatement"
    negated: bool = False

    def to_sql(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({keyword} ({self.query.to_sql()}))"


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expression.to_sql()} AS {quote_identifier(self.alias)}"
        return self.expression.to_sql()


@dataclass(frozen=True)
class TableRef:
    """A base table in the FROM clause, with an optional alias."""

    name: str
    alias: str | None = None

    def effective_alias(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{quote_identifier(self.name)} AS {quote_identifier(self.alias)}"
        return quote_identifier(self.name)


@dataclass(frozen=True)
class Join:
    """A join step applied to the FROM clause built so far."""

    kind: str  # "INNER", "LEFT", or "CROSS"
    table: TableRef
    condition: Expression | None = None

    def to_sql(self) -> str:
        if self.kind == "CROSS":
            return f"CROSS JOIN {self.table.to_sql()}"
        condition = self.condition.to_sql() if self.condition else "TRUE"
        return f"{self.kind} JOIN {self.table.to_sql()} ON {condition}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with its direction."""

    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"{self.expression.to_sql()} {direction}"


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT statement in the supported subset."""

    items: tuple[SelectItem, ...]
    from_table: TableRef | None = None
    joins: tuple[Join, ...] = field(default=())
    where: Expression | None = None
    group_by: tuple[Expression, ...] = field(default=())
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.from_table is not None:
            parts.append(f"FROM {self.from_table.to_sql()}")
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(e.to_sql() for e in self.group_by)
            )
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


def walk_expressions(node: object):
    """Yield every expression node reachable from ``node`` (inclusive).

    Descends through select statements, joins, and nested expressions, but
    stops at sub-query boundaries: nested SELECTs are yielded as their
    wrapper nodes (``ScalarSubquery`` etc.) without entering them. Use
    :func:`walk_subqueries` to enumerate nested statements. Used by the
    query-complexity analyser and by tests.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        if isinstance(current, SelectStatement):
            stack.extend(item.expression for item in current.items)
            stack.extend(j.condition for j in current.joins)
            stack.append(current.where)
            stack.extend(current.group_by)
            stack.append(current.having)
            stack.extend(o.expression for o in current.order_by)
            continue
        yield current
        if isinstance(current, UnaryOp):
            stack.append(current.operand)
        elif isinstance(current, BinaryOp):
            stack.extend((current.left, current.right))
        elif isinstance(current, FunctionCall):
            stack.extend(current.args)
        elif isinstance(current, AggregateCall):
            stack.append(current.argument)
        elif isinstance(current, InExpr):
            stack.append(current.operand)
            if current.items:
                stack.extend(current.items)
        elif isinstance(current, BetweenExpr):
            stack.extend((current.operand, current.low, current.high))
        elif isinstance(current, LikeExpr):
            stack.extend((current.operand, current.pattern))
        elif isinstance(current, IsNullExpr):
            stack.append(current.operand)
        elif isinstance(current, CaseExpr):
            for condition, result in current.branches:
                stack.extend((condition, result))
            if current.default is not None:
                stack.append(current.default)
        elif isinstance(current, CastExpr):
            stack.append(current.operand)
        # ScalarSubquery / ExistsExpr / InExpr subqueries are boundaries:
        # the wrapper is yielded, the nested statement is not entered.


def walk_subqueries(statement: SelectStatement):
    """Yield every nested SelectStatement under ``statement`` (exclusive)."""
    for node in walk_expressions(statement):
        if isinstance(node, ScalarSubquery):
            yield node.query
            yield from walk_subqueries(node.query)
        elif isinstance(node, ExistsExpr):
            yield node.query
            yield from walk_subqueries(node.query)
        elif isinstance(node, InExpr) and node.subquery is not None:
            yield node.subquery
            yield from walk_subqueries(node.subquery)
