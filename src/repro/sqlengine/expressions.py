"""Expression evaluation over row scopes.

The evaluator resolves column references against a chain of scopes
(innermost first, enabling correlated sub-queries), applies three-valued
logic for NULL handling, and supports a grouped mode in which aggregate
calls reduce over the rows of the current group.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from . import ast_nodes as ast
from .errors import ExecutionError, PlanError
from .functions import aggregate, call_scalar
from .values import (
    SqlValue,
    cast_value,
    coerce_numeric,
    compare_values,
    to_text,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .executor import Engine


@dataclass(frozen=True)
class ColumnInfo:
    """Metadata for one column of an intermediate relation."""

    table: str | None  # lower-cased table alias, or None
    name: str          # lower-cased column name
    display: str       # original-cased name for output headers


class Scope:
    """One level of column bindings: a row plus its column metadata."""

    def __init__(self, columns: list[ColumnInfo], row: tuple[SqlValue, ...]):
        self.columns = columns
        self.row = row

    def resolve(self, name: str, table: str | None) -> tuple[bool, SqlValue]:
        """Look up a column; returns (found, value).

        Raises :class:`PlanError` when an unqualified name is ambiguous
        within this scope.
        """
        name_lower = name.lower()
        table_lower = table.lower() if table else None
        matches = [
            index
            for index, info in enumerate(self.columns)
            if info.name == name_lower
            and (table_lower is None or info.table == table_lower)
        ]
        if not matches:
            return False, None
        if len(matches) > 1:
            raise PlanError(f"ambiguous column reference {name!r}")
        return True, self.row[matches[0]]


class GroupContext:
    """The rows of one group, for evaluating aggregate calls."""

    def __init__(self, columns: list[ColumnInfo],
                 rows: list[tuple[SqlValue, ...]]):
        self.columns = columns
        self.rows = rows


class Evaluator:
    """Evaluates expressions; owns a back-reference to the engine so that
    sub-queries can be executed with the current scopes for correlation."""

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    def evaluate(
        self,
        expression: ast.Expression,
        scopes: list[Scope],
        group: GroupContext | None = None,
    ) -> SqlValue:
        """Evaluate an expression to a single SQL value."""
        method: Callable = _DISPATCH.get(type(expression), _unsupported)
        return method(self, expression, scopes, group)

    # -- node handlers ----------------------------------------------------

    def _literal(self, node: ast.Literal, scopes, group) -> SqlValue:
        return node.value

    def _column(self, node: ast.ColumnRef, scopes, group) -> SqlValue:
        for scope in scopes:
            found, value = scope.resolve(node.name, node.table)
            if found:
                return value
        qualifier = f"{node.table}." if node.table else ""
        raise PlanError(f"unknown column {qualifier}{node.name!r}")

    def _star(self, node: ast.Star, scopes, group) -> SqlValue:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    def _unary(self, node: ast.UnaryOp, scopes, group) -> SqlValue:
        value = self.evaluate(node.operand, scopes, group)
        if node.op == "NOT":
            if value is None:
                return None
            return not _truthy(value)
        if node.op == "-":
            if value is None:
                return None
            number = coerce_numeric(value)
            if number is None:
                raise ExecutionError(f"cannot negate {value!r}")
            return -number
        raise ExecutionError(f"unknown unary operator {node.op}")

    def _binary(self, node: ast.BinaryOp, scopes, group) -> SqlValue:
        op = node.op
        if op == "AND":
            left = self.evaluate(node.left, scopes, group)
            if left is not None and not _truthy(left):
                return False
            right = self.evaluate(node.right, scopes, group)
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(node.left, scopes, group)
            if left is not None and _truthy(left):
                return True
            right = self.evaluate(node.right, scopes, group)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(node.left, scopes, group)
        right = self.evaluate(node.right, scopes, group)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return None
            comparison = compare_values(left, right)
            return {
                "=": comparison == 0,
                "<>": comparison != 0,
                "<": comparison < 0,
                "<=": comparison <= 0,
                ">": comparison > 0,
                ">=": comparison >= 0,
            }[op]
        if op == "||":
            if left is None or right is None:
                return None
            return to_text(left) + to_text(right)
        if left is None or right is None:
            return None
        left_num = coerce_numeric(left)
        right_num = coerce_numeric(right)
        if left_num is None or right_num is None:
            raise ExecutionError(
                f"arithmetic {op} requires numbers, got {left!r} and {right!r}"
            )
        if op == "+":
            return left_num + right_num
        if op == "-":
            return left_num - right_num
        if op == "*":
            return left_num * right_num
        if op == "/":
            if right_num == 0:
                raise ExecutionError("division by zero")
            result = left_num / right_num
            return result
        if op == "%":
            if right_num == 0:
                raise ExecutionError("modulo by zero")
            return left_num % right_num
        raise ExecutionError(f"unknown operator {op}")

    def _function(self, node: ast.FunctionCall, scopes, group) -> SqlValue:
        args = [self.evaluate(a, scopes, group) for a in node.args]
        return call_scalar(node.name.upper(), args)

    def _aggregate(self, node: ast.AggregateCall, scopes, group) -> SqlValue:
        if group is None:
            raise ExecutionError(
                f"aggregate {node.name} used outside of an aggregate query"
            )
        if isinstance(node.argument, ast.Star):
            if node.name != "COUNT":
                raise ExecutionError(f"{node.name}(*) is not valid")
            return len(group.rows)
        values: list[SqlValue] = []
        for row in group.rows:
            row_scope = Scope(group.columns, row)
            values.append(self.evaluate(node.argument, [row_scope] + scopes))
        return aggregate(node.name, values, node.distinct)

    def _in(self, node: ast.InExpr, scopes, group) -> SqlValue:
        operand = self.evaluate(node.operand, scopes, group)
        if operand is None:
            return None
        if node.subquery is not None:
            result = self._engine.execute_subquery(node.subquery, scopes)
            candidates = [row[0] for row in result.rows]
        else:
            candidates = [
                self.evaluate(item, scopes, group) for item in node.items or ()
            ]
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if compare_values(operand, candidate) == 0:
                return not node.negated
        if saw_null:
            return None
        return node.negated

    def _between(self, node: ast.BetweenExpr, scopes, group) -> SqlValue:
        operand = self.evaluate(node.operand, scopes, group)
        low = self.evaluate(node.low, scopes, group)
        high = self.evaluate(node.high, scopes, group)
        if operand is None or low is None or high is None:
            return None
        inside = (
            compare_values(operand, low) >= 0
            and compare_values(operand, high) <= 0
        )
        return inside != node.negated

    def _like(self, node: ast.LikeExpr, scopes, group) -> SqlValue:
        operand = self.evaluate(node.operand, scopes, group)
        pattern = self.evaluate(node.pattern, scopes, group)
        if operand is None or pattern is None:
            return None
        regex = _like_to_regex(to_text(pattern))
        matched = regex.fullmatch(to_text(operand)) is not None
        return matched != node.negated

    def _is_null(self, node: ast.IsNullExpr, scopes, group) -> SqlValue:
        value = self.evaluate(node.operand, scopes, group)
        return (value is None) != node.negated

    def _case(self, node: ast.CaseExpr, scopes, group) -> SqlValue:
        for condition, result in node.branches:
            value = self.evaluate(condition, scopes, group)
            if value is not None and _truthy(value):
                return self.evaluate(result, scopes, group)
        if node.default is not None:
            return self.evaluate(node.default, scopes, group)
        return None

    def _cast(self, node: ast.CastExpr, scopes, group) -> SqlValue:
        value = self.evaluate(node.operand, scopes, group)
        return cast_value(value, node.type_name)

    def _scalar_subquery(self, node: ast.ScalarSubquery, scopes, group) -> SqlValue:
        result = self._engine.execute_subquery(node.query, scopes)
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise ExecutionError(
                f"scalar sub-query returned {len(result.rows)} rows"
            )
        return result.rows[0][0]

    def _exists(self, node: ast.ExistsExpr, scopes, group) -> SqlValue:
        result = self._engine.execute_subquery(node.query, scopes)
        return bool(result.rows) != node.negated


def _unsupported(evaluator, node, scopes, group):
    raise ExecutionError(f"unsupported expression node {type(node).__name__}")


def _truthy(value: SqlValue) -> bool:
    """Interpret a non-NULL value as a boolean condition."""
    if isinstance(value, bool):
        return value
    number = coerce_numeric(value)
    if number is not None:
        return number != 0
    return bool(value)


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


_DISPATCH = {
    ast.Literal: Evaluator._literal,
    ast.ColumnRef: Evaluator._column,
    ast.Star: Evaluator._star,
    ast.UnaryOp: Evaluator._unary,
    ast.BinaryOp: Evaluator._binary,
    ast.FunctionCall: Evaluator._function,
    ast.AggregateCall: Evaluator._aggregate,
    ast.InExpr: Evaluator._in,
    ast.BetweenExpr: Evaluator._between,
    ast.LikeExpr: Evaluator._like,
    ast.IsNullExpr: Evaluator._is_null,
    ast.CaseExpr: Evaluator._case,
    ast.CastExpr: Evaluator._cast,
    ast.ScalarSubquery: Evaluator._scalar_subquery,
    ast.ExistsExpr: Evaluator._exists,
}
