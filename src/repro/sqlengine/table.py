"""In-memory relational tables and databases.

A :class:`Table` is a named set of columns over a fixed row count; a
:class:`Database` is a case-insensitive collection of tables. These are the
storage substrate under the SQL executor and are also used directly by the
dataset generators and by the agent's ``unique_column_values`` tool.

Storage is *columnar*: a table holds one value array per column, which is
what the vectorized executor scans, filters, and aggregates over without
ever materializing row tuples. The classic ``rows`` tuple view survives as
a memoized compatibility property — the naive oracle engine, the row-wise
compiled path, prompt rendering, and every pre-columnar caller keep
working unchanged. Whichever representation a table was *constructed*
from is stored as-is; the other is pivoted lazily on first use, so a
table that only ever feeds the vectorized path never pays for row tuples
and a table that only feeds prompts never pays for column arrays.

Column arrays are an implementation detail of :mod:`repro.sqlengine`:
outside the engine (and its tests) only the rows-view API may be used —
``tools/check_invariants.py`` enforces this.

Tables are immutable once constructed, which lets them memoize derived
views that used to be recomputed on every prompt render or tool call:
inferred column types, first-seen-order distinct values, per-column
statistics, and lazy equality indexes used by the optimized executor for
``col = literal`` scans. Databases are mutable (``add`` replaces tables)
and therefore carry a ``fingerprint()`` — a (creation token, mutation
version) pair — that the query-result cache keys on so stale results can
never be served.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Iterable, Sequence
from copy import deepcopy
from dataclasses import dataclass, field

from .errors import PlanError
from .values import SqlValue, equality_key, infer_column_type


@dataclass(frozen=True)
class Column:
    """A column with a name and an inferred display type."""

    name: str
    type_name: str = "TEXT"


#: Sentinel stored in the equality-index cache when a column contains NaN
#: (whose SQL comparison semantics cannot be represented by hashing).
_UNINDEXABLE = object()


class Table:
    """An immutable, ordered collection of rows with named columns."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[SqlValue]],
    ) -> None:
        self.name = name
        self.column_names = [str(c) for c in columns]
        lowered = [c.lower() for c in self.column_names]
        if len(set(lowered)) != len(lowered):
            raise PlanError(f"duplicate column names in table {name!r}")
        width = len(self.column_names)
        # Fast path: a list whose elements are already tuples is adopted
        # without the tuple-by-tuple copy the old constructor always paid
        # (dataset generators build exactly this shape).
        if isinstance(rows, list) and all(type(r) is tuple for r in rows):
            row_list: list[tuple[SqlValue, ...]] = rows
        else:
            row_list = [tuple(row) for row in rows]
        for row_tuple in row_list:
            if len(row_tuple) != width:
                raise PlanError(
                    f"row width {len(row_tuple)} does not match "
                    f"{width} columns in table {name!r}"
                )
        self._rows: list[tuple[SqlValue, ...]] | None = row_list
        self._arrays: list[list[SqlValue]] | None = None
        self._row_count = len(row_list)
        self._finish_init()

    def _finish_init(self) -> None:
        self._index = {
            c.lower(): i for i, c in enumerate(self.column_names)
        }
        self._columns_cache: tuple[Column, ...] | None = None
        self._unique_cache: dict[str, tuple[SqlValue, ...]] = {}
        self._equality_indexes: dict[str, object] = {}
        self._null_cache: dict[str, bool] = {}
        self._content_fingerprint: str | None = None
        self._stats_cache: object | None = None

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Sequence[str],
        arrays: Sequence[Sequence[SqlValue]],
    ) -> "Table":
        """Build a table directly from column value arrays.

        Skips the row pivot entirely: generators that naturally produce
        one list per column (and the vectorized engine, whose
        intermediate results already live column-wise) store their arrays
        as-is. The ``rows`` tuple view is pivoted lazily if anything ever
        asks for it.
        """
        table = cls.__new__(cls)
        table.name = name
        table.column_names = [str(c) for c in columns]
        lowered = [c.lower() for c in table.column_names]
        if len(set(lowered)) != len(lowered):
            raise PlanError(f"duplicate column names in table {name!r}")
        column_arrays = [list(a) for a in arrays]
        if len(column_arrays) != len(table.column_names):
            raise PlanError(
                f"{len(column_arrays)} arrays do not match "
                f"{len(table.column_names)} columns in table {name!r}"
            )
        lengths = {len(a) for a in column_arrays}
        if len(lengths) > 1:
            raise PlanError(
                f"column arrays of unequal length in table {name!r}"
            )
        table._rows = None
        table._arrays = column_arrays
        table._row_count = lengths.pop() if lengths else 0
        table._finish_init()
        return table

    @property
    def rows(self) -> list[tuple[SqlValue, ...]]:
        """Row tuples, in order (memoized compatibility view).

        Tables built from rows keep their original list; tables built
        from columns pivot once, on first access.
        """
        if self._rows is None:
            assert self._arrays is not None
            self._rows = (
                list(zip(*self._arrays)) if self._row_count else []
            )
        return self._rows

    def column_array(self, position: int) -> list[SqlValue]:
        """One column's values as a flat array (internal to sqlengine).

        This is the vectorized executor's scan primitive: batch operators
        iterate these arrays directly instead of indexing row tuples.
        Callers must treat the returned list as read-only — it is the
        table's storage, not a copy. Code outside ``repro/sqlengine``
        must use the rows-view API instead (enforced by
        ``tools/check_invariants.py``).
        """
        if self._arrays is None:
            assert self._rows is not None
            self._arrays = [
                list(column) for column in zip(*self._rows)
            ] if self._rows else [[] for _ in self.column_names]
        return self._arrays[position]

    def __len__(self) -> int:
        return self._row_count

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {len(self.column_names)} cols, "
            f"{self._row_count} rows)"
        )

    def has_column(self, name: str) -> bool:
        """Return True when a column with this (case-insensitive) name exists."""
        return name.lower() in self._index

    def column_position(self, name: str) -> int:
        """Return the positional index of a column, raising on misses."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise PlanError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None

    def column_values(self, name: str) -> list[SqlValue]:
        """Return all values of one column, in row order (a fresh list)."""
        return list(self.column_array(self.column_position(name)))

    def unique_column_values(self, name: str) -> list[SqlValue]:
        """Return distinct values of one column, preserving first-seen order.

        This backs the agent's ``unique_column_values`` tool (Section 5.3),
        which lets the LLM discover the exact constants stored in the data
        (e.g. ``'USA'`` rather than ``'United States'``). Memoized: the tool
        is called repeatedly for the same column across agent retries.
        """
        key = name.lower()
        cached = self._unique_cache.get(key)
        if cached is None:
            seen: set[SqlValue] = set()
            unique: list[SqlValue] = []
            for value in self.column_array(self.column_position(name)):
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            cached = tuple(unique)
            self._unique_cache[key] = cached
        return list(cached)

    def column_has_nulls(self, name: str) -> bool:
        """True when any stored value of the column is NULL (memoized).

        The static analyzer uses this nullability fact to decide whether
        an expression over the column is provably non-NULL — the
        evaluator short-circuits NULLs before most type checks, so only
        provably non-NULL operands can make a type error certain.
        """
        key = name.lower()
        cached = self._null_cache.get(key)
        if cached is None:
            array = self.column_array(self.column_position(name))
            cached = any(value is None for value in array)
            self._null_cache[key] = cached
        return cached

    def columns(self) -> list[Column]:
        """Return columns with inferred display types (memoized)."""
        if self._columns_cache is None:
            self._columns_cache = tuple(
                Column(name, infer_column_type(self.column_values(name)))
                for name in self.column_names
            )
        return list(self._columns_cache)

    def equality_rows(self, name: str, value: SqlValue) -> list[int] | None:
        """Row indices (ascending) whose ``name`` column SQL-equals ``value``.

        Backed by a lazily built per-column hash index whose keys follow
        :func:`equality_key`, i.e. exactly the equality classes of
        ``compare_values``. Returns None when the index cannot honour those
        semantics (NaN in the column or in the probe value) — callers must
        then fall back to a plain predicate scan. NULLs never match.
        """
        key = name.lower()
        index = self._equality_indexes.get(key)
        if index is None:
            array = self.column_array(self.column_position(name))
            built: dict[tuple, list[int]] = {}
            for i, cell in enumerate(array):
                if cell is None:
                    continue
                cell_key = equality_key(cell)
                if cell_key is None:
                    built = None  # type: ignore[assignment]
                    break
                built.setdefault(cell_key, []).append(i)
            index = built if built is not None else _UNINDEXABLE
            self._equality_indexes[key] = index
        if index is _UNINDEXABLE:
            return None
        probe = equality_key(value)
        if probe is None:
            return None
        return index.get(probe, [])  # type: ignore[union-attr]

    def head(self, limit: int = 3) -> list[tuple[SqlValue, ...]]:
        """Return the first ``limit`` rows (used for prompt samples)."""
        return self.rows[:limit]

    def content_fingerprint(self) -> str:
        """A sha256 over name, columns, and rows (memoized).

        Unlike :meth:`Database.fingerprint`, this depends only on the
        stored data: two processes that build identical tables compute
        identical fingerprints, which is what lets the persistent
        query-result cache serve across restarts. JSON's float rendering
        round-trips exactly, so the hash distinguishes every distinct
        ``SqlValue``. Tables are immutable, so one hash per table.
        """
        if self._content_fingerprint is None:
            payload = json.dumps(
                [self.name, self.column_names,
                 [list(row) for row in self.rows]],
                separators=(",", ":"), ensure_ascii=False,
            )
            self._content_fingerprint = hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest()
        return self._content_fingerprint


#: Process-unique creation tokens for Database fingerprints. ``id()`` is
#: unsuitable (addresses are recycled, which would let a dead database's
#: cached results leak into a new one); a monotone counter is not.
_DATABASE_TOKENS = itertools.count(1)


@dataclass
class Database:
    """A named set of tables with case-insensitive lookup."""

    name: str = "db"
    _tables: dict[str, Table] = field(default_factory=dict)
    _token: int = field(
        default_factory=lambda: next(_DATABASE_TOKENS),
        repr=False,
        compare=False,
    )
    _version: int = field(default=0, repr=False, compare=False)
    _content_fp: str | None = field(default=None, repr=False, compare=False)
    _content_fp_version: int = field(
        default=-1, repr=False, compare=False,
    )

    def add(self, table: Table) -> None:
        """Register a table, replacing any same-named table."""
        self._tables[table.name.lower()] = table
        self._version += 1

    def fingerprint(self) -> tuple[int, int]:
        """A (token, version) pair identifying this exact database state.

        The token is unique per constructed Database; the version bumps on
        every ``add``. Query-result cache entries key on the fingerprint,
        so mutating the database silently invalidates them.
        """
        return (self._token, self._version)

    def content_fingerprint(self) -> str:
        """A content hash of every table, stable across processes.

        This is the persistent cache's key ingredient: where
        :meth:`fingerprint` identifies *this object's* state (its token
        restarts with the process), the content fingerprint is equal for
        any two databases holding identical data — including one rebuilt
        by a seeded generator in a fresh process. Memoized per
        ``_version``, so mutation invalidates it exactly like the cheap
        fingerprint. The database *name* is deliberately excluded: query
        results depend only on the data.
        """
        if self._content_fp is None or self._content_fp_version != (
            self._version
        ):
            hasher = hashlib.sha256()
            for key in sorted(self._tables):
                hasher.update(
                    self._tables[key].content_fingerprint().encode("ascii")
                )
            self._content_fp = hasher.hexdigest()
            self._content_fp_version = self._version
        return self._content_fp

    def __deepcopy__(self, memo: dict) -> "Database":
        # A copy must get its own token: it starts identical but mutates
        # independently, and sharing (token, version) coordinates would let
        # the two databases poison each other's cached query results.
        clone = Database(self.name)
        memo[id(self)] = clone  # lint: allow-id-key (deepcopy protocol)
        clone._tables = {
            key: deepcopy(table, memo) for key, table in self._tables.items()
        }
        clone._version = self._version
        return clone

    def table(self, name: str) -> Table:
        """Look up a table by name, raising :class:`PlanError` on misses."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise PlanError(
                f"no table {name!r} in database {self.name!r} "
                f"(tables: {', '.join(sorted(self._tables))})"
            ) from None

    def has_table(self, name: str) -> bool:
        """Return True when the database contains this table."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """Return the original-cased table names, sorted."""
        return sorted(t.name for t in self._tables.values())

    def tables(self) -> list[Table]:
        """Return all tables, sorted by name."""
        return [self._tables[k] for k in sorted(self._tables)]

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_table(name)
