"""In-memory relational tables and databases.

A :class:`Table` is a named list of columns plus row tuples; a
:class:`Database` is a case-insensitive collection of tables. These are the
storage substrate under the SQL executor and are also used directly by the
dataset generators and by the agent's ``unique_column_values`` tool.

Tables are immutable once constructed, which lets them memoize derived
views that used to be recomputed on every prompt render or tool call:
inferred column types, first-seen-order distinct values, and lazy equality
indexes used by the optimized executor for ``col = literal`` scans.
Databases are mutable (``add`` replaces tables) and therefore carry a
``fingerprint()`` — a (creation token, mutation version) pair — that the
query-result cache keys on so stale results can never be served.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Iterable, Sequence
from copy import deepcopy
from dataclasses import dataclass, field

from .errors import PlanError
from .values import SqlValue, equality_key, infer_column_type


@dataclass(frozen=True)
class Column:
    """A column with a name and an inferred display type."""

    name: str
    type_name: str = "TEXT"


#: Sentinel stored in the equality-index cache when a column contains NaN
#: (whose SQL comparison semantics cannot be represented by hashing).
_UNINDEXABLE = object()


class Table:
    """An immutable, ordered collection of rows with named columns."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[SqlValue]],
    ) -> None:
        self.name = name
        self.column_names = [str(c) for c in columns]
        lowered = [c.lower() for c in self.column_names]
        if len(set(lowered)) != len(lowered):
            raise PlanError(f"duplicate column names in table {name!r}")
        self.rows: list[tuple[SqlValue, ...]] = []
        width = len(self.column_names)
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise PlanError(
                    f"row width {len(row_tuple)} does not match "
                    f"{width} columns in table {name!r}"
                )
            self.rows.append(row_tuple)
        self._index = {c.lower(): i for i, c in enumerate(self.column_names)}
        self._columns_cache: tuple[Column, ...] | None = None
        self._unique_cache: dict[str, tuple[SqlValue, ...]] = {}
        self._equality_indexes: dict[str, object] = {}
        self._null_cache: dict[str, bool] = {}
        self._content_fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {len(self.column_names)} cols, "
            f"{len(self.rows)} rows)"
        )

    def has_column(self, name: str) -> bool:
        """Return True when a column with this (case-insensitive) name exists."""
        return name.lower() in self._index

    def column_position(self, name: str) -> int:
        """Return the positional index of a column, raising on misses."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise PlanError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None

    def column_values(self, name: str) -> list[SqlValue]:
        """Return all values of one column, in row order."""
        position = self.column_position(name)
        return [row[position] for row in self.rows]

    def unique_column_values(self, name: str) -> list[SqlValue]:
        """Return distinct values of one column, preserving first-seen order.

        This backs the agent's ``unique_column_values`` tool (Section 5.3),
        which lets the LLM discover the exact constants stored in the data
        (e.g. ``'USA'`` rather than ``'United States'``). Memoized: the tool
        is called repeatedly for the same column across agent retries.
        """
        key = name.lower()
        cached = self._unique_cache.get(key)
        if cached is None:
            seen: set[SqlValue] = set()
            unique: list[SqlValue] = []
            for value in self.column_values(name):
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            cached = tuple(unique)
            self._unique_cache[key] = cached
        return list(cached)

    def column_has_nulls(self, name: str) -> bool:
        """True when any stored value of the column is NULL (memoized).

        The static analyzer uses this nullability fact to decide whether
        an expression over the column is provably non-NULL — the
        evaluator short-circuits NULLs before most type checks, so only
        provably non-NULL operands can make a type error certain.
        """
        key = name.lower()
        cached = self._null_cache.get(key)
        if cached is None:
            position = self.column_position(name)
            cached = any(row[position] is None for row in self.rows)
            self._null_cache[key] = cached
        return cached

    def columns(self) -> list[Column]:
        """Return columns with inferred display types (memoized)."""
        if self._columns_cache is None:
            self._columns_cache = tuple(
                Column(name, infer_column_type(self.column_values(name)))
                for name in self.column_names
            )
        return list(self._columns_cache)

    def equality_rows(self, name: str, value: SqlValue) -> list[int] | None:
        """Row indices (ascending) whose ``name`` column SQL-equals ``value``.

        Backed by a lazily built per-column hash index whose keys follow
        :func:`equality_key`, i.e. exactly the equality classes of
        ``compare_values``. Returns None when the index cannot honour those
        semantics (NaN in the column or in the probe value) — callers must
        then fall back to a plain predicate scan. NULLs never match.
        """
        key = name.lower()
        index = self._equality_indexes.get(key)
        if index is None:
            position = self.column_position(name)
            built: dict[tuple, list[int]] = {}
            for i, row in enumerate(self.rows):
                cell = row[position]
                if cell is None:
                    continue
                cell_key = equality_key(cell)
                if cell_key is None:
                    built = None  # type: ignore[assignment]
                    break
                built.setdefault(cell_key, []).append(i)
            index = built if built is not None else _UNINDEXABLE
            self._equality_indexes[key] = index
        if index is _UNINDEXABLE:
            return None
        probe = equality_key(value)
        if probe is None:
            return None
        return index.get(probe, [])  # type: ignore[union-attr]

    def head(self, limit: int = 3) -> list[tuple[SqlValue, ...]]:
        """Return the first ``limit`` rows (used for prompt samples)."""
        return self.rows[:limit]

    def content_fingerprint(self) -> str:
        """A sha256 over name, columns, and rows (memoized).

        Unlike :meth:`Database.fingerprint`, this depends only on the
        stored data: two processes that build identical tables compute
        identical fingerprints, which is what lets the persistent
        query-result cache serve across restarts. JSON's float rendering
        round-trips exactly, so the hash distinguishes every distinct
        ``SqlValue``. Tables are immutable, so one hash per table.
        """
        if self._content_fingerprint is None:
            payload = json.dumps(
                [self.name, self.column_names,
                 [list(row) for row in self.rows]],
                separators=(",", ":"), ensure_ascii=False,
            )
            self._content_fingerprint = hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest()
        return self._content_fingerprint


#: Process-unique creation tokens for Database fingerprints. ``id()`` is
#: unsuitable (addresses are recycled, which would let a dead database's
#: cached results leak into a new one); a monotone counter is not.
_DATABASE_TOKENS = itertools.count(1)


@dataclass
class Database:
    """A named set of tables with case-insensitive lookup."""

    name: str = "db"
    _tables: dict[str, Table] = field(default_factory=dict)
    _token: int = field(
        default_factory=lambda: next(_DATABASE_TOKENS),
        repr=False,
        compare=False,
    )
    _version: int = field(default=0, repr=False, compare=False)
    _content_fp: str | None = field(default=None, repr=False, compare=False)
    _content_fp_version: int = field(
        default=-1, repr=False, compare=False,
    )

    def add(self, table: Table) -> None:
        """Register a table, replacing any same-named table."""
        self._tables[table.name.lower()] = table
        self._version += 1

    def fingerprint(self) -> tuple[int, int]:
        """A (token, version) pair identifying this exact database state.

        The token is unique per constructed Database; the version bumps on
        every ``add``. Query-result cache entries key on the fingerprint,
        so mutating the database silently invalidates them.
        """
        return (self._token, self._version)

    def content_fingerprint(self) -> str:
        """A content hash of every table, stable across processes.

        This is the persistent cache's key ingredient: where
        :meth:`fingerprint` identifies *this object's* state (its token
        restarts with the process), the content fingerprint is equal for
        any two databases holding identical data — including one rebuilt
        by a seeded generator in a fresh process. Memoized per
        ``_version``, so mutation invalidates it exactly like the cheap
        fingerprint. The database *name* is deliberately excluded: query
        results depend only on the data.
        """
        if self._content_fp is None or self._content_fp_version != (
            self._version
        ):
            hasher = hashlib.sha256()
            for key in sorted(self._tables):
                hasher.update(
                    self._tables[key].content_fingerprint().encode("ascii")
                )
            self._content_fp = hasher.hexdigest()
            self._content_fp_version = self._version
        return self._content_fp

    def __deepcopy__(self, memo: dict) -> "Database":
        # A copy must get its own token: it starts identical but mutates
        # independently, and sharing (token, version) coordinates would let
        # the two databases poison each other's cached query results.
        clone = Database(self.name)
        memo[id(self)] = clone
        clone._tables = {
            key: deepcopy(table, memo) for key, table in self._tables.items()
        }
        clone._version = self._version
        return clone

    def table(self, name: str) -> Table:
        """Look up a table by name, raising :class:`PlanError` on misses."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise PlanError(
                f"no table {name!r} in database {self.name!r} "
                f"(tables: {', '.join(sorted(self._tables))})"
            ) from None

    def has_table(self, name: str) -> bool:
        """Return True when the database contains this table."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """Return the original-cased table names, sorted."""
        return sorted(t.name for t in self._tables.values())

    def tables(self) -> list[Table]:
        """Return all tables, sorted by name."""
        return [self._tables[k] for k in sorted(self._tables)]

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_table(name)
