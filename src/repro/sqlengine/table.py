"""In-memory relational tables and databases.

A :class:`Table` is a named list of columns plus row tuples; a
:class:`Database` is a case-insensitive collection of tables. These are the
storage substrate under the SQL executor and are also used directly by the
dataset generators and by the agent's ``unique_column_values`` tool.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from .errors import PlanError
from .values import SqlValue, infer_column_type


@dataclass(frozen=True)
class Column:
    """A column with a name and an inferred display type."""

    name: str
    type_name: str = "TEXT"


class Table:
    """An immutable, ordered collection of rows with named columns."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[SqlValue]],
    ) -> None:
        self.name = name
        self.column_names = [str(c) for c in columns]
        lowered = [c.lower() for c in self.column_names]
        if len(set(lowered)) != len(lowered):
            raise PlanError(f"duplicate column names in table {name!r}")
        self.rows: list[tuple[SqlValue, ...]] = []
        width = len(self.column_names)
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise PlanError(
                    f"row width {len(row_tuple)} does not match "
                    f"{width} columns in table {name!r}"
                )
            self.rows.append(row_tuple)
        self._index = {c.lower(): i for i, c in enumerate(self.column_names)}

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {len(self.column_names)} cols, "
            f"{len(self.rows)} rows)"
        )

    def has_column(self, name: str) -> bool:
        """Return True when a column with this (case-insensitive) name exists."""
        return name.lower() in self._index

    def column_position(self, name: str) -> int:
        """Return the positional index of a column, raising on misses."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise PlanError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None

    def column_values(self, name: str) -> list[SqlValue]:
        """Return all values of one column, in row order."""
        position = self.column_position(name)
        return [row[position] for row in self.rows]

    def unique_column_values(self, name: str) -> list[SqlValue]:
        """Return distinct values of one column, preserving first-seen order.

        This backs the agent's ``unique_column_values`` tool (Section 5.3),
        which lets the LLM discover the exact constants stored in the data
        (e.g. ``'USA'`` rather than ``'United States'``).
        """
        seen: set[SqlValue] = set()
        unique: list[SqlValue] = []
        for value in self.column_values(name):
            if value not in seen:
                seen.add(value)
                unique.append(value)
        return unique

    def columns(self) -> list[Column]:
        """Return columns with inferred display types."""
        return [
            Column(name, infer_column_type(self.column_values(name)))
            for name in self.column_names
        ]

    def head(self, limit: int = 3) -> list[tuple[SqlValue, ...]]:
        """Return the first ``limit`` rows (used for prompt samples)."""
        return self.rows[:limit]


@dataclass
class Database:
    """A named set of tables with case-insensitive lookup."""

    name: str = "db"
    _tables: dict[str, Table] = field(default_factory=dict)

    def add(self, table: Table) -> None:
        """Register a table, replacing any same-named table."""
        self._tables[table.name.lower()] = table

    def table(self, name: str) -> Table:
        """Look up a table by name, raising :class:`PlanError` on misses."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise PlanError(
                f"no table {name!r} in database {self.name!r} "
                f"(tables: {', '.join(sorted(self._tables))})"
            ) from None

    def has_table(self, name: str) -> bool:
        """Return True when the database contains this table."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """Return the original-cased table names, sorted."""
        return sorted(t.name for t in self._tables.values())

    def tables(self) -> list[Table]:
        """Return all tables, sorted by name."""
        return [self._tables[k] for k in sorted(self._tables)]

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_table(name)
