"""Query reconstruction from agent traces (paper Section 5.4, Algorithm 9).

The agent often pieces a claim together across several queries: it first
queries an intermediate value (``SELECT MAX("Wins") FROM table`` → 105),
then issues a trivial final query with that constant inlined
(``SELECT "Driver" FROM table WHERE "Wins" = 105``). The trivial query does
not represent the claim's semantics on its own, so this stage recursively
substitutes constants in later queries with the earlier queries that
produced them, yielding one self-contained SQL statement.
"""

from __future__ import annotations

import re

from repro.sqlengine import Database, Engine, engine_for
from repro.sqlengine.analyzer import analyze_sql, record_rejection
from repro.sqlengine.ast_nodes import quote_string
from repro.sqlengine.errors import SqlError
from repro.sqlengine.values import SqlValue, coerce_numeric

from .claims import round_to_precision

_NUMBER_IN_TOKEN = re.compile(r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?")


def reconstruct(
    query_list: list[str], database: Database, *, analyze: bool = True
) -> str:
    """Algorithm 9: merge an agent's query list into a single query.

    Queries must be in issue order. Constants in *later* queries that match
    the result of an *earlier* query are replaced by that query as a
    parenthesised sub-query (the agent can only have derived constants from
    queries it already ran). The last query — after all substitutions — is
    the reconstruction.

    With ``analyze`` on, statically invalid intermediate queries are
    skipped without executing (an analyzer error is a guaranteed runtime
    error, so the outcome is the same ``None`` the execution would have
    produced), and a reconstruction that the analyzer proves broken —
    textual substitution can corrupt a query, e.g. a constant sitting
    inside a quoted literal — falls back to the agent's own final query
    when that one is statically sound.
    """
    if not query_list:
        raise ValueError("cannot reconstruct from an empty query list")
    remaining = list(query_list)
    engine = engine_for(database)
    while len(remaining) > 1:
        current = remaining.pop(0)
        result = _try_single_cell(engine, current, analyze)
        if result is None:
            continue
        for index, query in enumerate(remaining):
            substituted = _substitute(query, current, result)
            if substituted is not None:
                remaining[index] = substituted
    reconstructed = remaining[0]
    if analyze and reconstructed != query_list[-1]:
        if analyze_sql(reconstructed, database).errors and \
                not analyze_sql(query_list[-1], database).errors:
            record_rejection()
            return query_list[-1]
    return reconstructed


def _try_single_cell(
    engine: Engine, sql: str, analyze: bool = True
) -> SqlValue | None:
    if analyze and analyze_sql(sql, engine.database).errors:
        record_rejection()
        return None
    try:
        return engine.execute(sql).first_cell()
    except SqlError:
        return None


def _substitute(query: str, sub_query: str, result: SqlValue) -> str | None:
    """Replace the constant in ``query`` matching ``result``, if any.

    Numeric results replace the whitespace-delimited numeric term with
    minimal absolute distance, provided the result rounds to that term
    (Algorithm 9's tie-break). String results replace the quoted literal.
    Returns None when no substitution applies.
    """
    number = coerce_numeric(result)
    if number is not None and not isinstance(result, str):
        return _substitute_number(query, sub_query, float(number))
    if isinstance(result, str):
        literal = quote_string(result)
        if literal in query:
            return query.replace(literal, f"({sub_query})", 1)
        return None
    return None


def _substitute_number(
    query: str, sub_query: str, result: float
) -> str | None:
    best: tuple[float, int, re.Match] | None = None
    for token_index, token in enumerate(query.split()):
        match = _NUMBER_IN_TOKEN.search(token)
        if match is None:
            continue
        try:
            value = float(match.group(0))
        except ValueError:
            continue
        distance = abs(value - result)
        if best is None or distance < best[0]:
            best = (distance, token_index, match)
    if best is None:
        return None
    _, token_index, match = best
    term_text = match.group(0)
    if not _rounds_to(result, term_text):
        return None
    tokens = query.split()
    token = tokens[token_index]
    tokens[token_index] = (
        token[: match.start()] + f"({sub_query})" + token[match.end():]
    )
    return " ".join(tokens)


def _rounds_to(result: float, term_text: str) -> bool:
    """Check whether the query result rounds to the written term."""
    precision = len(term_text.split(".", 1)[1]) if "." in term_text else 0
    try:
        term_value = float(term_text)
    except ValueError:
        return False
    return float(round_to_precision(result, precision)) == term_value
