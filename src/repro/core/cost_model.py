"""Cost and quality model for verification schedules (paper Section 6.2).

A schedule is a sequence of stages, each pairing a verification method
(identified by name) with a try count. Per-method accuracy ``A`` and cost
``C`` come from profiling. Under the paper's independence assumptions
(Assumptions 1 and 2):

* expected cost (Theorem 6.1):  C(v) = Σᵢ C(vᵢ) · Πⱼ<ᵢ (1 − A(vⱼ))
* accuracy (Theorem 6.2):       A(v) = 1 − Πᵢ (1 − A(vᵢ))

where the schedule is expanded so each try is one component.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MethodProfile:
    """Profiled statistics of one verification method."""

    name: str
    accuracy: float          # success probability per try, A(v)
    cost: float              # expected dollars per try, C(v)
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy {self.accuracy} out of [0, 1]")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")


@dataclass(frozen=True)
class PlannedStage:
    """One stage of a planned schedule: method name and number of tries."""

    method_name: str
    tries: int

    def __post_init__(self) -> None:
        if self.tries < 0:
            raise ValueError("tries must be non-negative")


PlannedSchedule = tuple[PlannedStage, ...]


def expand_tries(
    schedule: PlannedSchedule, profiles: dict[str, MethodProfile]
) -> list[MethodProfile]:
    """Flatten a schedule into one profile per individual try."""
    expanded: list[MethodProfile] = []
    for stage in schedule:
        profile = profiles[stage.method_name]
        expanded.extend([profile] * stage.tries)
    return expanded


def schedule_cost(
    schedule: PlannedSchedule, profiles: dict[str, MethodProfile]
) -> float:
    """Expected cost per claim (Theorem 6.1)."""
    expected = 0.0
    failure_mass = 1.0
    for profile in expand_tries(schedule, profiles):
        expected += profile.cost * failure_mass
        failure_mass *= 1.0 - profile.accuracy
    return expected


def schedule_accuracy(
    schedule: PlannedSchedule, profiles: dict[str, MethodProfile]
) -> float:
    """Probability that at least one try succeeds (Theorem 6.2)."""
    return 1.0 - schedule_failure_probability(schedule, profiles)


def schedule_failure_probability(
    schedule: PlannedSchedule, profiles: dict[str, MethodProfile]
) -> float:
    """Probability that every try fails."""
    failure_mass = 1.0
    for profile in expand_tries(schedule, profiles):
        failure_mass *= 1.0 - profile.accuracy
    return failure_mass


def expected_latency(
    schedule: PlannedSchedule, profiles: dict[str, MethodProfile]
) -> float:
    """Expected verification latency per claim, mirroring Theorem 6.1.

    Latency accrues exactly when a stage runs, i.e. when all prior tries
    failed — the same structure as the cost expectation.
    """
    expected = 0.0
    failure_mass = 1.0
    for profile in expand_tries(schedule, profiles):
        expected += profile.latency_seconds * failure_mass
        failure_mass *= 1.0 - profile.accuracy
    return expected


def distinct_methods_used(schedule: PlannedSchedule) -> int:
    """Number of different methods with a non-zero try budget.

    SelectSchedule prefers diversity (Section 6.4): the independence
    assumption overstates the value of retrying one method, so among
    equally acceptable schedules CEDAR picks the one exercising the most
    distinct methods.
    """
    return len({s.method_name for s in schedule if s.tries > 0})


def describe_schedule(schedule: PlannedSchedule) -> str:
    """Human-readable one-liner, e.g. 'one_shot[gpt-3.5-turbo]x2 -> ...'."""
    stages = [
        f"{stage.method_name}x{stage.tries}"
        for stage in schedule
        if stage.tries > 0
    ]
    return " -> ".join(stages) if stages else "(empty)"
