"""Concurrent verification executor.

``MultiStageVerifier`` runs Algorithm 1 strictly sequentially. Per-claim
work is embarrassingly parallel across documents (each document carries
its own database, sample, and remaining-claims set), and within a
document every claim is independent once Algorithm 2's first-sample
harvest point has passed — the paper's cost model (Theorems 6.1-6.2)
already treats every try as an independent trial. ``ParallelVerifier``
exploits exactly those two axes:

* **documents** fan out over a worker pool;
* **post-harvest claims** of each document fan out over a second pool
  (two pools so a document task waiting on its claim tasks can never
  deadlock the workers the claim tasks need).

Correctness contract: with a fixed seed and caching disabled, a parallel
run produces the *identical* per-claim verdicts and the identical ledger
entries as a sequential run. Three mechanisms make that hold:

1. the simulated model seeds retry draws per claim, not per client, so a
   claim's outcome does not depend on the interleaving of other claims;
2. each worker records into a private sub-ledger
   (:meth:`~repro.llm.ledger.CostLedger.capture`) that is merged back in
   submission order once the worker joins;
3. the harvest pass itself stays sequential — its early return is
   order-defined.

The module also hosts :func:`verify`, the package's front door.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

from repro.llm.ledger import LedgerDelta
from repro.obs.tracer import SpanDelta
from repro.sqlengine import Database

from .claims import Claim, Document
from .methods import Sample, VerificationMethod
from .pipeline import (
    ClaimReport,
    MultiStageVerifier,
    ScheduleEntry,
    VerificationObserver,
    VerificationRun,
    VerifierConfig,
)


class ParallelVerifier(MultiStageVerifier):
    """Algorithm 1 over a thread pool; sequential when ``workers == 1``."""

    def _execute(
        self,
        documents: list[Document],
        schedule: list[ScheduleEntry],
        run: VerificationRun,
    ) -> None:
        if self.config.workers <= 1 or not documents:
            super()._execute(documents, schedule, run)
            return
        workers = self.config.workers
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cedar-doc"
        ) as documents_pool, ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cedar-claim"
        ) as claims_pool:
            self._claims_pool: ThreadPoolExecutor | None = claims_pool
            try:
                futures: list[Future] = [
                    documents_pool.submit(self._document_task, doc, schedule)
                    for doc in documents
                ]
                # Merge in submission order: the ledger ends up with the
                # same entry sequence — and the tracer with the same span
                # forest — a sequential run would have written.
                for future in futures:
                    reports, delta, spans = future.result()
                    run.reports.update(reports)
                    self.ledger.absorb(delta)
                    self.tracer.absorb(spans)
            finally:
                self._claims_pool = None

    def _document_task(
        self, document: Document, schedule: list[ScheduleEntry]
    ) -> tuple[dict[str, ClaimReport], LedgerDelta, SpanDelta]:
        """Verify one document into private report/ledger/span state."""
        local = VerificationRun([document])
        tracer = self.tracer
        with self.ledger.capture() as delta, \
                tracer.capture() as spans, \
                self.ledger.tagged(f"doc:{document.doc_id}"), \
                tracer.span(
                    document.doc_id, "document",
                    doc_id=document.doc_id, claims=len(document.claims),
                ):
            self._verify_document(document, schedule, local)
        return local.reports, delta, spans

    def _run_batch_independent(
        self,
        method: VerificationMethod,
        claims: list[Claim],
        sample: Sample | None,
        database: Database,
        run: VerificationRun,
    ) -> list[Claim]:
        pool = getattr(self, "_claims_pool", None)
        if pool is None or len(claims) <= 1:
            return super()._run_batch_independent(
                method, claims, sample, database, run
            )
        # Snapshot the document worker's tags (doc:…) so claim tasks on
        # pool threads attribute their calls identically to inline runs.
        tags = self.ledger.current_tags()
        tracer = self.tracer

        def attempt(claim: Claim) -> tuple[bool, LedgerDelta, SpanDelta]:
            with self.ledger.capture() as delta, self.ledger.scoped(tags), \
                    tracer.capture() as spans:
                verified = self._attempt_claim(
                    method, claim, sample, database,
                    run.reports[claim.claim_id],
                )
            return verified, delta, spans

        results = list(pool.map(attempt, claims))
        verified_claims: list[Claim] = []
        for claim, (verified, delta, spans) in zip(claims, results):
            # Absorbed on the document thread in claim order, into the
            # document's own capture buffer (spans graft under the open
            # stage span, exactly where a sequential run put them).
            self.ledger.absorb(delta)
            tracer.absorb(spans)
            if verified:
                verified_claims.append(claim)
        return verified_claims


def verify(
    documents: list[Document] | Document,
    database: Database | None = None,
    *,
    schedule: list[ScheduleEntry],
    config: VerifierConfig | None = None,
    observer: VerificationObserver | None = None,
) -> VerificationRun:
    """Verify documents against their data: the package's front door.

    Accepts one document or a list. ``database`` is optional — documents
    normally carry their own :class:`~repro.sqlengine.Database`; passing
    one here overrides it for every document (the common case when many
    articles reference a single dataset). The ``config`` selects the
    execution strategy: ``workers=1`` (default) runs the classic
    sequential Algorithm 1, ``workers>1`` fans out over threads, and the
    cache/retry settings apply to either. An ``observer``
    (:class:`~repro.core.pipeline.VerificationObserver`) receives
    streaming progress callbacks — stage starts and per-claim verdicts —
    as the run advances; ``repro.service`` uses this hook to stream
    events to clients while a batch is still in flight.

    Returns the :class:`VerificationRun`; the verifier (with its ledger
    and cache stats) is attached as ``run.verifier`` for inspection::

        run = repro.verify(docs, schedule=schedule,
                           config=VerifierConfig(workers=4, cache_size=512))
        print(run.verifier.ledger.total_cost)
    """
    if isinstance(documents, Document):
        documents = [documents]
    documents = list(documents)
    if database is not None:
        for document in documents:
            document.data = database
    config = config if config is not None else VerifierConfig()
    verifier = ParallelVerifier(config)
    run = verifier.verify_documents(documents, schedule, observer=observer)
    run.verifier = verifier
    return run
