"""Verification method abstraction (paper Section 5).

A verification method translates one masked claim into an SQL query using
an LLM. CEDAR instantiates several methods (one-shot and agent-based, each
with several model tiers) and schedules them by cost and accuracy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.llm.base import LLMClient
from repro.sqlengine import Database, QueryAnalysis, SqlValue

from .masking import MaskedClaim


@dataclass(frozen=True)
class Sample:
    """A successfully translated claim, used for few-shot prompting.

    CEDAR harvests these at verification time (Algorithm 1): the first
    claim a method verifies in a document becomes the sample for the
    remaining claims of that document.
    """

    masked_sentence: str
    query_sql: str


@dataclass
class TranslationResult:
    """Outcome of one translation attempt."""

    query: str | None
    response_text: str = ""
    issued_queries: list[str] = field(default_factory=list)
    trace_text: str = ""
    #: Static analysis of ``query`` (attached by methods with the
    #: analyzer enabled; None when analysis is off or no query emerged).
    analysis: QueryAnalysis | None = None


class VerificationMethod(ABC):
    """One claim-to-SQL translation strategy bound to one LLM."""

    #: Temperature used on retries (the first attempt always runs at 0;
    #: Section 7.1: 0.25 for one-shot retries, 0.5 for agent retries).
    retry_temperature: float = 0.25

    #: Static SQL analyzer gate for the surfaces the method itself owns
    #: (the agent's querying tool, Algorithm 9 reconstruction). The
    #: verifier copies :attr:`VerifierConfig.analyze_sql` onto method
    #: copies when instrumenting a schedule.
    analyze_sql: bool = True

    def __init__(self, client: LLMClient, name: str | None = None) -> None:
        self.client = client
        self.name = name or f"{self.kind}[{client.model_name}]"

    @property
    @abstractmethod
    def kind(self) -> str:
        """Either ``"one_shot"`` or ``"agent"``."""

    @abstractmethod
    def translate(
        self,
        masked: MaskedClaim,
        value_type: str,
        claim_value: SqlValue,
        claim_value_text: str,
        database: Database,
        sample: Sample | None,
        temperature: float,
    ) -> TranslationResult:
        """Translate a masked claim into SQL.

        ``claim_value`` is available to the *method* (it drives the agent's
        feedback tool) but must never be placed in any prompt — that is the
        Figure 2 cheat the masking stage exists to prevent.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def render_sample(sample: Sample | None) -> str:
    """Render the few-shot sample block of the Figure 3 prompt (Table 1)."""
    if sample is None:
        return ""
    return (
        f'For example, given the claim "{sample.masked_sentence}", to find '
        f'the value for "x", generated SQL query would be '
        f'"{sample.query_sql}".'
    )
