"""Human-readable and machine-readable verification reports.

The demo paper's user-facing output is an annotated document: each claim
marked up with its verdict and the SQL evidence. This module renders a
:class:`~repro.core.pipeline.VerificationRun` as markdown (for people)
or as plain dictionaries (for JSON export / downstream tooling). The
single-claim renderer :func:`claim_record` is also what the service
layer serialises into its streaming ``claim_verdict`` events, so a
claim looks the same whether it arrived in a batch report or over the
wire.
"""

from __future__ import annotations

import json

from repro.llm.cache import CacheStats, LLMCache
from repro.llm.ledger import CostLedger
from repro.obs.tracer import Span, Tracer
from repro.sqlengine import engine_stats as _engine_stats

from .claims import Claim, Document
from .pipeline import ClaimReport, VerificationRun


def claim_record(claim: Claim, report: ClaimReport) -> dict:
    """One claim's verdict as a plain JSON-serialisable dictionary."""
    return {
        "claim_id": claim.claim_id,
        "sentence": claim.sentence,
        "claimed_value": claim.value_text,
        "verdict": "correct" if claim.correct else "incorrect",
        "query": claim.query,
        "verified_by": report.verified_by,
        "attempts": report.attempts,
        "fallback": report.fallback,
    }


def claim_records(
    document: Document, run: VerificationRun
) -> list[dict]:
    """One plain dictionary per claim, JSON-serialisable."""
    return [
        claim_record(claim, run.reports[claim.claim_id])
        for claim in document.claims
    ]


def _cache_stats(cache: LLMCache | CacheStats | None) -> CacheStats | None:
    """Accept either a live cache or a stats snapshot."""
    if cache is None:
        return None
    return cache.stats if isinstance(cache, LLMCache) else cache


def document_spans(
    source: Tracer | list[Span], doc_id: str
) -> list[Span]:
    """The document root spans for ``doc_id`` from a tracer or span list."""
    roots = source.roots if isinstance(source, Tracer) else list(source)
    return [
        span for span in roots
        if span.kind == "document" and span.attributes.get("doc_id") == doc_id
    ]


def span_waterfall(roots: list[Span], width: int = 40) -> str:
    """Render a span forest as an indented text waterfall.

    One line per span: indentation shows nesting, the bar shows when the
    span ran relative to its root, and the right column shows the
    duration. Purely cosmetic — wall times feed the bars, so two runs
    render different bars but identical tree shapes.
    """
    lines: list[str] = []
    for root in roots:
        total = max(root.duration, 1e-9)

        def render(span: Span, depth: int) -> None:
            offset = int(width * (span.start - root.start) / total)
            offset = min(max(offset, 0), width - 1)
            length = max(1, int(width * span.duration / total))
            length = min(length, width - offset)
            bar = " " * offset + "#" * length + " " * (width - offset - length)
            label = ("  " * depth + f"{span.kind}:{span.name}")[:34]
            lines.append(
                f"{label:<34} |{bar}| {span.duration * 1e3:9.3f} ms"
            )
            for child in span.children:
                render(child, depth + 1)

        render(root, 0)
    return "\n".join(lines)


def document_report(
    document: Document,
    run: VerificationRun,
    ledger: CostLedger | None = None,
    cache: LLMCache | CacheStats | None = None,
    engine: dict | bool | None = None,
    tracer: Tracer | list[Span] | None = None,
) -> dict:
    """Full report for one document, JSON-serialisable.

    ``engine=True`` embeds the process-wide SQL engine stats (plan-cache
    traffic and execution-strategy counters); a dict embeds a caller's
    own snapshot (e.g. the service's, which includes its result cache).
    ``tracer`` (a :class:`~repro.obs.tracer.Tracer` or a list of root
    spans) opts into embedding the document's span tree — left out, the
    report is byte-identical with tracing on or off, which the
    determinism guard enforces.
    """
    records = claim_records(document, run)
    flagged = sum(1 for r in records if r["verdict"] == "incorrect")
    report: dict = {
        "document_id": document.doc_id,
        "title": document.title,
        "claims": records,
        "summary": {
            "total_claims": len(records),
            "flagged": flagged,
            "verified_without_fallback": sum(
                1 for r in records if not r["fallback"]
            ),
        },
    }
    if ledger is not None:
        totals = ledger.totals(f"doc:{document.doc_id}")
        report["spend"] = {
            "cost_usd": round(totals.cost, 6),
            "llm_calls": totals.calls,
            "tokens": totals.total_tokens,
        }
        if ledger.sql_executions:
            report["spend"]["sql_executions"] = ledger.sql_executions
            report["spend"]["sql_seconds"] = round(ledger.sql_seconds, 6)
        if ledger.retry_count:
            # Ledger-wide (retry events carry no document tag): how many
            # transient failures were retried and how long the run spent
            # sleeping in backoff because of them.
            report["spend"]["retries"] = ledger.retry_count
            report["spend"]["retry_backoff_seconds"] = round(
                ledger.retry_backoff_seconds, 6
            )
    stats = _cache_stats(cache)
    if stats is not None:
        report["cache"] = stats.to_dict()
    if engine is True:
        report["engine"] = _engine_stats()
    elif isinstance(engine, dict):
        report["engine"] = engine
    if tracer is not None:
        report["trace"] = [
            span.to_dict(str(index))
            for index, span in enumerate(
                document_spans(tracer, document.doc_id), start=1
            )
        ]
    return report


def to_json(
    document: Document,
    run: VerificationRun,
    ledger: CostLedger | None = None,
    indent: int = 2,
    cache: LLMCache | CacheStats | None = None,
    engine: dict | bool | None = None,
    tracer: Tracer | list[Span] | None = None,
) -> str:
    """Serialise the document report as JSON text."""
    return json.dumps(
        document_report(document, run, ledger, cache=cache, engine=engine,
                        tracer=tracer),
        indent=indent,
    )


def to_markdown(
    document: Document,
    run: VerificationRun,
    ledger: CostLedger | None = None,
    cache: LLMCache | CacheStats | None = None,
    engine: dict | bool | None = None,
    tracer: Tracer | list[Span] | None = None,
) -> str:
    """Render the annotated document as markdown.

    Flagged claims carry a warning marker and their SQL evidence in a
    details block, mirroring the demo front-end's presentation. A
    ``cache`` (live :class:`~repro.llm.cache.LLMCache` or a
    :class:`~repro.llm.cache.CacheStats` snapshot) adds a response-cache
    line to the spend summary. A ``tracer`` (or span list) opts into a
    trailing per-document trace-waterfall section; without it the output
    is byte-identical with tracing on or off.
    """
    report = document_report(document, run, ledger, cache=cache,
                             engine=engine)
    waterfall = (
        span_waterfall(document_spans(tracer, document.doc_id))
        if tracer is not None else ""
    )
    lines = [f"# Verification report — {document.title or document.doc_id}",
             ""]
    summary = report["summary"]
    lines.append(
        f"**{summary['total_claims']} claims checked, "
        f"{summary['flagged']} flagged.**"
    )
    if "spend" in report:
        spend = report["spend"]
        lines.append(
            f"Verification spend: ${spend['cost_usd']:.4f} across "
            f"{spend['llm_calls']} LLM calls."
        )
        if "retries" in spend:
            lines.append(
                f"Transient failures: {spend['retries']} retried, "
                f"{spend['retry_backoff_seconds']:.3f}s of backoff."
            )
    if "cache" in report:
        stats = report["cache"]
        lookups = stats["hits"] + stats["misses"]
        lines.append(
            f"Response cache: {stats['hits']} hits / {lookups} lookups "
            f"({100.0 * stats['hit_rate']:.0f}% hit rate), "
            f"{stats['bypasses']} retry bypasses, "
            f"{stats['evictions']} evictions."
        )
    if "engine" in report:
        lines.append(_engine_line(report["engine"]))
    lines.append("")
    for record in report["claims"]:
        marker = "⚠️" if record["verdict"] == "incorrect" else "✅"
        lines.append(f"- {marker} {record['sentence']}")
        stage = record["verified_by"] or "fallback verdict"
        lines.append(
            f"  - verdict: **{record['verdict']}** "
            f"({stage}, {record['attempts']} attempt(s))"
        )
        if record["query"]:
            lines.append(f"  - evidence: `{record['query']}`")
    if waterfall:
        lines.extend(["", "## Trace waterfall", "", "```text",
                      waterfall, "```"])
    return "\n".join(lines)


def _engine_line(stats: dict) -> str:
    """One-line summary of the SQL engine's cache/strategy counters."""
    plan = stats.get("plan_cache", {})
    strategies = stats.get("strategies", {})
    result = stats.get("result_cache")
    plan_lookups = plan.get("hits", 0) + plan.get("misses", 0)
    parts = [
        f"plan cache {plan.get('hits', 0)}/{plan_lookups} hits",
        f"{strategies.get('hash_joins', 0)} hash joins",
        f"{strategies.get('pushed_predicates', 0)} pushed predicates",
        f"{strategies.get('indexed_scans', 0)} indexed scans",
    ]
    if result is not None:
        result_lookups = result.get("hits", 0) + result.get("misses", 0)
        parts.insert(
            1, f"result cache {result.get('hits', 0)}/{result_lookups} hits"
        )
    else:
        hits = strategies.get("result_cache_hits", 0)
        lookups = hits + strategies.get("result_cache_misses", 0)
        parts.insert(1, f"result cache {hits}/{lookups} hits")
    analyzer = stats.get("analyzer")
    if analyzer is not None:
        parts.append(
            f"analyzer {analyzer.get('queries_analyzed', 0)} analyzed"
            f"/{analyzer.get('rejected_pre_execution', 0)} rejected"
            f"/{analyzer.get('warnings', 0)} warnings"
        )
    return "SQL engine: " + ", ".join(parts) + "."
