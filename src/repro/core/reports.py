"""Human-readable and machine-readable verification reports.

The demo paper's user-facing output is an annotated document: each claim
marked up with its verdict and the SQL evidence. This module renders a
:class:`~repro.core.pipeline.VerificationRun` as markdown (for people)
or as plain dictionaries (for JSON export / downstream tooling).
"""

from __future__ import annotations

import json

from repro.llm.ledger import CostLedger

from .claims import Document
from .pipeline import VerificationRun


def claim_records(
    document: Document, run: VerificationRun
) -> list[dict]:
    """One plain dictionary per claim, JSON-serialisable."""
    records = []
    for claim in document.claims:
        report = run.reports[claim.claim_id]
        records.append({
            "claim_id": claim.claim_id,
            "sentence": claim.sentence,
            "claimed_value": claim.value_text,
            "verdict": "correct" if claim.correct else "incorrect",
            "query": claim.query,
            "verified_by": report.verified_by,
            "attempts": report.attempts,
            "fallback": report.fallback,
        })
    return records


def document_report(
    document: Document,
    run: VerificationRun,
    ledger: CostLedger | None = None,
) -> dict:
    """Full report for one document, JSON-serialisable."""
    records = claim_records(document, run)
    flagged = sum(1 for r in records if r["verdict"] == "incorrect")
    report: dict = {
        "document_id": document.doc_id,
        "title": document.title,
        "claims": records,
        "summary": {
            "total_claims": len(records),
            "flagged": flagged,
            "verified_without_fallback": sum(
                1 for r in records if not r["fallback"]
            ),
        },
    }
    if ledger is not None:
        totals = ledger.totals(f"doc:{document.doc_id}")
        report["spend"] = {
            "cost_usd": round(totals.cost, 6),
            "llm_calls": totals.calls,
            "tokens": totals.total_tokens,
        }
    return report


def to_json(
    document: Document,
    run: VerificationRun,
    ledger: CostLedger | None = None,
    indent: int = 2,
) -> str:
    """Serialise the document report as JSON text."""
    return json.dumps(document_report(document, run, ledger), indent=indent)


def to_markdown(
    document: Document,
    run: VerificationRun,
    ledger: CostLedger | None = None,
) -> str:
    """Render the annotated document as markdown.

    Flagged claims carry a warning marker and their SQL evidence in a
    details block, mirroring the demo front-end's presentation.
    """
    report = document_report(document, run, ledger)
    lines = [f"# Verification report — {document.title or document.doc_id}",
             ""]
    summary = report["summary"]
    lines.append(
        f"**{summary['total_claims']} claims checked, "
        f"{summary['flagged']} flagged.**"
    )
    if "spend" in report:
        spend = report["spend"]
        lines.append(
            f"Verification spend: ${spend['cost_usd']:.4f} across "
            f"{spend['llm_calls']} LLM calls."
        )
    lines.append("")
    for record in report["claims"]:
        marker = "⚠️" if record["verdict"] == "incorrect" else "✅"
        lines.append(f"- {marker} {record['sentence']}")
        stage = record["verified_by"] or "fallback verdict"
        lines.append(
            f"  - verdict: **{record['verdict']}** "
            f"({stage}, {record['attempts']} attempt(s))"
        )
        if record["query"]:
            lines.append(f"  - evidence: `{record['query']}`")
    return "\n".join(lines)
